"""Realtime transit (Bus Alert) on top of MOIST — the application of Section 5.

The paper's first deployed application tracks ~5,000 buses, each updating its
GPS position twice a minute, and lets users (1) query a bus' location,
(2) browse all buses nearby and (3) set an alarm that fires when a selected
bus approaches.  This example reproduces that scenario at a smaller scale on
the synthetic road network.

Run with::

    python examples/bus_alert.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import MoistConfig, MoistIndexer, Point
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.workload import RoadNetworkWorkload, WorkloadConfig


@dataclass
class BusAlert:
    """An alarm that fires when a bus comes within ``radius`` of a stop."""

    bus_id: str
    stop: Point
    radius: float
    fired_at: Optional[float] = None

    def check(self, indexer: MoistIndexer, now: float) -> bool:
        """Fire (once) when the bus' estimated location reaches the stop."""
        if self.fired_at is not None:
            return False
        try:
            location = indexer.location_of(self.bus_id, at_time=now)
        except QueryError:
            # The bus has not sent its first GPS fix yet.
            return False
        if location.distance_to(self.stop) <= self.radius:
            self.fired_at = now
            return True
        return False


def main() -> None:
    map_size = 500.0
    config = MoistConfig(
        world=BoundingBox(0.0, 0.0, map_size, map_size),
        storage_level=12,
        clustering_cell_level=2,
        deviation_threshold=15.0,
    )
    indexer = MoistIndexer(config)

    # 300 buses driving the road network; the workload emits one noisy GPS
    # fix per bus roughly every 2 simulated seconds (scaled down from the
    # paper's twice-a-minute so the example finishes quickly).
    fleet = RoadNetworkWorkload(
        WorkloadConfig(
            num_objects=300,
            map_size=map_size,
            block_size=50.0,
            pedestrian_fraction=0.0,
            min_update_interval_s=2.0,
            max_update_interval_s=2.0,
            seed=11,
        )
    )

    # A user waits at a stop in the middle of the map for a specific bus.
    stop = Point(map_size / 2, map_size / 2)
    watched_bus = "obj0000000042"
    alert = BusAlert(bus_id=watched_bus, stop=stop, radius=60.0)
    fired_alerts: List[float] = []

    print("Simulating 120 seconds of bus traffic ...")
    for batch in fleet.run(duration_s=120.0, step_s=1.0):
        for message in batch:
            indexer.update(message)
        indexer.run_due_clustering(now=fleet.now)
        if alert.check(indexer, now=fleet.now):
            fired_alerts.append(fleet.now)
            print(f"  [t={fleet.now:5.0f}s] ALERT: bus {watched_bus} is approaching the stop!")

    print(f"\nIndexed {indexer.object_count} buses in {indexer.school_count} schools "
          f"({indexer.shed_ratio():.1%} of GPS fixes shed)")

    print(f"\nBuses within 100 m of the stop at t={fleet.now:.0f}s:")
    nearby = indexer.nearest_neighbors(stop, k=10, range_limit=100.0, at_time=fleet.now)
    if not nearby:
        print("  (none right now)")
    for neighbor in nearby:
        print(f"  {neighbor.object_id}  {neighbor.distance:6.1f} m away")

    print(f"\nWatched bus {watched_bus}:")
    location = indexer.location_of(watched_bus, at_time=fleet.now)
    print(f"  current estimated position ({location.x:.1f}, {location.y:.1f})")
    if alert.fired_at is not None:
        print(f"  alert fired at t={alert.fired_at:.0f}s")
    else:
        print("  alert never fired (the bus stayed away from the stop)")

    trajectory = indexer.object_history(watched_bus)
    print(f"  {len(trajectory)} trajectory points available for path rendering")


if __name__ == "__main__":
    main()

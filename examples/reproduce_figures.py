"""Regenerate scaled-down versions of every figure in the paper's evaluation.

This is the quick, interactive counterpart to the benchmark suite: each
harness runs at a reduced scale (a few seconds each) and prints the same
table the corresponding benchmark produces at full scale.

Run with::

    python examples/reproduce_figures.py            # all figures
    python examples/reproduce_figures.py fig12 fig13  # a subset
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.experiments.fig09_schools import run_fig09a, run_fig09b, run_fig09c
from repro.experiments.fig10_clustering import run_fig10a, run_fig10b
from repro.experiments.fig11_cluster_frequency import run_fig11
from repro.experiments.fig12_flag import run_fig12_density, run_fig12_range
from repro.experiments.fig13_qps import measure_speedup, run_fig13a, run_fig13b
from repro.experiments.headline import run_headline


def _fig09() -> None:
    run_fig09a(epsilons=(1.0, 10.0, 40.0), num_objects=60, duration_s=30.0).print()
    run_fig09b(object_counts=(50, 150, 300), duration_s=30.0).print()
    run_fig09c(duration_s=60.0, num_objects=60).print()


def _fig10() -> None:
    run_fig10a(pre_leader_counts=(200, 500, 1000), post_leaders=50).print()
    run_fig10b(post_leader_counts=(20, 100, 500), pre_leaders=1000).print()


def _fig11() -> None:
    run_fig11(
        frequencies_hz=(0.0, 0.05, 0.1, 0.5, 1.0),
        initial_leaders=200,
        total_objects=2000,
    ).print()


def _fig12() -> None:
    run_fig12_range(range_limits=(20.0, 60.0, 100.0), num_objects=5000).print()
    run_fig12_density(object_counts=(1000, 10000, 50000)).print()


def _fig13() -> None:
    run_fig13a(object_counts=(5000, 20000), num_updates=3000).print()
    run_fig13b(num_objects=5000, num_updates=8000, num_clients=10).print()
    measure_speedup(num_objects=5000, num_updates=3000).print()


def _headline() -> None:
    run_headline(num_objects=5000, num_updates=3000, shed_objects=400).print()


FIGURES: Dict[str, Callable[[], None]] = {
    "fig09": _fig09,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "headline": _headline,
}


def main(arguments: List[str]) -> None:
    requested = arguments or list(FIGURES)
    unknown = [name for name in requested if name not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}")
        print(f"available: {', '.join(FIGURES)}")
        raise SystemExit(1)
    for name in requested:
        print(f"=== {name} " + "=" * (70 - len(name)))
        FIGURES[name]()
        print()


if __name__ == "__main__":
    main(sys.argv[1:])

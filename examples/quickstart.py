"""Quickstart: index a small population of moving objects with MOIST.

Run with::

    python examples/quickstart.py

The script builds a MOIST indexer, streams a minute of road-network traffic
into it, runs the periodic school clustering, and then issues the three query
kinds the paper targets: nearest-neighbour, current-location and history.
"""

from __future__ import annotations

from repro import MoistConfig, MoistIndexer, Point
from repro.geometry.bbox import BoundingBox
from repro.workload import RoadNetworkWorkload, WorkloadConfig


def main() -> None:
    map_size = 300.0
    config = MoistConfig(
        world=BoundingBox(0.0, 0.0, map_size, map_size),
        storage_level=12,
        clustering_cell_level=1,
        deviation_threshold=20.0,
    )
    indexer = MoistIndexer(config)

    workload = RoadNetworkWorkload(
        WorkloadConfig(
            num_objects=200,
            map_size=map_size,
            block_size=30.0,
            min_update_interval_s=1.0,
            max_update_interval_s=1.0,
            seed=7,
        )
    )

    print("Streaming 60 seconds of road-network traffic ...")
    for batch in workload.run(duration_s=60.0, step_s=1.0):
        for message in batch:
            indexer.update(message)
        indexer.run_due_clustering(now=workload.now)

    stats = indexer.update_stats
    print(f"  updates processed : {stats.total}")
    print(f"  updates shed      : {stats.shed} ({indexer.shed_ratio():.1%})")
    print(f"  object schools    : {indexer.school_count} for {indexer.object_count} objects")
    print(f"  simulated storage : {indexer.simulated_seconds * 1e3:.1f} ms")

    center = Point(map_size / 2, map_size / 2)
    print(f"\n5 nearest objects around {center.as_tuple()}:")
    for neighbor in indexer.nearest_neighbors(center, k=5):
        role = "leader" if neighbor.is_leader else f"follower of {neighbor.leader_id}"
        print(
            f"  {neighbor.object_id}  at ({neighbor.location.x:6.1f}, "
            f"{neighbor.location.y:6.1f})  distance {neighbor.distance:6.1f}  [{role}]"
        )

    sample_id = "obj0000000000"
    print(f"\nCurrent (estimated) location of {sample_id}: ", end="")
    location = indexer.location_of(sample_id, at_time=workload.now)
    print(f"({location.x:.1f}, {location.y:.1f})")

    history = indexer.object_history(sample_id)
    print(f"History records stored for {sample_id}: {len(history)}")
    if history:
        first, last = history[0], history[-1]
        print(
            f"  from t={first.timestamp:.0f}s ({first.location.x:.1f}, {first.location.y:.1f}) "
            f"to t={last.timestamp:.0f}s ({last.location.x:.1f}, {last.location.y:.1f})"
        )


if __name__ == "__main__":
    main()

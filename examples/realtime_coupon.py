"""Realtime coupon targeting — the second application sketched in Section 5.

Shops submit coupons targeted at users within a radius; users keep updating
their locations and receive the coupons of nearby shops.  The matching runs
on MOIST nearest-neighbour queries with a range limit, so the example also
shows how FLAG keeps the query cost stable while the crowd density around a
shop changes.

Run with::

    python examples/realtime_coupon.py
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro import MoistConfig, MoistIndexer, Point
from repro.geometry.bbox import BoundingBox
from repro.workload import RoadNetworkWorkload, WorkloadConfig


@dataclass
class Coupon:
    """A coupon offer targeted at users within ``radius`` of the shop."""

    shop_name: str
    shop_location: Point
    radius: float
    discount: str
    recipients: Set[str] = field(default_factory=set)

    def deliver(self, indexer: MoistIndexer, now: float, max_recipients: int = 50) -> List[str]:
        """Find users currently near the shop and record new recipients."""
        nearby = indexer.nearest_neighbors(
            self.shop_location, k=max_recipients, range_limit=self.radius, at_time=now
        )
        fresh = [n.object_id for n in nearby if n.object_id not in self.recipients]
        self.recipients.update(fresh)
        return fresh


def main() -> None:
    map_size = 400.0
    config = MoistConfig(
        world=BoundingBox(0.0, 0.0, map_size, map_size),
        storage_level=12,
        clustering_cell_level=2,
        deviation_threshold=15.0,
    )
    indexer = MoistIndexer(config)

    crowd = RoadNetworkWorkload(
        WorkloadConfig(
            num_objects=400,
            map_size=map_size,
            block_size=40.0,
            pedestrian_fraction=0.8,
            min_update_interval_s=1.0,
            max_update_interval_s=3.0,
            seed=23,
        )
    )

    coupons = [
        Coupon("Nine Dragons Noodles", Point(120.0, 120.0), radius=60.0, discount="20% off lunch"),
        Coupon("Corner Espresso", Point(300.0, 280.0), radius=40.0, discount="free refill"),
        Coupon("Museum of Maps", Point(200.0, 360.0), radius=80.0, discount="2-for-1 tickets"),
    ]
    deliveries: Dict[str, int] = {coupon.shop_name: 0 for coupon in coupons}

    print("Simulating 90 seconds of pedestrian traffic with coupon matching ...")
    for batch in crowd.run(duration_s=90.0, step_s=1.0):
        for message in batch:
            indexer.update(message)
        indexer.run_due_clustering(now=crowd.now)
        # Shops re-target every 10 simulated seconds.
        if int(crowd.now) % 10 == 0:
            for coupon in coupons:
                fresh = coupon.deliver(indexer, now=crowd.now)
                deliveries[coupon.shop_name] += len(fresh)

    print(f"\nIndexed {indexer.object_count} users in {indexer.school_count} schools "
          f"({indexer.shed_ratio():.1%} of location updates shed)")
    print("\nCoupon deliveries:")
    for coupon in coupons:
        print(
            f"  {coupon.shop_name:22s} ({coupon.discount:18s}) "
            f"reached {len(coupon.recipients):3d} distinct users"
        )

    if indexer.flag is not None:
        stats = indexer.flag.stats
        print(
            f"\nFLAG level tuning: {stats.lookups} lookups, "
            f"{stats.hit_ratio:.0%} served from the level cache, "
            f"{stats.probe_reads} density probes in total"
        )


if __name__ == "__main__":
    main()

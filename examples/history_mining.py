"""History archiving and mining: travel paths and points of interest.

The paper motivates history queries with route analysis and point-of-interest
mining (Sections 1, 3.5 and 6).  This example streams traffic into MOIST,
ages the data through the Location Table's disk columns into the PPP archive,
and then runs the three history workloads:

* full travel path of one object (in-memory + disk + archive),
* location-based history over a downtown region,
* "points of interest": the most visited cells of the map.

Run with::

    python examples/history_mining.py
"""

from __future__ import annotations

from repro import MoistConfig, MoistIndexer
from repro.archive.ppp import PPPArchiver
from repro.archive.sizing import optimise_disk_count
from repro.disk.model import DiskModel
from repro.geometry.bbox import BoundingBox
from repro.workload import RoadNetworkWorkload, WorkloadConfig


def main() -> None:
    map_size = 300.0
    world = BoundingBox(0.0, 0.0, map_size, map_size)
    config = MoistConfig(
        world=world,
        storage_level=12,
        clustering_cell_level=2,
        deviation_threshold=15.0,
        memory_records=4,
        aging_interval_s=30.0,
    )
    archiver = PPPArchiver(num_disks=4, page_records=64, world=world)
    indexer = MoistIndexer(config, archiver=archiver)

    traffic = RoadNetworkWorkload(
        WorkloadConfig(
            num_objects=150,
            map_size=map_size,
            block_size=30.0,
            min_update_interval_s=1.0,
            max_update_interval_s=2.0,
            seed=31,
        )
    )

    print("Streaming 180 seconds of traffic and archiving aged records ...")
    for batch in traffic.run(duration_s=180.0, step_s=1.0):
        for message in batch:
            indexer.update(message)
        indexer.run_due_clustering(now=traffic.now)
        # Periodic maintenance: move aged records to disk columns / archive.
        if int(traffic.now) % 30 == 0:
            counts = indexer.archive_aged(now=traffic.now)
            if counts["archived"]:
                print(
                    f"  [t={traffic.now:5.0f}s] aged {counts['aged_to_disk']:4d} records "
                    f"to disk, archived {counts['archived']:4d} to PPP"
                )
    archiver.flush_all(now=traffic.now)

    sound, fill_time, flush_time = archiver.double_buffering_is_sound()
    print(f"\nPPP archive: {archiver.stats.records_archived} records on "
          f"{archiver.num_disks} disks in {archiver.disks.segment_count()} segments")
    print(f"  double-buffering constraint min Tm >= max Td holds: {sound} "
          f"(fill {fill_time if fill_time is not None else float('nan'):.2f}s vs flush {flush_time*1e3:.2f}ms)")

    # 1. Travel path of one object.
    object_id = "obj0000000003"
    path = indexer.object_history(object_id)
    print(f"\nTravel path of {object_id}: {len(path)} observations")
    if path:
        print(f"  first at t={path[0].timestamp:.0f}s, last at t={path[-1].timestamp:.0f}s")

    # 2. Location-based history: who passed through downtown?
    downtown = BoundingBox(100.0, 100.0, 200.0, 200.0)
    visits = indexer.region_history(downtown)
    visitors = {record.object_id for record in visits}
    print(f"\nDowntown region history: {len(visits)} archived observations "
          f"from {len(visitors)} distinct objects")
    print(f"  archive read amplification: "
          f"{archiver.stats.segments_per_query():.1f} segments touched per query")

    # 3. Points of interest: most visited cells.
    print("\nTop visited cells (points of interest):")
    for entry in indexer.history.popular_cells(level=5, top_n=5):
        box = entry["cell"].to_box(world)
        center = box.center()
        print(f"  around ({center.x:5.1f}, {center.y:5.1f})  {entry['visits']:5d} visits")

    # Bonus: what the Section 3.6.2 sizing model recommends for this load.
    sizing = optimise_disk_count(
        DiskModel(),
        buffer_bytes=archiver.buffer_bytes(),
        num_objects=indexer.object_count,
        fill_time_s=30.0,
        k=50.0,
        max_disks=32,
    )
    print(f"\nSection 3.6.2 sizing: best disk count nd = {sizing.num_disks} "
          f"({sizing.binding}-bound, min(Ud, Rd) = {sizing.objective:.3f})")


if __name__ == "__main__":
    main()

"""Tests for the moving-object simulators."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.objects import MovingObject, ObjectKind
from repro.workload.roadnetwork import RoadNetwork


def make_object(kind=ObjectKind.CAR, seed=1, building_probability=0.05):
    network = RoadNetwork(size=100.0, block_size=25.0)
    return MovingObject(
        object_id="obj1",
        kind=kind,
        network=network,
        rng=random.Random(seed),
        building_probability=building_probability,
    )


class TestSpeeds:
    def test_pedestrian_speed_range(self):
        low, high = ObjectKind.PEDESTRIAN.speed_range()
        assert 0.0 <= low < high <= 1.0

    def test_car_speed_range(self):
        low, high = ObjectKind.CAR.speed_range()
        assert low == 1.0 and high == 2.0

    def test_object_speed_within_kind_range(self):
        for seed in range(10):
            car = make_object(ObjectKind.CAR, seed=seed)
            assert 1.0 <= car.speed <= 2.0
            pedestrian = make_object(ObjectKind.PEDESTRIAN, seed=seed)
            assert 0.0 < pedestrian.speed <= 1.0


class TestMovement:
    def test_invalid_probability_rejected(self):
        with pytest.raises(WorkloadError):
            make_object(building_probability=1.5)

    def test_negative_dt_rejected(self):
        with pytest.raises(WorkloadError):
            make_object().step(-1.0)

    def test_position_stays_on_map(self):
        moving = make_object(seed=3)
        bounds = moving.network.bounds
        for _ in range(200):
            moving.step(1.0)
            assert bounds.contains_point(moving.position())

    def test_car_moves_at_its_speed(self):
        car = make_object(ObjectKind.CAR, seed=5, building_probability=0.0)
        start = car.position()
        car.step(1.0)
        moved = start.distance_to(car.position())
        # Along a straight segment the distance equals speed; across a turn
        # it can be shorter, never longer.
        assert moved <= car.speed + 1e-9
        assert moved > 0.0

    def test_velocity_is_axis_aligned_on_roads(self):
        car = make_object(ObjectKind.CAR, seed=5, building_probability=0.0)
        velocity = car.velocity()
        assert velocity.dx == 0.0 or velocity.dy == 0.0
        assert velocity.magnitude() == pytest.approx(car.speed)

    def test_zero_building_probability_keeps_cars_on_roads(self):
        car = make_object(ObjectKind.CAR, seed=7, building_probability=0.0)
        for _ in range(100):
            car.step(1.0)
            assert not car.is_inside_building

    def test_deterministic_given_seed(self):
        a = make_object(seed=11)
        b = make_object(seed=11)
        for _ in range(50):
            a.step(1.0)
            b.step(1.0)
        assert a.position() == b.position()


class TestBuildings:
    def test_pedestrian_eventually_enters_building(self):
        pedestrian = make_object(ObjectKind.PEDESTRIAN, seed=2, building_probability=0.5)
        entered = False
        for _ in range(300):
            pedestrian.step(1.0)
            if pedestrian.is_inside_building:
                entered = True
                break
        assert entered

    def test_indoor_position_inside_footprint_and_zero_velocity(self):
        pedestrian = make_object(ObjectKind.PEDESTRIAN, seed=2, building_probability=0.9)
        for _ in range(300):
            pedestrian.step(1.0)
            if pedestrian.is_inside_building:
                assert pedestrian.velocity().magnitude() == 0.0
                position = pedestrian.position()
                assert pedestrian._inside.footprint.contains_point(position)
                break
        else:
            pytest.fail("pedestrian never entered a building")

    def test_pedestrian_eventually_leaves_building(self):
        pedestrian = make_object(ObjectKind.PEDESTRIAN, seed=2, building_probability=0.5)
        was_inside = False
        left_again = False
        for _ in range(600):
            pedestrian.step(1.0)
            if pedestrian.is_inside_building:
                was_inside = True
            elif was_inside:
                left_again = True
                break
        assert was_inside and left_again

"""Tests for the road-network map."""

import pytest

from repro.errors import WorkloadError
from repro.geometry.point import Point
from repro.workload.roadnetwork import RoadNetwork


class TestConstruction:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            RoadNetwork(size=0.0)
        with pytest.raises(WorkloadError):
            RoadNetwork(size=100.0, block_size=0.0)
        with pytest.raises(WorkloadError):
            RoadNetwork(size=100.0, block_size=200.0)
        with pytest.raises(WorkloadError):
            RoadNetwork(size=100.0, block_size=10.0, building_margin=6.0)

    def test_grid_dimensions(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        assert network.intersections_per_side == 5
        assert network.blocks_per_side == 4
        assert network.bounds.width == 100.0


class TestIntersections:
    def test_intersection_points_on_grid(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        assert network.intersection_point(0, 0) == Point(0.0, 0.0)
        assert network.intersection_point(2, 3) == Point(50.0, 75.0)

    def test_invalid_intersection_rejected(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        with pytest.raises(WorkloadError):
            network.intersection_point(9, 0)

    def test_corner_has_two_neighbors(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        assert len(network.neighbors_of(0, 0)) == 2

    def test_interior_has_four_neighbors(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        assert len(network.neighbors_of(2, 2)) == 4

    def test_neighbors_are_valid_intersections(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        for neighbor in network.neighbors_of(1, 4):
            assert network.is_valid_intersection(*neighbor)

    def test_nearest_intersection(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        assert network.nearest_intersection(Point(26.0, 49.0)) == (1, 2)
        assert network.nearest_intersection(Point(999.0, -5.0)) == (4, 0)


class TestBuildings:
    def test_building_inside_its_block(self):
        network = RoadNetwork(size=100.0, block_size=25.0, building_margin=5.0)
        building = network.building(1, 2)
        footprint = building.footprint
        assert footprint.min_x == 30.0
        assert footprint.max_x == 45.0
        assert footprint.min_y == 55.0
        assert footprint.max_y == 70.0

    def test_entrance_on_footprint_border(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        for bi in range(network.blocks_per_side):
            for bj in range(network.blocks_per_side):
                building = network.building(bi, bj)
                footprint = building.footprint
                entrance = building.entrance
                on_border = (
                    entrance.x in (footprint.min_x, footprint.max_x)
                    or entrance.y in (footprint.min_y, footprint.max_y)
                )
                assert on_border
                assert footprint.contains_point(entrance)

    def test_entrance_sides_rotate(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        entrances = {network.building(bi, 0).entrance.as_tuple() for bi in range(4)}
        assert len(entrances) == 4

    def test_invalid_block_rejected(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        with pytest.raises(WorkloadError):
            network.building(4, 0)

    def test_building_near_intersection(self):
        network = RoadNetwork(size=100.0, block_size=25.0)
        building = network.building_near_intersection(4, 4)
        assert building.block == (3, 3)

"""Per-server failover: crashes lose no acknowledged writes, replicas serve
newest-wins reads identical to the primary, dead servers take no traffic."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import uniform_leader_indexer
from repro.experiments.recovery import _nn_signature, _state_signature
from repro.geometry.point import Point
from repro.server.cluster import ServerCluster
from repro.server.master import TabletMaster
from repro.workload.queries import NNQuery, NNQueryWorkload

from helpers import make_update


def build(num_objects=600, num_servers=4, seed=23):
    indexer = uniform_leader_indexer(num_objects, seed=seed)
    return indexer, ServerCluster(indexer, num_servers=num_servers)


def update_batches(num_objects, num_batches=6, batch_size=200):
    return [
        [
            make_update(
                (batch * batch_size + i) % num_objects,
                5.0 + ((batch * batch_size + i) % 950),
                5.0 + ((batch * 37 + i) % 950),
                t=float(batch),
            )
            for i in range(batch_size)
        ]
        for batch in range(num_batches)
    ]


class TestSingleServerFailover:
    @pytest.mark.parametrize("crash_after_batch", [0, 2, 5])
    def test_crash_mid_stream_loses_no_acknowledged_writes(self, crash_after_batch):
        batches = update_batches(600)
        queries = NNQueryWorkload(build()[0].config.world, k=8, seed=3).batch(20)

        ref_indexer, ref_cluster = build()
        for batch in batches:
            ref_cluster.submit_update_batch(batch)

        indexer, cluster = build()
        master = TabletMaster(cluster)
        for index, batch in enumerate(batches):
            cluster.submit_update_batch(batch)
            if index == crash_after_batch:
                master.fail_over(1)

        assert _state_signature(indexer) == _state_signature(ref_indexer)
        assert _nn_signature(indexer, queries) == _nn_signature(ref_indexer, queries)

    def test_failover_report_accounts_owned_tablets(self):
        indexer, cluster = build()
        for batch in update_batches(600, num_batches=3):
            cluster.submit_update_batch(batch)
        victim = 2
        owned = [
            stats.tablet_id
            for stats in indexer.tablet_stats()
            if cluster.server_index_for_tablet(stats.tablet_id) == victim
        ]
        report = cluster.fail_server(victim)
        assert report.server_id == victim
        assert report.tablets_recovered == len(owned)
        assert {tablet_id for tablet_id, _ in report.reassigned} == set(owned)
        # Every reassignment landed on an alive server.
        for tablet_id, target in report.reassigned:
            assert cluster.servers[target].alive
            assert cluster.server_index_for_tablet(tablet_id) == target

    def test_dead_server_receives_no_traffic(self):
        indexer, cluster = build()
        batches = update_batches(600, num_batches=2)
        cluster.submit_update_batch(batches[0])
        cluster.fail_server(0)
        handled_before = cluster.servers[0].requests_handled
        cluster.submit_update_batch(batches[1])
        queries = NNQueryWorkload(indexer.config.world, k=5, seed=7).batch(30)
        cluster.submit_query_batch(queries)
        for _ in range(10):
            cluster.submit_nn_query(Point(500.0, 500.0), 3)
        assert cluster.servers[0].requests_handled == handled_before

    def test_crash_guards(self):
        indexer, cluster = build(num_servers=2)
        cluster.fail_server(0)
        with pytest.raises(ConfigurationError):
            cluster.fail_server(0)  # already down
        with pytest.raises(ConfigurationError):
            cluster.fail_server(1)  # last alive server
        with pytest.raises(ConfigurationError):
            cluster.fail_server(9)  # no such server
        cluster.revive_server(0)
        assert cluster.servers[0].alive

    def test_failover_then_revival_keeps_state(self):
        batches = update_batches(500)
        ref_indexer, ref_cluster = build(num_objects=500)
        for batch in batches:
            ref_cluster.submit_update_batch(batch)

        indexer, cluster = build(num_objects=500)
        master = TabletMaster(cluster)
        for index, batch in enumerate(batches):
            cluster.submit_update_batch(batch)
            if index == 1:
                master.fail_over(3)
            if index == 3:
                cluster.revive_server(3)
        assert _state_signature(indexer) == _state_signature(ref_indexer)


class TestFailoverAcrossRpcBoundary:
    """The failover losslessness properties, spoken through a shard client
    (both in-process and over a worker's RPC connection)."""

    def _recipe(self, num_objects=600, num_servers=4, with_master=True):
        from repro.server.worker import ShardRecipe

        return ShardRecipe(
            num_objects=num_objects,
            seed=23,
            num_servers=num_servers,
            with_master=with_master,
        )

    @pytest.mark.parametrize("backend", ["inprocess", "process"])
    @pytest.mark.parametrize("crash_after_batch", [0, 3])
    def test_crash_mid_stream_is_lossless(self, backend, crash_after_batch):
        from repro.bigtable.process_backend import single_shard_client

        batches = update_batches(600)
        ref_indexer, ref_cluster = build()
        queries = NNQueryWorkload(ref_indexer.config.world, k=8, seed=3).batch(20)
        for batch in batches:
            ref_cluster.submit_update_batch(batch)

        with single_shard_client(backend, recipe=self._recipe()) as client:
            for index, batch in enumerate(batches):
                client.begin_update_batch(batch).result()
                if index == crash_after_batch:
                    client.call("fail_over", 1)
            assert client.call("state_signature") == _state_signature(ref_indexer)
            assert client.call("nn_signature", queries) == _nn_signature(
                ref_indexer, queries
            )

    @pytest.mark.parametrize("backend", ["inprocess", "process"])
    def test_crash_guards_raise_through_the_wire(self, backend):
        """Guard exceptions survive the RPC boundary with their original
        type, so callers keep their ``except ConfigurationError`` paths."""
        from repro.bigtable.process_backend import single_shard_client

        recipe = self._recipe(num_objects=150, num_servers=2, with_master=False)
        with single_shard_client(backend, recipe=recipe) as client:
            client.call("fail_server", 0)
            with pytest.raises(ConfigurationError):
                client.call("fail_server", 0)  # already down
            with pytest.raises(ConfigurationError):
                client.call("fail_server", 1)  # last alive server
            with pytest.raises(ConfigurationError):
                client.call("fail_server", 9)  # no such server
            client.call("revive_server", 0)
            assert client.call("alive_server_indices") == [0, 1]


class TestReplicatedReads:
    def _replicate_everything(self, indexer, cluster, master):
        """Replicate every spatial-index tablet onto every server."""
        spatial = indexer.spatial_table.table
        for tablet in spatial.tablets():
            for index in cluster.alive_server_indices():
                master.replicate_tablet(spatial.name, tablet.tablet_id, index)

    def test_replicated_reads_match_primary_only_cluster(self):
        batches = update_batches(600)
        queries = NNQueryWorkload(build()[0].config.world, k=10, seed=5).batch(40)

        ref_indexer, ref_cluster = build()
        for batch in batches:
            ref_cluster.submit_update_batch(batch)
        expected = ref_cluster.submit_query_batch(queries)

        indexer, cluster = build()
        master = TabletMaster(cluster)
        for batch in batches:
            cluster.submit_update_batch(batch)
        self._replicate_everything(indexer, cluster, master)
        observed = cluster.submit_query_batch(queries)

        assert len(observed) == len(expected)
        for left, right in zip(observed, expected):
            assert [(n.object_id, n.distance) for n in left] == [
                (n.object_id, n.distance) for n in right
            ]

    def test_replicated_reads_see_newest_write(self):
        indexer, cluster = build()
        master = TabletMaster(cluster)
        for batch in update_batches(600, num_batches=2):
            cluster.submit_update_batch(batch)
        self._replicate_everything(indexer, cluster, master)
        # A fresh write lands on the primary; every replica must serve it
        # (newest-wins over the shared durable store).
        cluster.submit_update_batch([make_update(1, 333.0, 333.0, t=99.0)])
        query = NNQuery(location=Point(333.0, 333.0), k=1)
        for _ in range(cluster.num_servers):
            results = cluster.submit_query_batch([query])[0]
            assert results
            top = results[0]
            assert top.location.x == pytest.approx(333.0)
            assert top.location.y == pytest.approx(333.0)

    def test_replica_fanout_spreads_query_load(self):
        indexer, cluster = build()
        master = TabletMaster(cluster)
        for batch in update_batches(600, num_batches=2):
            cluster.submit_update_batch(batch)
        cluster.reset_metrics()
        # All queries hit one spot -> one spatial tablet; replicate it
        # everywhere and check the fan-out touched several servers.
        hot = Point(15.0, 15.0)
        tablet = indexer.spatial_table.tablet_for_location(hot)
        spatial = indexer.spatial_table.table
        for index in cluster.alive_server_indices():
            master.replicate_tablet(spatial.name, tablet.tablet_id, index)
        queries = [NNQuery(location=hot, k=5) for _ in range(64)]
        cluster.submit_query_batch(queries)
        serving = [s for s in cluster.servers if s.queries_handled > 0]
        assert len(serving) == cluster.num_servers

"""Tests for repro.geometry.bbox."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpatialError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point

coordinate = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    x1 = draw(coordinate)
    x2 = draw(coordinate)
    y1 = draw(coordinate)
    y2 = draw(coordinate)
    return BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


class TestConstruction:
    def test_invalid_box_raises(self):
        with pytest.raises(SpatialError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_zero_area_box_is_allowed(self):
        box = BoundingBox(1.0, 2.0, 1.0, 2.0)
        assert box.area == 0.0

    def test_from_points(self):
        box = BoundingBox.from_points([Point(1.0, 5.0), Point(3.0, 2.0)])
        assert box == BoundingBox(1.0, 2.0, 3.0, 5.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(SpatialError):
            BoundingBox.from_points([])

    def test_from_center(self):
        box = BoundingBox.from_center(Point(5.0, 5.0), 2.0, 3.0)
        assert box == BoundingBox(3.0, 2.0, 7.0, 8.0)

    def test_dimensions(self):
        box = BoundingBox(0.0, 0.0, 4.0, 2.0)
        assert box.width == 4.0
        assert box.height == 2.0
        assert box.area == 8.0
        assert box.center() == Point(2.0, 1.0)

    def test_corners(self):
        corners = list(BoundingBox(0.0, 0.0, 1.0, 1.0).corners())
        assert len(corners) == 4
        assert Point(0.0, 0.0) in corners
        assert Point(1.0, 1.0) in corners


class TestContainment:
    def test_contains_point_inside_and_on_border(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.contains_point(Point(5.0, 5.0))
        assert box.contains_point(Point(0.0, 10.0))
        assert not box.contains_point(Point(10.1, 5.0))

    def test_contains_box(self):
        outer = BoundingBox(0.0, 0.0, 10.0, 10.0)
        inner = BoundingBox(2.0, 2.0, 8.0, 8.0)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    @given(boxes())
    def test_box_contains_its_center(self, box):
        assert box.contains_point(box.center())


class TestIntersection:
    def test_intersects_overlapping(self):
        a = BoundingBox(0.0, 0.0, 5.0, 5.0)
        b = BoundingBox(4.0, 4.0, 10.0, 10.0)
        assert a.intersects(b)
        assert a.intersection(b) == BoundingBox(4.0, 4.0, 5.0, 5.0)

    def test_disjoint_boxes_do_not_intersect(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, 2.0, 3.0, 3.0)
        assert not a.intersects(b)
        with pytest.raises(SpatialError):
            a.intersection(b)

    def test_union_covers_both(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, 2.0, 3.0, 3.0)
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    def test_expanded(self):
        box = BoundingBox(1.0, 1.0, 2.0, 2.0).expanded(1.0)
        assert box == BoundingBox(0.0, 0.0, 3.0, 3.0)


class TestDistance:
    def test_distance_zero_inside(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.distance_to_point(Point(5.0, 5.0)) == 0.0

    def test_distance_to_side(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.distance_to_point(Point(15.0, 5.0)) == pytest.approx(5.0)

    def test_distance_to_corner(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.distance_to_point(Point(13.0, 14.0)) == pytest.approx(5.0)

    @given(boxes(), coordinate, coordinate)
    def test_distance_lower_bounds_contained_points(self, box, x, y):
        """The box-to-point distance never exceeds the distance to any point
        inside the box — the invariant the NN search pruning relies on."""
        point = Point(x, y)
        inner = box.clamp_point(Point((box.min_x + box.max_x) / 2, (box.min_y + box.max_y) / 2))
        assert box.distance_to_point(point) <= inner.distance_to(point) + 1e-9

"""Tests for the cost model and operation counter."""

import pytest

from repro.bigtable.cost import CostModel, OpCounter, OpKind
from repro.errors import ConfigurationError


class TestCostModel:
    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(read_rpc=-1.0)

    def test_invalid_contention_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(write_contention_factor=0.0)

    def test_point_costs(self):
        model = CostModel()
        assert model.cost_of(OpKind.READ) == model.read_rpc
        assert model.cost_of(OpKind.WRITE) == model.write_rpc
        assert model.cost_of(OpKind.DELETE) == model.delete_rpc

    def test_scan_cost_scales_with_rows(self):
        model = CostModel()
        assert model.cost_of(OpKind.SCAN, rows=10) > model.cost_of(OpKind.SCAN, rows=1)
        assert model.cost_of(OpKind.SCAN, rows=10) == pytest.approx(
            model.scan_rpc + 10 * model.scan_row
        )

    def test_batch_rows_cheaper_than_point_ops(self):
        """Batch reads amortise the RPC: N rows in one batch cost less than N
        point reads — the property that makes the clustering pass viable."""
        model = CostModel()
        n = 50
        assert model.cost_of(OpKind.BATCH_READ, rows=n) < n * model.cost_of(OpKind.READ)
        assert model.cost_of(OpKind.BATCH_WRITE, rows=n) < n * model.cost_of(OpKind.WRITE)

    def test_write_contention_scales_writes_only(self):
        plain = CostModel()
        contended = CostModel(write_contention_factor=2.0)
        assert contended.cost_of(OpKind.WRITE) == pytest.approx(2 * plain.cost_of(OpKind.WRITE))
        assert contended.cost_of(OpKind.READ) == plain.cost_of(OpKind.READ)

    def test_unknown_per_row_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().cost_of(OpKind.SCAN_ROW)


class TestOpCounter:
    def test_record_accumulates_time_and_counts(self):
        counter = OpCounter()
        cost = counter.record(OpKind.READ)
        assert cost > 0
        assert counter.count(OpKind.READ) == 1
        assert counter.simulated_seconds == pytest.approx(cost)

    def test_read_and_write_seconds_split(self):
        counter = OpCounter()
        counter.record(OpKind.READ)
        counter.record(OpKind.WRITE)
        counter.record(OpKind.SCAN, rows=5)
        counter.record(OpKind.BATCH_WRITE, rows=5)
        assert counter.read_seconds > 0
        assert counter.write_seconds > 0
        assert counter.simulated_seconds == pytest.approx(
            counter.read_seconds + counter.write_seconds
        )

    def test_rows_touched(self):
        counter = OpCounter()
        counter.record(OpKind.SCAN, rows=7)
        counter.record(OpKind.SCAN, rows=3)
        assert counter.rows_touched(OpKind.SCAN) == 10
        assert counter.count(OpKind.SCAN) == 2

    def test_total_calls(self):
        counter = OpCounter()
        counter.record(OpKind.READ)
        counter.record(OpKind.WRITE)
        assert counter.total_calls() == 2

    def test_reset(self):
        counter = OpCounter()
        counter.record(OpKind.READ)
        counter.reset()
        assert counter.total_calls() == 0
        assert counter.simulated_seconds == 0.0

    def test_snapshot_delta(self):
        counter = OpCounter()
        counter.record(OpKind.READ)
        first = counter.snapshot()
        counter.record(OpKind.WRITE)
        counter.record(OpKind.READ)
        delta = counter.snapshot().delta(first)
        assert delta.counts[OpKind.READ] == 1
        assert delta.counts[OpKind.WRITE] == 1
        assert delta.simulated_seconds > 0

    def test_snapshot_is_immutable_view(self):
        counter = OpCounter()
        counter.record(OpKind.READ)
        snapshot = counter.snapshot()
        counter.record(OpKind.READ)
        assert snapshot.counts[OpKind.READ] == 1

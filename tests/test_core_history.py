"""Tests for history queries across memory, disk columns and the archive."""

import pytest

from repro.core.history import HistoryQueryEngine
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point

from helpers import make_update


def feed_trajectory(indexer, object_index=1, steps=6, start=(10.0, 10.0)):
    """Drive one object along +x, one update per second."""
    for step in range(steps):
        indexer.update(
            make_update(object_index, start[0] + step, start[1], vx=1.0, vy=0.0, t=float(step))
        )


class TestObjectHistory:
    def test_recent_history_in_memory(self, indexer):
        feed_trajectory(indexer, steps=4)
        history = indexer.object_history("obj0000000001")
        assert len(history) == 4
        assert [record.timestamp for record in history] == [0.0, 1.0, 2.0, 3.0]

    def test_recent_trajectory_ordered_oldest_first(self, indexer):
        feed_trajectory(indexer, steps=3)
        trajectory = indexer.history.recent_trajectory("obj0000000001")
        assert [record.timestamp for record in trajectory] == [0.0, 1.0, 2.0]

    def test_time_window_filtering(self, indexer):
        feed_trajectory(indexer, steps=6)
        window = indexer.object_history("obj0000000001", start_time=2.0, end_time=4.0)
        assert [record.timestamp for record in window] == [2.0, 3.0, 4.0]

    def test_invalid_window_rejected(self, indexer):
        with pytest.raises(QueryError):
            indexer.object_history("obj0000000001", start_time=5.0, end_time=1.0)

    def test_unknown_object_has_empty_history(self, indexer):
        assert indexer.object_history("objMISSING") == []

    def test_history_survives_aging_to_disk_column(self, indexer):
        feed_trajectory(indexer, steps=6)
        aging = indexer.config.aging_interval_s
        counts = indexer.archive_aged(now=aging + 3.0)
        assert counts["aged_to_disk"] > 0
        history = indexer.object_history("obj0000000001")
        assert len(history) == 6

    def test_history_survives_archiving_to_ppp(self, indexer):
        feed_trajectory(indexer, steps=6)
        aging = indexer.config.aging_interval_s
        indexer.archive_aged(now=aging + 3.0)
        counts = indexer.archive_aged(now=2 * aging + 5.0)
        assert counts["archived"] > 0
        indexer.archiver.flush_all(now=2 * aging + 6.0)
        history = indexer.object_history("obj0000000001")
        assert len(history) == 6
        # The archived records really live in the PPP archive now.
        assert indexer.archiver.stats.records_archived > 0


class TestRegionHistory:
    def test_region_history_after_archiving(self, indexer):
        feed_trajectory(indexer, steps=6, start=(10.0, 10.0))
        feed_trajectory(indexer, object_index=2, steps=6, start=(80.0, 80.0))
        aging = indexer.config.aging_interval_s
        indexer.archive_aged(now=aging + 10.0)
        indexer.archive_aged(now=2 * aging + 10.0)
        indexer.archiver.flush_all(now=2 * aging + 11.0)
        region = BoundingBox(0.0, 0.0, 40.0, 40.0)
        records = indexer.region_history(region)
        assert records
        assert all(region.contains_point(record.location) for record in records)
        assert {record.object_id for record in records} == {"obj0000000001"}

    def test_region_history_without_archiver(self, small_config):
        from repro.core.moist import MoistIndexer

        indexer = MoistIndexer(small_config)
        engine = HistoryQueryEngine(small_config, indexer.location_table, archiver=None)
        assert engine.region_history(BoundingBox(0.0, 0.0, 10.0, 10.0)) == []
        assert engine.popular_cells(level=3) == []


class TestPopularCells:
    def test_popular_cells_ranked_by_visits(self, indexer):
        # Object 1 lingers around (10, 10); object 2 visits (80, 80) once.
        feed_trajectory(indexer, object_index=1, steps=8, start=(10.0, 10.0))
        indexer.update(make_update(2, 80.0, 80.0, t=0.0))
        aging = indexer.config.aging_interval_s
        indexer.archive_aged(now=aging + 10.0)
        indexer.archive_aged(now=2 * aging + 10.0)
        indexer.archiver.flush_all(now=2 * aging + 11.0)
        popular = indexer.history.popular_cells(level=3, top_n=2)
        assert popular
        top = popular[0]
        assert top["visits"] >= popular[-1]["visits"]
        # The lingering object dominates: the hottest cell lies on its
        # trajectory, not at the one-off visit of object 2.
        assert top["visits"] > 1
        assert not top["cell"].to_box(indexer.config.world).contains_point(Point(80.0, 80.0))

    def test_top_n_must_be_positive(self, indexer):
        with pytest.raises(QueryError):
            indexer.history.popular_cells(level=3, top_n=0)

"""Tests for FLAG (Algorithms 3 and 4)."""

import random

import pytest

from repro.core.flag import FlagTuner, LevelCacheRecord
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id


def load_cluster(indexer, count, center, spread, seed=3, id_offset=0):
    rng = random.Random(seed)
    for index in range(count):
        point = Point(
            min(max(center[0] + rng.uniform(-spread, spread), 0.0), 100.0),
            min(max(center[1] + rng.uniform(-spread, spread), 0.0), 100.0),
        )
        indexer.update(
            UpdateMessage(format_object_id(id_offset + index), point, Vector(0.0, 0.0), 0.0)
        )


class TestLevelComputation:
    def test_dense_area_gets_finer_level_than_sparse(self, indexer):
        load_cluster(indexer, 200, center=(20.0, 20.0), spread=5.0)
        load_cluster(indexer, 5, center=(80.0, 80.0), spread=5.0, id_offset=1000)
        tuner = indexer.flag
        dense_level = tuner.compute_level(Point(20.0, 20.0))
        sparse_level = tuner.compute_level(Point(80.0, 80.0))
        assert dense_level > sparse_level

    def test_level_clamped_to_valid_range(self, indexer):
        load_cluster(indexer, 3, center=(50.0, 50.0), spread=40.0)
        level = indexer.flag.compute_level(Point(50.0, 50.0))
        assert 1 <= level <= indexer.config.storage_level

    def test_empty_index_returns_valid_level(self, indexer):
        level = indexer.flag.compute_level(Point(50.0, 50.0))
        assert 1 <= level <= indexer.config.storage_level

    def test_total_objects_hint_tracks_updates(self, indexer):
        load_cluster(indexer, 10, center=(50.0, 50.0), spread=10.0)
        assert indexer.flag.total_objects_hint == 10

    def test_probe_reads_counted(self, indexer):
        load_cluster(indexer, 50, center=(50.0, 50.0), spread=20.0)
        before = indexer.flag.stats.probe_reads
        indexer.flag.compute_level(Point(50.0, 50.0))
        assert indexer.flag.stats.probe_reads > before


class TestLevelCache:
    def test_cache_record_covers(self):
        record = LevelCacheRecord(level=5, left_key="aaa", right_key="ccc", created_time=0.0)
        assert record.covers("bbb")
        assert record.covers("aaa")
        assert not record.covers("ddd")

    def test_repeated_lookup_hits_cache(self, indexer):
        load_cluster(indexer, 50, center=(50.0, 50.0), spread=20.0)
        location = Point(50.0, 50.0)
        first = indexer.flag.best_level(location, now=0.0)
        second = indexer.flag.best_level(location, now=1.0)
        assert first == second
        assert indexer.flag.stats.cache_hits == 1
        assert indexer.flag.stats.recomputations == 1

    def test_nearby_location_reuses_cached_range(self, indexer):
        load_cluster(indexer, 50, center=(50.0, 50.0), spread=20.0)
        indexer.flag.best_level(Point(50.0, 50.0), now=0.0)
        # A location in the same chosen cell should hit the cached range.
        indexer.flag.best_level(Point(50.5, 50.5), now=1.0)
        assert indexer.flag.stats.cache_hits >= 1

    def test_stale_entries_recomputed(self, indexer):
        load_cluster(indexer, 50, center=(50.0, 50.0), spread=20.0)
        location = Point(50.0, 50.0)
        indexer.flag.best_level(location, now=0.0)
        ttl = indexer.config.flag_cache_ttl_s
        indexer.flag.best_level(location, now=ttl + 1.0)
        assert indexer.flag.stats.recomputations == 2

    def test_invalidate_clears_cache(self, indexer):
        load_cluster(indexer, 50, center=(50.0, 50.0), spread=20.0)
        indexer.flag.best_level(Point(50.0, 50.0), now=0.0)
        assert indexer.flag.cache_size() == 1
        indexer.flag.invalidate()
        assert indexer.flag.cache_size() == 0

    def test_clustering_invalidates_cache(self, indexer):
        # Two co-moving leaders that will merge.
        indexer.update(UpdateMessage("a", Point(10.0, 10.0), Vector(1.0, 0.0), 0.0))
        indexer.update(UpdateMessage("b", Point(12.0, 10.0), Vector(1.0, 0.0), 0.0))
        indexer.flag.best_level(Point(10.0, 10.0), now=0.0)
        assert indexer.flag.cache_size() == 1
        indexer.run_clustering(now=1.0)
        assert indexer.flag.cache_size() == 0

    def test_hit_ratio(self, indexer):
        load_cluster(indexer, 30, center=(50.0, 50.0), spread=10.0)
        for query in range(4):
            indexer.flag.best_level(Point(50.0, 50.0), now=float(query))
        assert indexer.flag.stats.hit_ratio == pytest.approx(0.75)


class TestStandaloneTuner:
    def test_explicit_hint_used(self, indexer):
        tuner = FlagTuner(indexer.config, indexer.spatial_table, total_objects_hint=4096)
        # With n=4096 and sigma=4 the uniform guess is 1/2*log2(1024) = 5.
        assert tuner._initial_level(4096, 4) == 5

    def test_initial_level_small_population(self, indexer):
        tuner = FlagTuner(indexer.config, indexer.spatial_table)
        assert tuner._initial_level(3, 8) == 1

    def test_level_delta_signs(self):
        assert FlagTuner._level_delta(1000, 8) > 0
        assert FlagTuner._level_delta(1, 64) < 0
        assert FlagTuner._level_delta(8, 8) == 0
        assert FlagTuner._level_delta(0, 8) == -1

"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout that has not been installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bigtable.emulator import BigtableEmulator
from repro.core.config import MoistConfig
from repro.core.moist import MoistIndexer
from repro.geometry.bbox import BoundingBox

from helpers import make_update


SMALL_WORLD = BoundingBox(0.0, 0.0, 100.0, 100.0)


@pytest.fixture
def small_config() -> MoistConfig:
    """A MOIST configuration on a 100x100 world with coarse levels, suited to
    tests that reason about exact cells and schools."""
    return MoistConfig(
        world=SMALL_WORLD,
        storage_level=8,
        nn_level_delta=2,
        clustering_cell_level=2,
        deviation_threshold=5.0,
        velocity_threshold=1.0,
        clustering_interval_s=10.0,
        sigma=4,
    )


@pytest.fixture
def indexer(small_config: MoistConfig) -> MoistIndexer:
    """A fresh MOIST indexer on the small world."""
    return MoistIndexer(small_config)


@pytest.fixture
def emulator() -> BigtableEmulator:
    """A fresh BigTable emulator."""
    return BigtableEmulator()


@pytest.fixture
def update_factory():
    """Expose :func:`make_update` as a fixture."""
    return make_update

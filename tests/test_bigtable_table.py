"""Tests for the emulated BigTable table."""

import pytest

from repro.bigtable.cost import OpKind
from repro.bigtable.table import Cell, ColumnFamily, Table
from repro.errors import ColumnFamilyError, RowNotFoundError


def make_table(**kwargs):
    families = kwargs.pop(
        "families",
        [
            ColumnFamily("mem", in_memory=True, max_versions=3),
            ColumnFamily("disk", in_memory=False, max_versions=10),
        ],
    )
    return Table("test", families, **kwargs)


class TestSchema:
    def test_table_requires_families(self):
        with pytest.raises(ColumnFamilyError):
            Table("empty", [])

    def test_duplicate_family_rejected(self):
        with pytest.raises(ColumnFamilyError):
            Table("dup", [ColumnFamily("a"), ColumnFamily("a")])

    def test_unknown_family_rejected_on_write(self):
        table = make_table()
        with pytest.raises(ColumnFamilyError):
            table.write("row", "nope", "q", 1, 0.0)

    def test_add_family(self):
        table = make_table()
        table.add_family(ColumnFamily("extra"))
        assert "extra" in table.family_names
        with pytest.raises(ColumnFamilyError):
            table.add_family(ColumnFamily("extra"))


class TestPointOperations:
    def test_write_then_read_latest(self):
        table = make_table()
        table.write("row1", "mem", "q", "value", timestamp=1.0)
        cell = table.read_latest("row1", "mem", "q")
        assert cell == Cell(timestamp=1.0, value="value")

    def test_read_missing_returns_none(self):
        table = make_table()
        assert table.read_latest("nope", "mem", "q") is None

    def test_versions_newest_first(self):
        table = make_table()
        table.write("row", "mem", "q", "old", timestamp=1.0)
        table.write("row", "mem", "q", "new", timestamp=2.0)
        versions = table.read_versions("row", "mem", "q")
        assert [cell.value for cell in versions] == ["new", "old"]

    def test_max_versions_enforced(self):
        table = make_table()
        for index in range(5):
            table.write("row", "mem", "q", index, timestamp=float(index))
        versions = table.read_versions("row", "mem", "q")
        assert len(versions) == 3
        assert versions[0].value == 4

    def test_out_of_order_timestamps_sorted(self):
        table = make_table()
        table.write("row", "mem", "q", "late", timestamp=5.0)
        table.write("row", "mem", "q", "early", timestamp=1.0)
        assert table.read_latest("row", "mem", "q").value == "late"

    def test_delete_cell(self):
        table = make_table()
        table.write("row", "mem", "q", 1, 0.0)
        assert table.delete_cell("row", "mem", "q")
        assert not table.delete_cell("row", "mem", "q")
        assert table.read_latest("row", "mem", "q") is None

    def test_delete_last_cell_removes_row(self):
        table = make_table()
        table.write("row", "mem", "q", 1, 0.0)
        table.delete_cell("row", "mem", "q")
        assert table.row_count() == 0

    def test_delete_row(self):
        table = make_table()
        table.write("row", "mem", "a", 1, 0.0)
        table.write("row", "mem", "b", 2, 0.0)
        assert table.delete_row("row")
        assert table.row_count() == 0

    def test_read_row_returns_all_families(self):
        table = make_table()
        table.write("row", "mem", "a", 1, 0.0)
        table.write("row", "disk", "b", 2, 0.0)
        row = table.read_row("row")
        assert row["mem"]["a"][0].value == 1
        assert row["disk"]["b"][0].value == 2

    def test_read_row_missing_raises(self):
        table = make_table()
        with pytest.raises(RowNotFoundError):
            table.read_row("missing")

    def test_row_exists(self):
        table = make_table()
        assert not table.row_exists("row")
        table.write("row", "mem", "q", 1, 0.0)
        assert table.row_exists("row")


class TestScansAndBatches:
    def test_scan_returns_rows_in_key_order(self):
        table = make_table()
        for key in ["c", "a", "b"]:
            table.write(key, "mem", "q", key, 0.0)
        keys = [row_key for row_key, _ in table.scan()]
        assert keys == ["a", "b", "c"]

    def test_scan_range(self):
        table = make_table()
        for key in ["a", "b", "c", "d"]:
            table.write(key, "mem", "q", key, 0.0)
        keys = [row_key for row_key, _ in table.scan("b", "d")]
        assert keys == ["b", "c"]

    def test_scan_keys(self):
        table = make_table()
        table.write("a", "mem", "q", 1, 0.0)
        table.write("b", "mem", "q", 2, 0.0)
        assert table.scan_keys() == ["a", "b"]

    def test_count_range(self):
        table = make_table()
        for key in ["a", "b", "c"]:
            table.write(key, "mem", "q", key, 0.0)
        assert table.count_range("a", "c") == 2

    def test_batch_read(self):
        table = make_table()
        table.write("a", "mem", "q", 1, 0.0)
        table.write("b", "mem", "q", 2, 0.0)
        result = table.batch_read(["a", "b", "missing"])
        assert set(result) == {"a", "b"}

    def test_batch_write(self):
        table = make_table()
        table.batch_write(
            [("a", "mem", "q", 1, 0.0), ("b", "mem", "q", 2, 0.0)]
        )
        assert table.row_count() == 2

    def test_batch_delete(self):
        table = make_table()
        table.write("a", "mem", "q", 1, 0.0)
        table.write("b", "mem", "q", 2, 0.0)
        table.batch_delete([("a", "mem", "q")])
        assert table.row_count() == 1


class TestCostAccounting:
    def test_point_ops_charged(self):
        table = make_table()
        table.write("a", "mem", "q", 1, 0.0)
        table.read_latest("a", "mem", "q")
        table.delete_cell("a", "mem", "q")
        assert table.counter.count(OpKind.WRITE) == 1
        assert table.counter.count(OpKind.READ) == 1
        assert table.counter.count(OpKind.DELETE) == 1

    def test_scan_charged_per_row(self):
        table = make_table()
        for key in ["a", "b", "c"]:
            table.write(key, "mem", "q", key, 0.0)
        table.scan()
        assert table.counter.rows_touched(OpKind.SCAN) == 3

    def test_batch_cheaper_than_points(self):
        batch_table = make_table()
        point_table = make_table()
        mutations = [(f"k{i}", "mem", "q", i, 0.0) for i in range(20)]
        batch_table.batch_write(mutations)
        for key, family, qualifier, value, ts in mutations:
            point_table.write(key, family, qualifier, value, ts)
        assert (
            batch_table.counter.simulated_seconds
            < point_table.counter.simulated_seconds
        )

    def test_uncharged_helpers_do_not_touch_counter(self):
        table = make_table()
        table.write("a", "mem", "q", 1, 0.0)
        before = table.counter.total_calls()
        table.row_count()
        table.all_keys()
        table.memory_cell_count()
        assert table.counter.total_calls() == before


class TestAging:
    def test_age_out_moves_old_cells(self):
        table = make_table()
        table.write("row", "mem", "q", "old", timestamp=1.0)
        table.write("row", "mem", "q", "new", timestamp=10.0)
        moved = table.age_out("mem", "disk", cutoff_timestamp=5.0)
        assert moved == 1
        assert [c.value for c in table.read_versions("row", "mem", "q")] == ["new"]
        assert [c.value for c in table.read_versions("row", "disk", "q")] == ["old"]

    def test_age_out_nothing_to_move(self):
        table = make_table()
        table.write("row", "mem", "q", "new", timestamp=10.0)
        assert table.age_out("mem", "disk", cutoff_timestamp=5.0) == 0

    def test_memory_and_disk_cell_counts(self):
        table = make_table()
        table.write("row", "mem", "q", "old", timestamp=1.0)
        table.write("row", "mem", "q", "new", timestamp=10.0)
        assert table.memory_cell_count() == 2
        assert table.disk_cell_count() == 0
        table.age_out("mem", "disk", cutoff_timestamp=5.0)
        assert table.memory_cell_count() == 1
        assert table.disk_cell_count() == 1

"""Tests for MoistConfig validation."""

import pytest

from repro.core.config import MoistConfig
from repro.errors import ConfigurationError
from repro.geometry.bbox import BoundingBox


class TestValidation:
    def test_defaults_are_valid(self):
        config = MoistConfig()
        assert config.storage_level > config.clustering_cell_level
        assert config.default_nn_level == config.storage_level - config.nn_level_delta

    def test_invalid_storage_level(self):
        with pytest.raises(ConfigurationError):
            MoistConfig(storage_level=0)
        with pytest.raises(ConfigurationError):
            MoistConfig(storage_level=99)

    def test_nn_level_delta_bounds(self):
        with pytest.raises(ConfigurationError):
            MoistConfig(storage_level=5, nn_level_delta=5)
        with pytest.raises(ConfigurationError):
            MoistConfig(nn_level_delta=-1)

    def test_clustering_level_must_be_coarser_than_storage(self):
        with pytest.raises(ConfigurationError):
            MoistConfig(storage_level=8, clustering_cell_level=8)
        with pytest.raises(ConfigurationError):
            MoistConfig(clustering_cell_level=0)

    def test_negative_deviation_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            MoistConfig(deviation_threshold=-1.0)

    def test_zero_deviation_threshold_allowed(self):
        # The paper's worst-case experiments set the error bound to zero.
        assert MoistConfig(deviation_threshold=0.0).deviation_threshold == 0.0

    def test_velocity_threshold_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MoistConfig(velocity_threshold=0.0)

    def test_intervals_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MoistConfig(clustering_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            MoistConfig(aging_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            MoistConfig(flag_cache_ttl_s=0.0)

    def test_sigma_and_memory_records_positive(self):
        with pytest.raises(ConfigurationError):
            MoistConfig(sigma=0)
        with pytest.raises(ConfigurationError):
            MoistConfig(memory_records=0)

    def test_world_must_have_area(self):
        with pytest.raises(ConfigurationError):
            MoistConfig(world=BoundingBox(0.0, 0.0, 0.0, 10.0))

    def test_max_nn_cells_positive(self):
        with pytest.raises(ConfigurationError):
            MoistConfig(max_nn_cells_per_query=0)

    def test_config_is_frozen(self):
        config = MoistConfig()
        with pytest.raises(Exception):
            config.storage_level = 3

"""Tests for the Location Table wrapper."""

import pytest

from repro.bigtable.emulator import BigtableEmulator
from repro.errors import SchemaError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import LocationRecord
from repro.tables.location_table import LocationTable


def record(x=1.0, y=2.0, t=0.0, vx=0.5, vy=0.0):
    return LocationRecord(Point(x, y), Vector(vx, vy), t)


@pytest.fixture
def table():
    return LocationTable(BigtableEmulator(), memory_records=3, disk_columns=2)


class TestConfiguration:
    def test_invalid_memory_records(self):
        with pytest.raises(SchemaError):
            LocationTable(BigtableEmulator(), memory_records=0)

    def test_invalid_disk_columns(self):
        with pytest.raises(SchemaError):
            LocationTable(BigtableEmulator(), disk_columns=0)

    def test_disk_family_names(self):
        assert LocationTable.disk_family(0) == "aged-0"
        assert LocationTable.disk_family(3) == "aged-3"


class TestReadsAndWrites:
    def test_latest_of_unknown_object_is_none(self, table):
        assert table.latest("nope") is None

    def test_add_and_read_latest(self, table):
        table.add_record("obj1", record(t=1.0))
        table.add_record("obj1", record(x=5.0, t=2.0))
        latest = table.latest("obj1")
        assert latest.timestamp == 2.0
        assert latest.location == Point(5.0, 2.0)

    def test_recent_history_newest_first(self, table):
        for t in (1.0, 2.0, 3.0):
            table.add_record("obj1", record(t=t))
        history = table.recent_history("obj1")
        assert [r.timestamp for r in history] == [3.0, 2.0, 1.0]

    def test_memory_records_bound_respected(self, table):
        for t in range(6):
            table.add_record("obj1", record(t=float(t)))
        assert len(table.recent_history("obj1")) == 3

    def test_batch_add_and_batch_latest(self, table):
        table.batch_add([("a", record(t=1.0)), ("b", record(t=2.0))])
        latest = table.batch_latest(["a", "b", "missing"])
        assert set(latest) == {"a", "b"}
        assert latest["b"].timestamp == 2.0

    def test_delete_object(self, table):
        table.add_record("obj1", record())
        assert table.delete_object("obj1")
        assert table.latest("obj1") is None

    def test_object_count(self, table):
        table.add_record("a", record())
        table.add_record("b", record())
        assert table.object_count() == 2
        assert sorted(table.all_object_ids()) == ["a", "b"]


class TestAging:
    def test_age_out_moves_old_records_to_disk(self, table):
        table.add_record("obj1", record(t=1.0))
        table.add_record("obj1", record(t=100.0))
        moved = table.age_out(cutoff_timestamp=50.0)
        assert moved == 1
        assert len(table.recent_history("obj1")) == 1
        aged = table.aged_history("obj1")
        assert len(aged) == 1
        assert aged[0].timestamp == 1.0

    def test_full_history_merges_tiers(self, table):
        table.add_record("obj1", record(t=1.0))
        table.add_record("obj1", record(t=100.0))
        table.age_out(cutoff_timestamp=50.0)
        full = table.full_history("obj1")
        assert [r.timestamp for r in full] == [100.0, 1.0]

    def test_aged_history_of_unknown_object_is_empty(self, table):
        assert table.aged_history("missing") == []

    def test_drain_aged_returns_and_removes(self, table):
        table.add_record("obj1", record(t=1.0))
        table.add_record("obj1", record(t=100.0))
        table.age_out(cutoff_timestamp=50.0)
        drained = table.drain_aged(0, cutoff_timestamp=50.0)
        assert len(drained) == 1
        object_id, rec = drained[0]
        assert object_id == "obj1"
        assert rec.timestamp == 1.0
        assert table.aged_history("obj1") == []

    def test_drain_aged_keeps_fresh_disk_records(self, table):
        table.add_record("obj1", record(t=1.0))
        table.add_record("obj1", record(t=40.0))
        table.add_record("obj1", record(t=100.0))
        table.age_out(cutoff_timestamp=50.0)  # moves t=1 and t=40 to disk
        drained = table.drain_aged(0, cutoff_timestamp=10.0)  # only t=1 drained
        assert [r.timestamp for _, r in drained] == [1.0]
        assert [r.timestamp for r in table.aged_history("obj1")] == [40.0]

    def test_demote_disk_column(self, table):
        table.add_record("obj1", record(t=1.0))
        table.age_out(cutoff_timestamp=50.0)
        moved = table.demote_disk_column(0, cutoff_timestamp=100.0)
        assert moved == 1
        # Still visible through aged_history, now in the second disk column.
        assert len(table.aged_history("obj1")) == 1

    def test_demote_invalid_index(self, table):
        with pytest.raises(SchemaError):
            table.demote_disk_column(1, cutoff_timestamp=0.0)

    def test_memory_and_disk_record_counts(self, table):
        table.add_record("obj1", record(t=1.0))
        table.add_record("obj1", record(t=100.0))
        assert table.memory_record_count() == 2
        table.age_out(cutoff_timestamp=50.0)
        assert table.memory_record_count() == 1
        assert table.disk_record_count() == 1

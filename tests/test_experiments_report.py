"""Tests for the experiment result containers and reporting."""

import pytest

from repro.errors import ReproError
from repro.experiments.report import FigureResult, Series


class TestSeries:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            Series("s", [1, 2, 3], [1, 2])

    def test_y_at(self):
        series = Series("s", [1, 2, 3], [10.0, 20.0, 30.0])
        assert series.y_at(2) == 20.0
        with pytest.raises(ReproError):
            series.y_at(99)


class TestFigureResult:
    def _figure(self):
        figure = FigureResult(
            figure_id="figX", title="Title", x_label="x", y_label="y"
        )
        figure.add_series("a", [1, 2, 3], [1.0, 2.0, 3.0])
        figure.add_series("b", [1, 2, 3], [3.0, 2.0, 1.0])
        figure.add_note("a note")
        return figure

    def test_get_series(self):
        figure = self._figure()
        assert figure.get_series("a").ys == [1.0, 2.0, 3.0]
        with pytest.raises(ReproError):
            figure.get_series("missing")

    def test_to_table_contains_everything(self):
        text = self._figure().to_table()
        assert "figX" in text
        assert "Title" in text
        assert "a note" in text
        for header in ("x", "a", "b"):
            assert header in text
        # Three data rows plus header, separator, title and note lines.
        assert len(text.strip().splitlines()) == 7

    def test_to_table_empty_figure(self):
        figure = FigureResult("figY", "Empty", "x", "y")
        assert "no data" in figure.to_table()

    def test_float_and_int_formatting(self):
        figure = FigureResult("figZ", "Fmt", "x", "y")
        figure.add_series("vals", [1], [2.5])
        figure.add_series("ints", [1], [3.0])
        table = figure.to_table()
        assert "2.500" in table
        assert " 3" in table

"""Tests for repro.spatial.cell."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpatialError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.spatial.cell import CellId, MAX_LEVEL

WORLD = BoundingBox(0.0, 0.0, 100.0, 100.0)

levels = st.integers(min_value=1, max_value=10)
unit_coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestConstruction:
    def test_invalid_level_rejected(self):
        with pytest.raises(SpatialError):
            CellId(MAX_LEVEL + 1, 0)
        with pytest.raises(SpatialError):
            CellId(-1, 0)

    def test_invalid_position_rejected(self):
        with pytest.raises(SpatialError):
            CellId(1, 4)
        with pytest.raises(SpatialError):
            CellId(2, -1)

    def test_from_point_level_zero_is_root(self):
        assert CellId.from_point(Point(0.3, 0.7), 0) == CellId(0, 0)

    def test_from_point_clamps_outside_points(self):
        outside = CellId.from_point(Point(150.0, -10.0), 4, WORLD)
        inside = CellId.from_point(Point(100.0, 0.0), 4, WORLD)
        assert outside == inside

    def test_from_token_round_trip(self):
        cell = CellId.from_point(Point(42.0, 17.0), 6, WORLD)
        assert CellId.from_token(cell.key(), 6) == cell

    def test_from_token_misaligned_rejected(self):
        cell = CellId.from_point(Point(42.0, 17.0), 6, WORLD)
        child = cell.children()[1]
        with pytest.raises(SpatialError):
            CellId.from_token(child.key(), 5)


class TestHierarchy:
    def test_parent_contains_child(self):
        cell = CellId.from_point(Point(10.0, 20.0), 6, WORLD)
        assert cell.parent().contains(cell)
        assert cell.parent(2).contains(cell)

    def test_children_are_contained_and_distinct(self):
        cell = CellId.from_point(Point(10.0, 20.0), 4, WORLD)
        children = cell.children()
        assert len(set(children)) == 4
        for child in children:
            assert cell.contains(child)
            assert child.parent() == cell

    def test_contains_self(self):
        cell = CellId(3, 5)
        assert cell.contains(cell)

    def test_does_not_contain_coarser(self):
        cell = CellId(3, 5)
        assert not cell.contains(cell.parent())

    def test_parent_invalid_level(self):
        with pytest.raises(SpatialError):
            CellId(3, 5).parent(4)

    def test_children_at_max_level_rejected(self):
        with pytest.raises(SpatialError):
            CellId(MAX_LEVEL, 0).children()

    def test_descendants_at(self):
        cell = CellId(2, 3)
        descendants = list(cell.descendants_at(4))
        assert len(descendants) == 16
        assert all(cell.contains(d) for d in descendants)

    @given(levels, unit_coords, unit_coords)
    def test_from_point_consistent_across_levels(self, level, x, y):
        """The cell at level l containing a point is the parent of the cell
        at level l+1 containing the same point."""
        point = Point(x, y)
        coarse = CellId.from_point(point, level)
        fine = CellId.from_point(point, level + 1)
        assert fine.parent() == coarse


class TestKeys:
    def test_key_is_fixed_width_hex(self):
        key = CellId(4, 7).key()
        assert len(key) == 12
        int(key, 16)  # must parse as hexadecimal

    def test_key_range_covers_descendants(self):
        cell = CellId.from_point(Point(50.0, 50.0), 4, WORLD)
        start, end = cell.key_range()
        for child in cell.children():
            assert start <= child.key() < end

    def test_key_range_excludes_siblings(self):
        cell = CellId(4, 7)
        sibling = CellId(4, 8)
        start, end = cell.key_range()
        assert not (start <= sibling.key() < end)

    def test_last_cell_key_range_uses_sentinel(self):
        last = CellId(1, 3)
        start, end = last.key_range()
        assert start < end
        # Every key of its descendants still sorts below the end bound.
        deepest = list(last.descendants_at(3))[-1]
        assert deepest.key() < end

    def test_same_level_keys_are_ordered_by_position(self):
        keys = [CellId(5, pos).key() for pos in range(32)]
        assert keys == sorted(keys)

    @given(levels, st.data())
    def test_range_min_max_consistency(self, level, data):
        pos = data.draw(st.integers(min_value=0, max_value=(1 << (2 * level)) - 1))
        cell = CellId(level, pos)
        assert cell.range_min() <= cell.range_max()
        width = cell.range_max() - cell.range_min() + 1
        assert width == 4 ** (MAX_LEVEL - level)


class TestGeometry:
    def test_to_box_tiles_the_world(self):
        level = 3
        boxes = [CellId(level, pos).to_box(WORLD) for pos in range(4**level)]
        total_area = sum(box.area for box in boxes)
        assert total_area == pytest.approx(WORLD.area)

    def test_center_is_inside_cell_box(self):
        cell = CellId.from_point(Point(33.0, 66.0), 5, WORLD)
        assert cell.to_box(WORLD).contains_point(cell.center(WORLD))

    def test_from_point_box_contains_point(self):
        point = Point(12.3, 45.6)
        cell = CellId.from_point(point, 7, WORLD)
        assert cell.to_box(WORLD).contains_point(point)

    def test_distance_to_contained_point_is_zero(self):
        point = Point(12.3, 45.6)
        cell = CellId.from_point(point, 7, WORLD)
        assert cell.distance_to_point(point, WORLD) == 0.0

    def test_distance_to_far_point_positive(self):
        cell = CellId.from_point(Point(10.0, 10.0), 5, WORLD)
        assert cell.distance_to_point(Point(90.0, 90.0), WORLD) > 0.0


class TestNeighbors:
    def test_interior_cell_has_four_edge_neighbors(self):
        cell = CellId.from_point(Point(50.0, 50.0), 5, WORLD)
        assert len(cell.edge_neighbors()) == 4

    def test_corner_cell_has_two_edge_neighbors(self):
        corner = CellId.from_point(Point(0.0, 0.0), 5, WORLD)
        assert len(corner.edge_neighbors()) == 2

    def test_edge_neighbors_share_an_edge(self):
        cell = CellId.from_point(Point(50.0, 50.0), 5, WORLD)
        gx, gy = cell.grid_coordinates()
        for neighbor in cell.edge_neighbors():
            nx, ny = neighbor.grid_coordinates()
            assert abs(gx - nx) + abs(gy - ny) == 1

    def test_all_neighbors_includes_diagonals(self):
        cell = CellId.from_point(Point(50.0, 50.0), 5, WORLD)
        assert len(cell.all_neighbors()) == 8

    def test_root_cell_has_no_neighbors(self):
        assert CellId(0, 0).edge_neighbors() == []

    def test_neighbor_relation_is_symmetric(self):
        cell = CellId.from_point(Point(23.0, 71.0), 6, WORLD)
        for neighbor in cell.edge_neighbors():
            assert cell in neighbor.edge_neighbors()

"""Multiprocess scale-out: worker lifecycle, ledger merges, determinism.

The headline guarantee under test: the *worker count is invisible*.  A
seeded workload produces byte-identical load-test reports — and bit-equal
merged ledgers — whether the shard federation runs in-process or across
1, 2 or 4 forked workers.
"""

import random

import pytest

from repro.bigtable.backend import (
    CacheAwareBackend,
    ShardedBackend,
    StorageBackend,
)
from repro.bigtable.process_backend import (
    LocalShardedBackend,
    ProcessShardedBackend,
    WorkerPool,
    build_recipes,
    make_scaleout_backend,
)
from repro.errors import ConfigurationError, WorkerDiedError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.server.loadtest import FaultPlan, ScaleOutLoadTest
from repro.server.scaleout import ScaleOutCluster
from repro.workload.queries import NNQuery


def make_messages(count, num_objects, seed=99):
    rng = random.Random(seed)
    return [
        UpdateMessage(
            object_id=format_object_id(rng.randrange(num_objects)),
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            velocity=Vector(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)),
            timestamp=float(index),
        )
        for index, _ in enumerate(range(count))
    ]


def make_queries(count, seed=7, k=5):
    rng = random.Random(seed)
    return [
        NNQuery(
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            k=k,
        )
        for _ in range(count)
    ]


# --------------------------------------------------------------------------
# Worker lifecycle
# --------------------------------------------------------------------------
class TestWorkerPoolLifecycle:
    def test_spawn_health_check_drain_shutdown(self):
        pool = WorkerPool(2)
        assert pool.alive_workers() == [True, True]
        pool.health_check()
        pool.drain()
        pool.shutdown()
        assert pool.closed
        assert pool.alive_workers() == [False, False]

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(1)
        pool.shutdown()
        pool.shutdown()  # second call must be a quiet no-op
        assert pool.closed

    def test_context_manager_shuts_the_pool_down(self):
        with WorkerPool(2) as pool:
            pool.health_check()
        assert pool.closed
        assert pool.alive_workers() == [False, False]

    def test_health_check_raises_after_shutdown(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(ConfigurationError):
            pool.health_check()

    def test_health_check_detects_a_killed_worker(self):
        pool = WorkerPool(2)
        try:
            pool.processes[1].terminate()
            pool.processes[1].join(timeout=5.0)
            with pytest.raises(WorkerDiedError):
                pool.health_check()
        finally:
            pool.shutdown()

    def test_pool_requires_at_least_one_worker(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)

    def test_backend_close_is_reentrant_via_context_manager(self):
        with ProcessShardedBackend(
            build_recipes(2, num_objects=40), num_workers=2
        ) as backend:
            backend.health_check()
        backend.close()  # after __exit__ already closed it
        assert backend.pool.closed


# --------------------------------------------------------------------------
# Protocol conformance and federation semantics
# --------------------------------------------------------------------------
class TestFederationProtocol:
    def test_backends_satisfy_the_storage_protocols(self):
        for backend_kind in ("inprocess", "process"):
            with make_scaleout_backend(backend_kind, 2, num_objects=40) as backend:
                assert isinstance(backend, StorageBackend)
                assert isinstance(backend, ShardedBackend)
                assert isinstance(backend, CacheAwareBackend)

    def test_unknown_backend_kind_is_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scaleout_backend("threads", 2, num_objects=10)

    def test_workers_cap_at_shard_count(self):
        with ProcessShardedBackend(
            build_recipes(2, num_objects=20), num_workers=8
        ) as backend:
            assert backend.num_workers == 2

    def test_shard_preload_partitions_every_object_exactly_once(self):
        from repro.server.worker import shard_of

        backend = LocalShardedBackend(
            build_recipes(3, num_objects=120), build=False
        )
        with backend:
            builds = backend.build_all()
            owned = [0, 0, 0]
            for index in range(120):
                owned[shard_of(format_object_id(index), 3)] += 1
            assert [entry["objects_loaded"] for entry in builds] == owned
            assert sum(owned) == 120
            for client in backend.clients:
                assert client.call("state_signature")  # every shard holds state


# --------------------------------------------------------------------------
# Ledger merge: bit-identical across backends and worker counts
# --------------------------------------------------------------------------
class TestLedgerMergeDeterminism:
    def _drive(self, backend_kind, num_workers):
        cluster = ScaleOutCluster.build(
            4,
            backend=backend_kind,
            num_workers=num_workers,
            num_objects=300,
            seed=17,
            num_servers=2,
        )
        messages = make_messages(400, 300)
        queries = make_queries(60)
        for start in range(0, len(messages), 128):
            cluster.submit_update_batch(messages[start : start + 128])
        cluster.submit_query_batch(queries)
        snapshot = cluster.backend.counter.snapshot()
        fingerprint = (
            snapshot.storage_rpc_count(),
            snapshot.simulated_seconds,
            cluster.backend.simulated_seconds,
            cluster.backend.run_count(),
            cluster.backend.log_record_count(),
            cluster.makespan_seconds(),
        )
        results = cluster.submit_query_batch(queries[:10])
        nn = tuple(
            tuple((n.object_id, n.distance) for n in batch) for batch in results
        )
        cluster.close()
        return fingerprint, nn

    def test_ledgers_and_results_bit_identical_across_worker_counts(self):
        reference = self._drive("inprocess", 1)
        for workers in (1, 2, 4):
            assert self._drive("process", workers) == reference


# --------------------------------------------------------------------------
# Byte-identical load-test reports (the acceptance determinism gate)
# --------------------------------------------------------------------------
class TestScaleOutReportDeterminism:
    def _report(self, backend_kind, num_workers):
        cluster = ScaleOutCluster.build(
            4,
            backend=backend_kind,
            num_workers=num_workers,
            num_objects=400,
            seed=17,
            num_servers=3,
            with_master=True,
        )
        plan = FaultPlan.seeded(5, num_batches=6, num_servers=3)
        test = ScaleOutLoadTest(
            cluster,
            failure_probability=0.01,
            seed=404,
            rebalance_every=2,
            fault_plan=plan,
        )
        result = test.run_mixed_batches(
            make_messages(500, 400), make_queries(100), batch_size=128
        )
        report = result.to_report()
        cluster.close()
        return report

    def test_reports_byte_identical_across_backends_and_worker_counts(self):
        reference = self._report("inprocess", 1)
        for workers in (1, 2, 4):
            assert self._report("process", workers) == reference

    def test_fault_descriptions_name_every_shard(self):
        cluster = ScaleOutCluster.build(
            2,
            backend="inprocess",
            num_objects=200,
            seed=17,
            num_servers=2,
            with_master=True,
        )
        try:
            test = ScaleOutLoadTest(
                cluster,
                failure_probability=0.0,
                fault_plan=FaultPlan.seeded(1, num_batches=2, num_servers=2),
            )
            result = test.run_update_batches(make_messages(300, 200), batch_size=128)
            assert result.faults_applied
            assert any("shard 0" in entry for entry in result.faults_applied)
            assert any("shard 1" in entry for entry in result.faults_applied)
        finally:
            cluster.close()

    def test_control_plane_guards_apply_to_scale_out_tests(self):
        cluster = ScaleOutCluster.build(
            2, backend="inprocess", num_objects=100, seed=17
        )
        try:
            with pytest.raises(ConfigurationError):
                ScaleOutLoadTest(cluster, rebalance_every=2)
            with pytest.raises(ConfigurationError):
                ScaleOutLoadTest(
                    cluster, fault_plan=FaultPlan.seeded(1, 2, 2)
                )
            with pytest.raises(ConfigurationError):
                ScaleOutLoadTest(cluster).run_client_bursts(1.0)
        finally:
            cluster.close()

"""Real restart survival: SIGKILL a worker process, restart, compare bits.

The PR 4/PR 5 property suites prove recovery is lossless under *simulated*
crashes (memtables dropped, logs replayed, same process).  This suite
proves the real thing: a shard worker persisting to real files in a tmp
directory is killed with SIGKILL mid-workload — no atexit handlers, no
graceful shutdown frame, no flush — and a freshly forked worker pointed at
the same directory must rebuild bit-identical state from the manifest,
run files and journal tail alone:

* same tablet boundaries and keys (``state_signature``);
* same full row contents (``full_row_signature``);
* same NN results for a fixed probe set (``nn_signature``);
* a bare :class:`~repro.bigtable.table.Table` killed mid-mutation-program
  and restarted finishes the program with exactly the state of an
  uncrashed in-process reference.
"""

from __future__ import annotations

import os
import random
import tempfile

import pytest

from repro.bigtable.process_backend import ProcessShardClient, WorkerPool
from repro.bigtable.table import ColumnFamily, Table
from repro.bigtable.tablet import TabletOptions
from repro.experiments.common import uniform_leader_indexer
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.server.worker import ShardRecipe
from repro.workload.queries import NNQueryWorkload

from test_lsm_recovery_property import (
    apply_op,
    knob_dict,
    random_ops,
    state_of,
)


def _update_stream(rng, num_objects, count):
    return [
        UpdateMessage(
            object_id=format_object_id(rng.randrange(num_objects)),
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            velocity=Vector(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)),
            timestamp=float(step) / 10.0,
        )
        for step, _ in enumerate(range(count))
    ]


def _kill_hard(pool: WorkerPool) -> None:
    """SIGKILL every worker (no shutdown frame, no chance to flush)."""
    for process in pool.processes:
        process.kill()
        process.join(timeout=10.0)
        assert not process.is_alive()
    pool.shutdown()


def test_killed_worker_restarts_bit_identical_indexer(tmp_path):
    num_objects = 300
    recipe = ShardRecipe(
        num_objects=num_objects,
        seed=11,
        num_servers=2,
        storage_dir=str(tmp_path),
    )
    rng = random.Random(42)
    messages = _update_stream(rng, num_objects, 400)
    queries = NNQueryWorkload(
        uniform_leader_indexer(10, seed=1).config.world, k=8, seed=3
    ).batch(20)

    pool = WorkerPool(1)
    client = ProcessShardClient(pool.connections[0], 0)
    client.call("build_indexer", recipe)
    client.begin_update_batch(messages).result()
    client.begin_query_batch(queries).result()
    before_state = client.call("state_signature")
    before_rows = client.call("full_row_signature")
    before_nn = client.call("nn_signature", queries)
    _kill_hard(pool)

    # The shard directory now holds real bytes written by the dead process.
    shard_dir = recipe.shard_storage_dir
    assert os.path.isdir(shard_dir)
    assert any(
        os.path.exists(os.path.join(shard_dir, entry, "MANIFEST.bin"))
        for entry in os.listdir(shard_dir)
    )

    pool = WorkerPool(1)
    try:
        client = ProcessShardClient(pool.connections[0], 0)
        client.call("build_indexer", recipe)
        assert client.call("state_signature") == before_state
        assert client.call("full_row_signature") == before_rows
        assert client.call("nn_signature", queries) == before_nn
    finally:
        pool.shutdown()


@pytest.mark.parametrize("seed", [0, 7])
def test_killed_worker_resumes_mutation_program_losslessly(tmp_path, seed):
    """Kill the worker mid-program; the restarted worker finishes the
    program and must match an uncrashed in-process reference exactly."""
    rng = random.Random(1000 + seed)
    ops = random_ops(rng, length=120)
    kill_at = rng.randrange(1, len(ops))
    knobs = knob_dict(random.Random(2000 + seed))
    storage_dir = str(tmp_path / "bare-table")

    reference = Table(
        "t",
        [ColumnFamily("mem", max_versions=3), ColumnFamily("disk", max_versions=5)],
        options=TabletOptions(**knobs),
    )
    for op in ops:
        apply_op(reference, op)

    pool = WorkerPool(1)
    client = ProcessShardClient(pool.connections[0], 0)
    client.call("build_table", knobs, storage_dir=storage_dir)
    client.call("table_apply", ops[:kill_at])
    _kill_hard(pool)

    pool = WorkerPool(1)
    try:
        client = ProcessShardClient(pool.connections[0], 0)
        # The knobs ride along but are ignored on restore: a restored
        # table takes its options from its own manifest.
        client.call("build_table", knobs, storage_dir=storage_dir)
        client.call("table_apply", ops[kill_at:])
        assert client.call("table_state") == state_of(reference), (
            f"seed {seed}: state diverged after SIGKILL at op "
            f"{kill_at}/{len(ops)}"
        )
    finally:
        pool.shutdown()


def test_restart_after_graceful_close_also_restores(tmp_path):
    """Restore is not kill-specific: a cleanly closed worker's files
    restore the same way (the checkpoint/journal pair is always current)."""
    recipe = ShardRecipe(
        num_objects=120, seed=5, num_servers=1, storage_dir=str(tmp_path)
    )
    rng = random.Random(9)
    messages = _update_stream(rng, 120, 150)

    with WorkerPool(1) as pool:
        client = ProcessShardClient(pool.connections[0], 0)
        client.call("build_indexer", recipe)
        client.begin_update_batch(messages).result()
        before = client.call("full_row_signature")

    with WorkerPool(1) as pool:
        client = ProcessShardClient(pool.connections[0], 0)
        client.call("build_indexer", recipe)
        assert client.call("full_row_signature") == before

"""Cluster-level crash recovery and the recovery experiment harness."""

import random

import pytest

from repro.bigtable.cost import OpKind
from repro.bigtable.tablet import TabletOptions
from repro.experiments.common import uniform_leader_indexer
from repro.experiments.recovery import (
    _nn_signature,
    _state_signature,
    run_recovery,
)
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.server.cluster import ServerCluster
from repro.workload.queries import NNQueryWorkload


def update_stream(num_objects, count, seed):
    rng = random.Random(seed)
    return [
        UpdateMessage(
            object_id=format_object_id(rng.randrange(num_objects)),
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            velocity=Vector(1.0, 0.5),
            timestamp=float(index) / 10.0,
        )
        for index in range(count)
    ]


def build(num_objects=600, flush_rows=128, seed=29):
    options = TabletOptions(memtable_flush_rows=flush_rows)
    indexer = uniform_leader_indexer(
        num_objects, seed=seed, tablet_options=options
    )
    return indexer, ServerCluster(indexer, num_servers=3)


class TestClusterCrashAndRecover:
    @pytest.mark.parametrize("crash_fraction", [0.0, 0.33, 1.0])
    def test_crash_at_any_prefix_is_invisible(self, crash_fraction):
        messages = update_stream(600, 900, seed=7)
        crash_at = int(len(messages) * crash_fraction)
        queries = NNQueryWorkload(
            build()[0].config.world, k=8, seed=3
        ).batch(20)

        ref_indexer, ref_cluster = build()
        ref_cluster.submit_update_batch(messages)

        crash_indexer, crash_cluster = build()
        crash_cluster.submit_update_batch(messages[:crash_at])
        report = crash_cluster.crash_and_recover()
        crash_cluster.submit_update_batch(messages[crash_at:])

        assert _state_signature(crash_indexer) == _state_signature(ref_indexer)
        assert _nn_signature(crash_indexer, queries) == _nn_signature(
            ref_indexer, queries
        )
        assert report.simulated_seconds >= 0.0
        assert report.to_text().startswith("crash recovery")

    def test_recovery_report_accounts_runs_and_records(self):
        indexer, cluster = build(flush_rows=64)
        cluster.submit_update_batch(update_stream(600, 600, seed=11))
        runs_before = indexer.emulator.run_count()
        log_before = indexer.emulator.log_record_count()
        report = cluster.crash_and_recover()
        assert report.runs_opened == runs_before
        assert report.log_records_replayed == log_before
        assert report.simulated_seconds > 0.0
        # Recovery leaves durable state in place: recovering again replays
        # the same tail.
        assert cluster.crash_and_recover().log_records_replayed == log_before

    def test_write_amplification_stays_within_budget(self):
        indexer, cluster = build(flush_rows=256)
        cluster.submit_update_batch(update_stream(600, 1200, seed=13))
        for stats in indexer.tablet_stats():
            assert stats.write_amplification <= 3.0
        assert indexer.write_amplification() <= 3.0

    def test_default_knobs_are_log_only(self):
        indexer = uniform_leader_indexer(300, seed=5)
        cluster = ServerCluster(indexer, num_servers=2)
        cluster.submit_update_batch(update_stream(300, 300, seed=5))
        assert indexer.emulator.run_count() == 0
        assert indexer.write_amplification() == pytest.approx(1.0)
        counter = indexer.emulator.counter
        assert counter.durability_rows_touched(OpKind.LOG_APPEND) > 0
        # Durability is additive: the paper-facing ledgers never see it.
        assert OpKind.LOG_APPEND not in counter.counts
        report = cluster.crash_and_recover()
        assert report.runs_opened == 0
        assert report.log_records_replayed > 0


class TestRecoveryExperiment:
    def test_sweep_shape_and_tradeoff(self):
        figure = run_recovery(
            memtable_sizes=(64, None),
            num_objects=400,
            num_updates=600,
            num_servers=3,
            num_queries=10,
        )
        recovery_ms = figure.get_series("recovery ms")
        replayed = figure.get_series("log records replayed")
        amplification = figure.get_series("max tablet write amplification")
        assert len(recovery_ms.ys) == 2
        # Small memtable: short replay; disabled flushing: full-log replay
        # at write amplification 1.0.
        assert replayed.ys[0] < replayed.ys[1]
        assert recovery_ms.ys[0] < recovery_ms.ys[1]
        assert amplification.ys[1] == pytest.approx(1.0)
        assert amplification.ys[0] >= 1.0
        rendered = figure.to_table()
        assert "recovery" in rendered

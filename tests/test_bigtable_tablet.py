"""Tests for the tablet layer: options, splits, merges, routing, group commit."""

import pytest

from repro.bigtable.cost import CostModel, OpKind
from repro.bigtable.emulator import BigtableEmulator
from repro.bigtable.sorted_map import SortedMap
from repro.bigtable.table import ColumnFamily, Table
from repro.bigtable.tablet import TabletLocator, TabletOptions
from repro.errors import ConfigurationError

SMALL = TabletOptions(split_threshold=8, merge_threshold=4, group_commit_size=16)


def make_table(options=SMALL):
    return Table("t", [ColumnFamily("f", max_versions=2)], options=options)


def fill(table, count, prefix="k"):
    for index in range(count):
        table.write(f"{prefix}{index:04d}", "f", "q", index, float(index))


class TestTabletOptions:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TabletOptions(split_threshold=1)
        with pytest.raises(ConfigurationError):
            TabletOptions(merge_threshold=-1)
        with pytest.raises(ConfigurationError):
            TabletOptions(split_threshold=8, merge_threshold=8)
        with pytest.raises(ConfigurationError):
            TabletOptions(max_tablets=0)
        with pytest.raises(ConfigurationError):
            TabletOptions(group_commit_size=0)

    def test_defaults_are_consistent(self):
        options = TabletOptions()
        assert options.merge_threshold < options.split_threshold


class TestSortedMapSplitPrimitives:
    def test_split_off_moves_upper_half(self):
        rows = SortedMap()
        for key in ["a", "b", "c", "d"]:
            rows.set(key, key.upper())
        upper = rows.split_off("c")
        assert rows.keys() == ["a", "b"]
        assert upper.keys() == ["c", "d"]
        assert upper.get("d") == "D"

    def test_absorb_after_requires_greater_keys(self):
        left = SortedMap()
        left.set("b", 1)
        right = SortedMap()
        right.set("a", 2)
        with pytest.raises(ValueError):
            left.absorb_after(right)

    def test_absorb_after_appends(self):
        left = SortedMap()
        left.set("a", 1)
        right = SortedMap()
        right.set("b", 2)
        left.absorb_after(right)
        assert left.keys() == ["a", "b"]
        assert len(right) == 0


class TestSplitting:
    def test_table_starts_with_one_tablet(self):
        table = make_table()
        assert table.tablet_count() == 1

    def test_split_beyond_threshold(self):
        table = make_table()
        fill(table, 20)
        assert table.tablet_count() >= 2
        assert table.split_count >= 1
        assert table.row_count() == 20

    def test_split_preserves_scan_order(self):
        table = make_table()
        fill(table, 30)
        keys = [key for key, _ in table.scan()]
        assert keys == sorted(keys)
        assert len(keys) == 30

    def test_max_tablets_bounds_splitting(self):
        options = TabletOptions(split_threshold=2, merge_threshold=1, max_tablets=3)
        table = make_table(options)
        fill(table, 50)
        assert table.tablet_count() <= 3
        assert table.row_count() == 50

    def test_tablet_ranges_partition_keyspace(self):
        table = make_table()
        fill(table, 40)
        tablets = table.tablets()
        assert tablets[0].start_key == ""
        for left, right in zip(tablets, tablets[1:]):
            assert left.start_key < right.start_key
        stats = table.tablet_stats()
        for earlier, later in zip(stats, stats[1:]):
            assert earlier.end_key == later.start_key
        assert stats[-1].end_key is None


class TestLocatorRouting:
    def test_every_key_routes_to_owning_tablet(self):
        table = make_table()
        fill(table, 40)
        for key in table.all_keys():
            tablet = table.tablet_for_key(key)
            assert key in tablet.rows
            assert tablet.start_key <= key

    def test_routing_respects_range_bounds(self):
        table = make_table()
        fill(table, 40)
        for stat in table.tablet_stats():
            tablet = table.tablet_for_key(stat.start_key or "a")
            if stat.start_key:
                assert tablet.tablet_id == stat.tablet_id

    def test_reads_cross_tablet_boundaries(self):
        table = make_table()
        fill(table, 40)
        rows = table.scan("k0005", "k0035")
        assert [key for key, _ in rows] == [f"k{i:04d}" for i in range(5, 35)]
        assert table.count_range("k0005", "k0035") == 30

    def test_locator_scan_limit(self):
        locator = TabletLocator("t", SMALL)
        for index in range(10):
            locator.locate(f"k{index}").rows.set(f"k{index}", index)
        seen = list(locator.scan(None, None, limit=4))
        assert len(seen) == 4


class TestMerging:
    def test_deletes_merge_tablets_back(self):
        table = make_table()
        fill(table, 30)
        assert table.tablet_count() > 1
        for index in range(28):
            table.delete_row(f"k{index:04d}")
        assert table.tablet_count() == 1
        assert table.merge_count >= 1
        assert table.row_count() == 2

    def test_uncharged_deletes_still_merge(self):
        # The aging drains delete with _charge=False; emptied tablets must
        # still merge away instead of fragmenting the table forever.
        table = make_table()
        fill(table, 20)
        assert table.tablet_count() > 1
        for index in range(20):
            table.delete_cell(f"k{index:04d}", "f", "q", _charge=False)
        assert table.row_count() == 0
        assert table.tablet_count() == 1

    def test_batch_delete_charges_survive_merges(self):
        # Per-tablet batch charges must land on (or be absorbed into) live
        # tablets even when the batch itself collapses the tablet layout.
        table = make_table()
        fill(table, 30)
        assert table.tablet_count() > 1
        table.batch_delete([(f"k{index:04d}", "f", "q") for index in range(30)])
        assert table.tablet_count() == 1
        live = table.tablets()[0]
        assert live.counter.rows_touched(OpKind.BATCH_WRITE) == 30

    def test_group_mode_uncharged_deletes_merge_at_flush(self):
        table = make_table()
        fill(table, 20)
        before = table.tablet_count()
        assert before > 1
        with table.group_commit():
            for index in range(20):
                table.delete_cell(f"k{index:04d}", "f", "q", _charge=False)
            # Structural checks are deferred while the group is open.
            assert table.tablet_count() == before
        assert table.tablet_count() == 1

    def test_merge_preserves_data_and_history(self):
        table = make_table()
        fill(table, 20)
        writes_before = sum(
            stat.op_calls for stat in table.tablet_stats()
        )
        for index in range(18):
            table.delete_row(f"k{index:04d}")
        survivors = table.all_keys()
        assert survivors == ["k0018", "k0019"]
        # The surviving tablet absorbed the merged tablets' ledgers.
        calls_after = sum(stat.op_calls for stat in table.tablet_stats())
        assert calls_after >= writes_before


class TestPerTabletAccounting:
    def test_ops_attributed_to_owning_tablet(self):
        table = make_table()
        fill(table, 20)
        first = table.tablet_for_key("k0000")
        last = table.tablet_for_key("k0019")
        assert first.tablet_id != last.tablet_id
        before = last.counter.count(OpKind.READ)
        table.read_latest("k0019", "f", "q")
        assert last.counter.count(OpKind.READ) == before + 1
        assert first.counter.count(OpKind.READ) == 0 or first is not last

    def test_shared_counter_unchanged_by_sharding(self):
        sharded = make_table()
        monolith = make_table(TabletOptions(split_threshold=10_000))
        fill(sharded, 30)
        fill(monolith, 30)
        assert sharded.tablet_count() > 1
        assert monolith.tablet_count() == 1
        assert sharded.counter.simulated_seconds == pytest.approx(
            monolith.counter.simulated_seconds
        )

    def test_emulator_hot_share_and_reset(self):
        emulator = BigtableEmulator(tablet_options=SMALL)
        table = emulator.create_table("t", [ColumnFamily("f")])
        fill(table, 30)
        share = emulator.hot_tablet_share()
        assert 0.0 < share < 1.0
        assert emulator.tablet_count() == table.tablet_count()
        emulator.reset_counters()
        assert emulator.simulated_seconds == 0.0
        assert emulator.hot_tablet_share() == 1.0  # no ops recorded yet

    def test_tablet_stats_cover_all_rows(self):
        emulator = BigtableEmulator(tablet_options=SMALL)
        table = emulator.create_table("t", [ColumnFamily("f")])
        fill(table, 25)
        stats = emulator.tablet_stats()
        assert sum(stat.row_count for stat in stats) == 25


class TestGroupCommit:
    def test_writes_visible_inside_block(self):
        table = make_table()
        with table.group_commit():
            table.write("row", "f", "q", "value", 1.0)
            assert table.read_latest("row", "f", "q").value == "value"

    def test_charges_flushed_at_exit(self):
        table = make_table()
        with table.group_commit():
            for index in range(5):
                table.write(f"k{index}", "f", "q", index, 0.0)
            # Only the reads charged so far; writes flush at exit.
            assert table.counter.count(OpKind.WRITE) == 0
        assert table.counter.count(OpKind.WRITE) == 5

    def test_cost_matches_sequential(self):
        batched = make_table()
        sequential = make_table()
        with batched.group_commit():
            for index in range(40):
                batched.write(f"k{index:04d}", "f", "q", index, 0.0)
        fill(sequential, 40)
        assert batched.counter.simulated_seconds == pytest.approx(
            sequential.counter.simulated_seconds
        )

    def test_split_checks_deferred_to_flush(self):
        table = make_table(TabletOptions(split_threshold=8, merge_threshold=4,
                                         group_commit_size=1000))
        with table.group_commit():
            fill(table, 20)
        assert table.tablet_count() >= 2
        assert table.row_count() == 20

    def test_custom_cost_model_respected(self):
        expensive = Table(
            "t",
            [ColumnFamily("f")],
            counter=None,
            options=SMALL,
        )
        assert expensive.counter.model == CostModel()

    def test_reentrant_blocks_flush_once(self):
        table = make_table()
        with table.group_commit():
            with table.group_commit():
                table.write("row", "f", "q", 1, 0.0)
            # Inner exit must not flush yet.
            assert table.counter.count(OpKind.WRITE) == 0
        assert table.counter.count(OpKind.WRITE) == 1

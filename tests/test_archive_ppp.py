"""Tests for the parallel ping-pong archiver."""

import pytest

from repro.archive.ppp import PPPArchiver
from repro.errors import ArchiveError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import HistoryRecord

WORLD = BoundingBox(0.0, 0.0, 100.0, 100.0)


def record(object_id, t, x=10.0, y=10.0):
    return HistoryRecord(object_id, Point(x, y), Vector(1.0, 0.0), t)


def make_archiver(**kwargs):
    defaults = dict(num_disks=4, page_records=4, world=WORLD)
    defaults.update(kwargs)
    return PPPArchiver(**defaults)


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(ArchiveError):
            make_archiver(num_disks=0)
        with pytest.raises(ArchiveError):
            make_archiver(page_records=0)
        with pytest.raises(ArchiveError):
            make_archiver(record_bytes=0)

    def test_buffer_bytes(self):
        archiver = make_archiver(num_disks=2, page_records=8, record_bytes=32)
        assert archiver.buffer_bytes() == 2 * 8 * 32


class TestIngest:
    def test_home_disk_fixed_by_first_registration(self):
        archiver = make_archiver()
        first = archiver.register_object("obj1", Point(10.0, 10.0))
        second = archiver.register_object("obj1", Point(90.0, 90.0))
        assert first == second
        assert archiver.home_disk("obj1") == first

    def test_unregistered_object_has_no_home(self):
        archiver = make_archiver()
        assert archiver.home_disk("nobody") is None

    def test_records_buffer_until_page_full(self):
        archiver = make_archiver(page_records=3)
        for t in range(2):
            assert archiver.archive(record("obj1", float(t)), now=float(t)) is None
        assert archiver.stats.pages_flushed == 0
        flushed_disk = archiver.archive(record("obj1", 2.0), now=2.0)
        assert flushed_disk == archiver.home_disk("obj1")
        assert archiver.stats.pages_flushed == 1

    def test_archive_many_counts_flushes(self):
        archiver = make_archiver(page_records=2)
        flushed = archiver.archive_many([record("obj1", float(t)) for t in range(4)], now=0.0)
        assert flushed == 2

    def test_flush_all_drains_partial_buffers(self):
        archiver = make_archiver(page_records=100)
        archiver.archive(record("obj1", 0.0), now=0.0)
        archiver.archive(record("obj2", 0.0, x=90.0, y=90.0), now=0.0)
        flushed = archiver.flush_all(now=1.0)
        assert flushed >= 1
        assert archiver.disks.record_count() == 2

    def test_all_records_of_one_object_on_one_disk(self):
        archiver = make_archiver(page_records=2)
        for t in range(8):
            archiver.archive(record("obj1", float(t)), now=float(t))
        archiver.flush_all(now=9.0)
        home = archiver.home_disk("obj1")
        for segment in archiver.disks.all_segments():
            for stored in segment.records:
                if stored.object_id == "obj1":
                    assert segment.disk_index == home


class TestQueries:
    def test_object_history_ordered_and_complete(self):
        archiver = make_archiver(page_records=3)
        for t in range(7):
            archiver.archive(record("obj1", float(t)), now=float(t))
        archiver.flush_all(now=8.0)
        history = archiver.object_history("obj1")
        assert [r.timestamp for r in history] == [float(t) for t in range(7)]

    def test_object_history_time_window(self):
        archiver = make_archiver(page_records=2)
        for t in range(6):
            archiver.archive(record("obj1", float(t)), now=float(t))
        archiver.flush_all(now=7.0)
        window = archiver.object_history("obj1", start_time=2.0, end_time=4.0)
        assert [r.timestamp for r in window] == [2.0, 3.0, 4.0]

    def test_object_history_unknown_object(self):
        archiver = make_archiver()
        assert archiver.object_history("nobody") == []

    def test_object_query_touches_only_home_disk(self):
        archiver = make_archiver(page_records=1, num_disks=4)
        archiver.archive(record("obj1", 0.0, x=10.0, y=10.0), now=0.0)
        archiver.archive(record("obj2", 0.0, x=90.0, y=90.0), now=0.0)
        archiver.stats.segments_scanned = 0
        archiver.object_history("obj1")
        assert archiver.stats.segments_scanned <= 1

    def test_region_history_filters_by_location(self):
        archiver = make_archiver(page_records=1)
        archiver.archive(record("obj1", 0.0, x=10.0, y=10.0), now=0.0)
        archiver.archive(record("obj2", 1.0, x=90.0, y=90.0), now=1.0)
        region = BoundingBox(0.0, 0.0, 50.0, 50.0)
        results = archiver.region_history(region)
        assert [r.object_id for r in results] == ["obj1"]

    def test_segments_per_query_statistic(self):
        archiver = make_archiver(page_records=1)
        archiver.archive(record("obj1", 0.0), now=0.0)
        archiver.object_history("obj1")
        archiver.region_history(WORLD)
        assert archiver.stats.object_queries == 1
        assert archiver.stats.region_queries == 1
        assert archiver.stats.segments_per_query() > 0


class TestDoubleBufferingConstraint:
    def test_constraint_reported(self):
        archiver = make_archiver(page_records=2)
        sound, fill, flush = archiver.double_buffering_is_sound()
        assert sound  # no page filled yet: vacuously sound
        assert fill is None
        assert flush > 0

    def test_constraint_with_slow_fill_is_sound(self):
        archiver = make_archiver(page_records=2)
        archiver.archive(record("obj1", 0.0), now=0.0)
        archiver.archive(record("obj1", 1.0), now=100.0)
        sound, fill, flush = archiver.double_buffering_is_sound()
        assert fill == pytest.approx(100.0)
        assert sound

    def test_constraint_violated_by_instant_fill(self):
        archiver = make_archiver(page_records=2)
        archiver.archive(record("obj1", 0.0), now=0.0)
        archiver.archive(record("obj1", 1.0), now=0.0)
        sound, fill, flush = archiver.double_buffering_is_sound()
        assert fill == 0.0
        assert not sound

"""The RPC layer in isolation: framing, compact codecs, pipelining.

Everything here runs over a plain ``socketpair`` with a thread serving
:func:`repro.server.rpc.serve` — no worker processes — so failures point
at the transport, not at the shard stacks built on top of it.
"""

import pickle
import socket
import threading

import pytest

from repro.errors import (
    ConfigurationError,
    FrameCorruptionError,
    RpcError,
    StaleRequestError,
    WorkerDiedError,
)
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import NeighborResult, UpdateMessage
from repro.server import rpc
from repro.workload.queries import NNQuery


# --------------------------------------------------------------------------
# Framing
# --------------------------------------------------------------------------
def test_frame_round_trip_over_socketpair():
    left, right = socket.socketpair()
    try:
        left.sendall(rpc.encode_frame(rpc.KIND_REQUEST, 7, 3, rpc.OP_PING, b"hi"))
        kind, request_id, shard_id, opcode, body = rpc.read_frame(right)
        assert (kind, request_id, shard_id, opcode, body) == (
            rpc.KIND_REQUEST,
            7,
            3,
            rpc.OP_PING,
            b"hi",
        )
    finally:
        left.close()
        right.close()


def test_read_frame_raises_on_truncated_stream():
    left, right = socket.socketpair()
    try:
        frame = rpc.encode_frame(rpc.KIND_REQUEST, 1, 0, rpc.OP_PING, b"payload")
        left.sendall(frame[: len(frame) - 3])
        left.close()
        with pytest.raises(WorkerDiedError):
            rpc.read_frame(right)
    finally:
        right.close()


def test_read_frame_detects_flipped_body_bit():
    left, right = socket.socketpair()
    try:
        frame = bytearray(
            rpc.encode_frame(rpc.KIND_REQUEST, 1, 0, rpc.OP_CALL, b"payload")
        )
        frame[-2] ^= 0x01  # one bit, deep in the body
        left.sendall(bytes(frame))
        with pytest.raises(FrameCorruptionError, match="crc mismatch"):
            rpc.read_frame(right)
    finally:
        left.close()
        right.close()


def test_read_frame_detects_flipped_header_bit():
    left, right = socket.socketpair()
    try:
        frame = bytearray(
            rpc.encode_frame(rpc.KIND_REQUEST, 7, 3, rpc.OP_CALL, b"payload")
        )
        frame[5] ^= 0x40  # inside the request id field
        left.sendall(bytes(frame))
        with pytest.raises(FrameCorruptionError):
            rpc.read_frame(right)
    finally:
        left.close()
        right.close()


def test_read_frame_times_out_as_worker_death():
    left, right = socket.socketpair()
    try:
        right.settimeout(0.05)
        left.sendall(b"\x00\x00\x00\x20")  # length prefix, then silence
        with pytest.raises(WorkerDiedError, match="timed out"):
            rpc.read_frame(right)
    finally:
        left.close()
        right.close()


# --------------------------------------------------------------------------
# Compact codecs
# --------------------------------------------------------------------------
def _messages():
    return [
        UpdateMessage("obj%010d" % i, Point(1.5 * i, 2.5), Vector(0.1, -0.2), float(i))
        for i in range(5)
    ]


def test_update_batch_codec_round_trips_compact():
    messages = _messages()
    body = rpc.encode_update_batch(messages)
    assert body[0] == 1  # compact flag: ids reconstruct, nothing pickled
    assert rpc.decode_update_batch(body) == messages


def test_update_batch_codec_falls_back_to_pickle_for_odd_ids():
    odd = [
        UpdateMessage("weird-id", Point(1.0, 2.0), Vector(0.0, 0.0), 0.0),
    ]
    body = rpc.encode_update_batch(odd)
    assert body[0] == 0  # pickled flag
    assert rpc.decode_update_batch(body) == odd


def test_query_batch_codec_round_trips():
    queries = [
        NNQuery(location=Point(3.0, 4.0), k=7),
        NNQuery(location=Point(1.0, 1.0), k=2, range_limit=50.0),
    ]
    assert rpc.decode_query_batch(rpc.encode_query_batch(queries)) == queries


def test_neighbor_batches_codec_round_trips_leader_flags():
    batches = [
        [
            NeighborResult("obj%010d" % 1, Point(0.0, 1.0), 2.0, True, None),
            NeighborResult(
                "obj%010d" % 2, Point(3.0, 4.0), 5.0, False, "obj%010d" % 1
            ),
        ],
        [],
    ]
    assert rpc.decode_neighbor_batches(rpc.encode_neighbor_batches(batches)) == batches


def test_call_codec_round_trips_args_and_kwargs():
    body = rpc.encode_call("migrate", ("spatial", "t0"), {"crash_point": None})
    assert rpc.decode_call(body) == ("migrate", ("spatial", "t0"), {"crash_point": None})


def test_error_codec_preserves_exception_type():
    original = ConfigurationError("no such server")
    decoded = rpc.decode_error(rpc.encode_error(original))
    assert isinstance(decoded, ConfigurationError)
    assert str(decoded) == "no such server"


def test_error_codec_degrades_to_rpc_error_for_unpicklable_payloads():
    class Unpicklable(Exception):
        def __reduce__(self):
            raise pickle.PicklingError("nope")

    decoded = rpc.decode_error(rpc.encode_error(Unpicklable("boom")))
    assert isinstance(decoded, RpcError)


# --------------------------------------------------------------------------
# Connection pipelining against a live serve() loop
# --------------------------------------------------------------------------
def _echo_dispatch(shard_id, opcode, body, request_id):
    if opcode == rpc.OP_PING:
        return b""
    return bytes([shard_id]) + body


def _stop_serving(connection, thread):
    """Ask the serve loop to exit and reap the thread."""
    request_id = connection.send_request(0, rpc.OP_SHUTDOWN, b"")
    connection.wait(request_id)
    thread.join(timeout=5.0)
    connection.close()
    assert not thread.is_alive()


@pytest.fixture()
def served_connection():
    left, right = socket.socketpair()
    thread = threading.Thread(target=rpc.serve, args=(right, _echo_dispatch))
    thread.start()
    connection = rpc.RpcConnection(left, timeout_s=10.0)
    yield connection
    _stop_serving(connection, thread)


def test_pipelined_requests_resolve_out_of_order(served_connection):
    first = served_connection.send_request(1, rpc.OP_CALL, b"a")
    second = served_connection.send_request(2, rpc.OP_CALL, b"b")
    # Waiting on the later id first forces the earlier response to park.
    assert served_connection.wait(second) == (rpc.OP_CALL, b"\x02b")
    assert served_connection.wait(first) == (rpc.OP_CALL, b"\x01a")
    assert served_connection.outstanding == 0


def test_batched_send_requests_round_trip(served_connection):
    ids = served_connection.send_requests(
        [(0, rpc.OP_CALL, b"x"), (3, rpc.OP_CALL, b"y"), (0, rpc.OP_PING, b"")]
    )
    bodies = [served_connection.wait(request_id)[1] for request_id in ids]
    assert bodies == [b"\x00x", b"\x03y", b""]


def test_connection_counts_frames_and_bytes(served_connection):
    sent_before = served_connection.bytes_sent
    frames_before = served_connection.frames_sent
    request_id = served_connection.send_request(0, rpc.OP_CALL, b"abc")
    served_connection.wait(request_id)
    wire_frame = rpc.encode_frame(
        rpc.KIND_REQUEST, request_id, 0, rpc.OP_CALL, b"abc"
    )
    assert served_connection.frames_sent - frames_before == 1
    assert served_connection.bytes_sent - sent_before == len(wire_frame)
    # The echo response carries one extra byte (the shard id prefix).
    assert served_connection.bytes_received >= len(wire_frame) + 1


def test_dispatch_errors_reraise_client_side():
    def failing_dispatch(shard_id, opcode, body, request_id):
        raise ConfigurationError("remote guard tripped")

    left, right = socket.socketpair()
    thread = threading.Thread(target=rpc.serve, args=(right, failing_dispatch))
    thread.start()
    connection = rpc.RpcConnection(left, timeout_s=10.0)
    request_id = connection.send_request(0, rpc.OP_CALL, b"")
    with pytest.raises(ConfigurationError, match="remote guard tripped"):
        connection.wait(request_id)
    _stop_serving(connection, thread)


# --------------------------------------------------------------------------
# Failure paths: deadlines, mid-frame closures, corruption, stale retries
# --------------------------------------------------------------------------
def test_wait_deadline_expires_as_worker_death():
    left, right = socket.socketpair()
    try:
        connection = rpc.RpcConnection(left, timeout_s=30.0)
        request_id = connection.send_request(0, rpc.OP_PING, b"")
        # The deadline surfaces either as a socket timeout mapped to
        # WorkerDiedError or, on a late wakeup, as the explicit expiry.
        with pytest.raises(WorkerDiedError, match="timed out|deadline expired"):
            connection.wait(request_id, deadline_s=0.05)
    finally:
        left.close()
        right.close()


def test_wait_surfaces_peer_closed_mid_frame():
    left, right = socket.socketpair()
    try:
        connection = rpc.RpcConnection(left, timeout_s=10.0)
        request_id = connection.send_request(0, rpc.OP_PING, b"")
        # Half a response frame, then the "worker" dies.
        frame = rpc.encode_frame(rpc.KIND_RESPONSE, request_id, 0, rpc.OP_PING, b"")
        right.sendall(frame[: len(frame) // 2])
        right.close()
        # Clean EOF surfaces as "closed mid-frame"; a close with our
        # request still unread in the peer's buffer arrives as ECONNRESET.
        with pytest.raises(WorkerDiedError, match="closed mid-frame|receive failed"):
            connection.wait(request_id)
    finally:
        left.close()


def test_truncated_pipelined_response_fails_every_outstanding_wait():
    left, right = socket.socketpair()
    try:
        connection = rpc.RpcConnection(left, timeout_s=10.0)
        first = connection.send_request(0, rpc.OP_CALL, b"a")
        second = connection.send_request(1, rpc.OP_CALL, b"b")
        # The first response arrives whole, the second is cut mid-frame.
        right.sendall(
            rpc.encode_frame(rpc.KIND_RESPONSE, first, 0, rpc.OP_CALL, b"ok")
        )
        tail = rpc.encode_frame(rpc.KIND_RESPONSE, second, 1, rpc.OP_CALL, b"gone")
        right.sendall(tail[: len(tail) - 4])
        right.close()
        assert connection.wait(first) == (rpc.OP_CALL, b"ok")
        with pytest.raises(WorkerDiedError):
            connection.wait(second)
    finally:
        left.close()


def test_corrupt_response_surfaces_as_frame_corruption():
    left, right = socket.socketpair()
    try:
        connection = rpc.RpcConnection(left, timeout_s=10.0)
        request_id = connection.send_request(0, rpc.OP_CALL, b"")
        frame = bytearray(
            rpc.encode_frame(rpc.KIND_RESPONSE, request_id, 0, rpc.OP_CALL, b"xyz")
        )
        frame[-1] ^= 0xFF
        right.sendall(bytes(frame))
        with pytest.raises(FrameCorruptionError):
            connection.wait(request_id)
    finally:
        left.close()
        right.close()


def test_inject_bitflip_corrupts_exactly_one_send():
    left, right = socket.socketpair()
    try:
        connection = rpc.RpcConnection(left, timeout_s=10.0)
        connection.inject_fault("bitflip")
        connection.send_request(0, rpc.OP_CALL, b"abc")
        with pytest.raises(FrameCorruptionError):
            rpc.read_frame(right)
        # The fault is consumed: the next frame is clean.
        request_id = connection.send_request(0, rpc.OP_CALL, b"abc")
        kind, got_id, _shard, _opcode, body = rpc.read_frame(right)
        assert (kind, got_id, body) == (rpc.KIND_REQUEST, request_id, b"abc")
    finally:
        left.close()
        right.close()


def test_inject_truncate_leaves_the_peer_blocked():
    left, right = socket.socketpair()
    try:
        connection = rpc.RpcConnection(left, timeout_s=10.0)
        connection.inject_fault("truncate")
        connection.send_request(0, rpc.OP_CALL, b"abcdefgh")
        right.settimeout(0.05)
        with pytest.raises(WorkerDiedError, match="timed out"):
            rpc.read_frame(right)
    finally:
        left.close()
        right.close()


def test_inject_fault_rejects_unknown_modes():
    left, right = socket.socketpair()
    try:
        connection = rpc.RpcConnection(left, timeout_s=10.0)
        with pytest.raises(RpcError, match="fault mode"):
            connection.inject_fault("meteor")
    finally:
        left.close()
        right.close()


def test_explicit_request_ids_pin_the_retry_frame(served_connection):
    first = served_connection.send_request(1, rpc.OP_CALL, b"a")
    assert served_connection.wait(first) == (rpc.OP_CALL, b"\x01a")
    # A retry re-sends with the original id; the echo server happily
    # answers it again (dedup lives in the shard dispatch, not here).
    retried = served_connection.send_request(1, rpc.OP_CALL, b"a", request_id=first)
    assert retried == first
    assert served_connection.wait(first) == (rpc.OP_CALL, b"\x01a")
    # Fresh sends continue the counter past the pinned id.
    assert served_connection.send_request(0, rpc.OP_PING, b"") > first


def test_allocate_then_send_pins_batched_ids(served_connection):
    ids = served_connection.allocate_request_ids(3)
    assert ids == sorted(ids)
    sent = served_connection.send_requests(
        [(0, rpc.OP_CALL, b"x"), (1, rpc.OP_CALL, b"y"), (2, rpc.OP_CALL, b"z")],
        request_ids=ids,
    )
    assert sent == ids
    bodies = [served_connection.wait(request_id)[1] for request_id in ids]
    assert bodies == [b"\x00x", b"\x01y", b"\x02z"]


def test_initial_request_id_continues_a_dead_connections_counter():
    left, right = socket.socketpair()
    thread = threading.Thread(target=rpc.serve, args=(right, _echo_dispatch))
    thread.start()
    connection = rpc.RpcConnection(left, timeout_s=10.0, initial_request_id=41)
    request_id = connection.send_request(0, rpc.OP_CALL, b"q")
    assert request_id == 41
    assert connection.next_request_id == 42
    assert connection.wait(request_id) == (rpc.OP_CALL, b"\x00q")
    _stop_serving(connection, thread)


def test_stale_request_errors_cross_the_wire_typed():
    def stale_dispatch(shard_id, opcode, body, request_id):
        raise StaleRequestError(f"request id {request_id} is older")

    left, right = socket.socketpair()
    thread = threading.Thread(target=rpc.serve, args=(right, stale_dispatch))
    thread.start()
    connection = rpc.RpcConnection(left, timeout_s=10.0)
    request_id = connection.send_request(0, rpc.OP_CALL, b"")
    with pytest.raises(StaleRequestError, match="older"):
        connection.wait(request_id)
    _stop_serving(connection, thread)


def test_serve_exits_on_corrupt_request_frame():
    left, right = socket.socketpair()
    thread = threading.Thread(target=rpc.serve, args=(right, _echo_dispatch))
    thread.start()
    try:
        connection = rpc.RpcConnection(left, timeout_s=10.0)
        connection.inject_fault("bitflip")
        request_id = connection.send_request(0, rpc.OP_CALL, b"abc")
        # The worker cannot trust the corrupt header enough to address an
        # error frame, so it exits; the parent sees EOF.
        with pytest.raises(WorkerDiedError):
            connection.wait(request_id, deadline_s=5.0)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        connection.close()
    finally:
        left.close()
        right.close()


# --------------------------------------------------------------------------
# Queued (windowed) sends: coalescing, parked lookups, error shape
# --------------------------------------------------------------------------
def test_queued_requests_coalesce_into_one_send(served_connection):
    sends = []
    original = served_connection._send_bytes

    def counting_send(payload):
        sends.append(len(payload))
        original(payload)

    served_connection._send_bytes = counting_send
    first = served_connection.queue_request(0, rpc.OP_CALL, b"a")
    second = served_connection.queue_request(1, rpc.OP_CALL, b"b")
    third = served_connection.queue_request(2, rpc.OP_CALL, b"c")
    assert sends == []  # nothing on the wire until the flush
    frames_before = served_connection.frames_sent
    assert served_connection.flush_queued() == 3
    served_connection._send_bytes = original
    # One sendall carried all three frames; the frame counter still
    # advances per frame so wire accounting stays comparable.
    assert len(sends) == 1
    assert served_connection.frames_sent - frames_before == 3
    bodies = [served_connection.wait(rid)[1] for rid in (first, second, third)]
    assert bodies == [b"\x00a", b"\x01b", b"\x02c"]


def test_flush_queued_is_a_noop_when_empty(served_connection):
    frames_before = served_connection.frames_sent
    assert served_connection.flush_queued() == 0
    assert served_connection.frames_sent == frames_before


def test_queue_request_pins_explicit_ids(served_connection):
    (pinned,) = served_connection.allocate_request_ids(1)
    assert served_connection.queue_request(0, rpc.OP_CALL, b"x", request_id=pinned) == pinned
    served_connection.flush_queued()
    assert served_connection.wait(pinned) == (rpc.OP_CALL, b"\x00x")


def test_has_parked_reports_out_of_order_arrivals(served_connection):
    first = served_connection.send_request(1, rpc.OP_CALL, b"a")
    second = served_connection.send_request(2, rpc.OP_CALL, b"b")
    assert not served_connection.has_parked(first)
    # Waiting on the later id parks the earlier response.
    served_connection.wait(second)
    assert served_connection.has_parked(first)
    served_connection.wait(first)
    assert not served_connection.has_parked(first)


def test_send_failure_is_wrapped_exactly_once():
    left, right = socket.socketpair()
    connection = rpc.RpcConnection(left, timeout_s=10.0)
    left.close()
    right.close()
    with pytest.raises(WorkerDiedError) as excinfo:
        connection.send_request(0, rpc.OP_PING, b"")
    message = str(excinfo.value)
    # Regression: the raise site wraps the OS error once; callers must
    # not wrap again ("send failed: send failed: [Errno 32] ...").
    assert message.startswith("send failed: ")
    assert message.count("send failed: ") == 1


def test_retry_policy_backoff_schedule():
    policy = rpc.RetryPolicy(
        base_backoff_s=0.1, backoff_multiplier=2.0, max_backoff_s=0.5
    )
    assert policy.backoff_s(0) == 0.0
    assert policy.backoff_s(1) == pytest.approx(0.1)
    assert policy.backoff_s(2) == pytest.approx(0.2)
    assert policy.backoff_s(3) == pytest.approx(0.4)
    assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
    assert policy.backoff_s(10) == pytest.approx(0.5)

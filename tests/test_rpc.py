"""The RPC layer in isolation: framing, compact codecs, pipelining.

Everything here runs over a plain ``socketpair`` with a thread serving
:func:`repro.server.rpc.serve` — no worker processes — so failures point
at the transport, not at the shard stacks built on top of it.
"""

import pickle
import socket
import threading

import pytest

from repro.errors import ConfigurationError, RpcError, WorkerDiedError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import NeighborResult, UpdateMessage
from repro.server import rpc
from repro.workload.queries import NNQuery


# --------------------------------------------------------------------------
# Framing
# --------------------------------------------------------------------------
def test_frame_round_trip_over_socketpair():
    left, right = socket.socketpair()
    try:
        left.sendall(rpc.encode_frame(rpc.KIND_REQUEST, 7, 3, rpc.OP_PING, b"hi"))
        kind, request_id, shard_id, opcode, body = rpc.read_frame(right)
        assert (kind, request_id, shard_id, opcode, body) == (
            rpc.KIND_REQUEST,
            7,
            3,
            rpc.OP_PING,
            b"hi",
        )
    finally:
        left.close()
        right.close()


def test_read_frame_raises_on_truncated_stream():
    left, right = socket.socketpair()
    try:
        frame = rpc.encode_frame(rpc.KIND_REQUEST, 1, 0, rpc.OP_PING, b"payload")
        left.sendall(frame[: len(frame) - 3])
        left.close()
        with pytest.raises(WorkerDiedError):
            rpc.read_frame(right)
    finally:
        right.close()


# --------------------------------------------------------------------------
# Compact codecs
# --------------------------------------------------------------------------
def _messages():
    return [
        UpdateMessage("obj%010d" % i, Point(1.5 * i, 2.5), Vector(0.1, -0.2), float(i))
        for i in range(5)
    ]


def test_update_batch_codec_round_trips_compact():
    messages = _messages()
    body = rpc.encode_update_batch(messages)
    assert body[0] == 1  # compact flag: ids reconstruct, nothing pickled
    assert rpc.decode_update_batch(body) == messages


def test_update_batch_codec_falls_back_to_pickle_for_odd_ids():
    odd = [
        UpdateMessage("weird-id", Point(1.0, 2.0), Vector(0.0, 0.0), 0.0),
    ]
    body = rpc.encode_update_batch(odd)
    assert body[0] == 0  # pickled flag
    assert rpc.decode_update_batch(body) == odd


def test_query_batch_codec_round_trips():
    queries = [
        NNQuery(location=Point(3.0, 4.0), k=7),
        NNQuery(location=Point(1.0, 1.0), k=2, range_limit=50.0),
    ]
    assert rpc.decode_query_batch(rpc.encode_query_batch(queries)) == queries


def test_neighbor_batches_codec_round_trips_leader_flags():
    batches = [
        [
            NeighborResult("obj%010d" % 1, Point(0.0, 1.0), 2.0, True, None),
            NeighborResult(
                "obj%010d" % 2, Point(3.0, 4.0), 5.0, False, "obj%010d" % 1
            ),
        ],
        [],
    ]
    assert rpc.decode_neighbor_batches(rpc.encode_neighbor_batches(batches)) == batches


def test_call_codec_round_trips_args_and_kwargs():
    body = rpc.encode_call("migrate", ("spatial", "t0"), {"crash_point": None})
    assert rpc.decode_call(body) == ("migrate", ("spatial", "t0"), {"crash_point": None})


def test_error_codec_preserves_exception_type():
    original = ConfigurationError("no such server")
    decoded = rpc.decode_error(rpc.encode_error(original))
    assert isinstance(decoded, ConfigurationError)
    assert str(decoded) == "no such server"


def test_error_codec_degrades_to_rpc_error_for_unpicklable_payloads():
    class Unpicklable(Exception):
        def __reduce__(self):
            raise pickle.PicklingError("nope")

    decoded = rpc.decode_error(rpc.encode_error(Unpicklable("boom")))
    assert isinstance(decoded, RpcError)


# --------------------------------------------------------------------------
# Connection pipelining against a live serve() loop
# --------------------------------------------------------------------------
def _echo_dispatch(shard_id, opcode, body):
    if opcode == rpc.OP_PING:
        return b""
    return bytes([shard_id]) + body


def _stop_serving(connection, thread):
    """Ask the serve loop to exit and reap the thread."""
    request_id = connection.send_request(0, rpc.OP_SHUTDOWN, b"")
    connection.wait(request_id)
    thread.join(timeout=5.0)
    connection.close()
    assert not thread.is_alive()


@pytest.fixture()
def served_connection():
    left, right = socket.socketpair()
    thread = threading.Thread(target=rpc.serve, args=(right, _echo_dispatch))
    thread.start()
    connection = rpc.RpcConnection(left, timeout_s=10.0)
    yield connection
    _stop_serving(connection, thread)


def test_pipelined_requests_resolve_out_of_order(served_connection):
    first = served_connection.send_request(1, rpc.OP_CALL, b"a")
    second = served_connection.send_request(2, rpc.OP_CALL, b"b")
    # Waiting on the later id first forces the earlier response to park.
    assert served_connection.wait(second) == (rpc.OP_CALL, b"\x02b")
    assert served_connection.wait(first) == (rpc.OP_CALL, b"\x01a")
    assert served_connection.outstanding == 0


def test_batched_send_requests_round_trip(served_connection):
    ids = served_connection.send_requests(
        [(0, rpc.OP_CALL, b"x"), (3, rpc.OP_CALL, b"y"), (0, rpc.OP_PING, b"")]
    )
    bodies = [served_connection.wait(request_id)[1] for request_id in ids]
    assert bodies == [b"\x00x", b"\x03y", b""]


def test_connection_counts_frames_and_bytes(served_connection):
    sent_before = served_connection.bytes_sent
    frames_before = served_connection.frames_sent
    request_id = served_connection.send_request(0, rpc.OP_CALL, b"abc")
    served_connection.wait(request_id)
    wire_frame = rpc.encode_frame(
        rpc.KIND_REQUEST, request_id, 0, rpc.OP_CALL, b"abc"
    )
    assert served_connection.frames_sent - frames_before == 1
    assert served_connection.bytes_sent - sent_before == len(wire_frame)
    # The echo response carries one extra byte (the shard id prefix).
    assert served_connection.bytes_received >= len(wire_frame) + 1


def test_dispatch_errors_reraise_client_side():
    def failing_dispatch(shard_id, opcode, body):
        raise ConfigurationError("remote guard tripped")

    left, right = socket.socketpair()
    thread = threading.Thread(target=rpc.serve, args=(right, failing_dispatch))
    thread.start()
    connection = rpc.RpcConnection(left, timeout_s=10.0)
    request_id = connection.send_request(0, rpc.OP_CALL, b"")
    with pytest.raises(ConfigurationError, match="remote guard tripped"):
        connection.wait(request_id)
    _stop_serving(connection, thread)

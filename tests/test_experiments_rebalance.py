"""The rebalance experiment harness: skewed streams and the sweep figure."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.rebalance import (
    _SCHOOL_CENTER,
    _SCHOOL_RADIUS,
    hot_school_streams,
    measure_rebalance,
    run_rebalance,
)


class TestHotSchoolStreams:
    def test_fully_hot_streams_stay_inside_the_school(self):
        messages, queries = hot_school_streams(1000, 400, hot_fraction=1.0, seed=5)
        assert len(messages) == 200
        assert len(queries) == 200
        for message in messages:
            assert abs(message.location.x - _SCHOOL_CENTER.x) <= _SCHOOL_RADIUS
            assert abs(message.location.y - _SCHOOL_CENTER.y) <= _SCHOOL_RADIUS
            # The hot cohort is the first 5% of object ids.
            assert int(message.object_id.replace("obj", "")) < 50
        for query in queries:
            assert abs(query.location.x - _SCHOOL_CENTER.x) <= _SCHOOL_RADIUS

    def test_cold_streams_are_uniform(self):
        messages, _ = hot_school_streams(1000, 400, hot_fraction=0.0, seed=5)
        outside = sum(
            1
            for message in messages
            if abs(message.location.x - _SCHOOL_CENTER.x) > _SCHOOL_RADIUS
        )
        assert outside > len(messages) // 2

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            hot_school_streams(100, 100, hot_fraction=1.5)


class TestRebalanceSweep:
    def test_master_beats_static_under_heavy_skew(self):
        kwargs = dict(
            num_objects=2000, num_requests=3000, batch_size=128, seed=59
        )
        static = measure_rebalance(0.9, balanced=False, **kwargs)
        master = measure_rebalance(0.9, balanced=True, **kwargs)
        assert master.qps > static.qps
        assert master.migrations > 0
        # Static affinity has no control plane at all.
        assert static.migrations == 0
        assert static.replications == 0

    def test_master_matches_static_without_skew(self):
        kwargs = dict(
            num_objects=1000, num_requests=1500, batch_size=128, seed=59
        )
        static = measure_rebalance(0.0, balanced=False, **kwargs)
        master = measure_rebalance(0.0, balanced=True, **kwargs)
        # The control plane never hurts a balanced workload (beyond noise
        # in which tablets its occasional housekeeping migrations touch).
        assert master.qps >= static.qps * 0.98
        assert master.total_requests == static.total_requests

    def test_sweep_figure_shape(self):
        figure = run_rebalance(
            hot_fractions=(0.0, 0.9),
            num_objects=1500,
            num_requests=2000,
            batch_size=128,
        )
        static_qps = figure.get_series("static QPS")
        master_qps = figure.get_series("master QPS")
        assert len(static_qps.ys) == 2
        assert len(master_qps.ys) == 2
        # The headline acceptance claim: master-balanced wins under skew.
        assert master_qps.ys[1] > static_qps.ys[1]
        assert figure.get_series("static p99 ms").ys[1] > 0.0
        assert figure.get_series("migrations").ys[1] > 0
        rendered = figure.to_table()
        assert "rebalance" in rendered
        assert "master QPS" in rendered

"""Tests for the hexagonal velocity partition."""

import pytest
from hypothesis import given, strategies as st

from repro.core.hexgrid import HexGrid
from repro.errors import ClusteringError
from repro.geometry.vector import Vector

velocities = st.builds(
    Vector,
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
)


class TestConstruction:
    def test_positive_deviation_required(self):
        with pytest.raises(ClusteringError):
            HexGrid(max_deviation=0.0)
        with pytest.raises(ClusteringError):
            HexGrid(max_deviation=-1.0)

    def test_circumradius_is_half_deviation(self):
        assert HexGrid(max_deviation=1.0).circumradius == pytest.approx(0.5)


class TestBinning:
    def test_identical_velocities_share_a_bin(self):
        grid = HexGrid(max_deviation=1.0)
        assert grid.same_bin(Vector(1.0, 1.0), Vector(1.0, 1.0))

    def test_very_different_velocities_are_separated(self):
        grid = HexGrid(max_deviation=1.0)
        assert not grid.same_bin(Vector(0.0, 0.0), Vector(3.0, 3.0))

    def test_opposite_directions_never_share_a_bin(self):
        grid = HexGrid(max_deviation=1.0)
        assert not grid.same_bin(Vector(1.5, 0.0), Vector(-1.5, 0.0))

    def test_bin_center_round_trips(self):
        grid = HexGrid(max_deviation=1.0)
        for axial in [(0, 0), (1, 0), (0, 1), (-2, 3)]:
            center = grid.bin_center(axial)
            assert grid.bin_of(center) == axial

    @given(velocities, velocities)
    def test_same_bin_implies_deviation_below_threshold(self, a, b):
        """The property the hexagon size guarantees: two velocities in one
        bin differ by at most Δm (the intra-school velocity bound)."""
        grid = HexGrid(max_deviation=1.0)
        if grid.bin_of(a) == grid.bin_of(b):
            assert a.distance_to(b) <= 1.0 + 1e-9

    @given(velocities)
    def test_velocity_close_to_its_bin_center(self, velocity):
        """Every velocity is within the circumradius of its bin centre."""
        grid = HexGrid(max_deviation=1.0)
        center = grid.bin_center(grid.bin_of(velocity))
        assert velocity.distance_to(center) <= grid.circumradius + 1e-9

    @given(velocities)
    def test_binning_is_deterministic(self, velocity):
        grid = HexGrid(max_deviation=1.0)
        assert grid.bin_of(velocity) == grid.bin_of(velocity)

    def test_smaller_deviation_gives_finer_bins(self):
        coarse = HexGrid(max_deviation=2.0)
        fine = HexGrid(max_deviation=0.2)
        a = Vector(0.0, 0.0)
        b = Vector(0.5, 0.0)
        assert coarse.same_bin(a, b)
        assert not fine.same_bin(a, b)

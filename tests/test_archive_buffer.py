"""Tests for the ping-pong buffer."""

import pytest

from repro.archive.buffer import PingPongBuffer
from repro.errors import ArchiveError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import HistoryRecord


def record(t=0.0, object_id="obj1"):
    return HistoryRecord(object_id, Point(1.0, 1.0), Vector(0.0, 0.0), t)


class TestPingPongBuffer:
    def test_page_size_must_be_positive(self):
        with pytest.raises(ArchiveError):
            PingPongBuffer(0)

    def test_append_below_page_size_returns_none(self):
        buffer = PingPongBuffer(3)
        assert buffer.append(record(0.0), now=0.0) is None
        assert buffer.append(record(1.0), now=1.0) is None
        assert buffer.active_size == 2

    def test_page_returned_when_full(self):
        buffer = PingPongBuffer(2)
        assert buffer.append(record(0.0), now=0.0) is None
        page = buffer.append(record(1.0), now=1.0)
        assert page is not None
        assert len(page) == 2
        assert buffer.active_size == 0
        assert buffer.swaps == 1

    def test_records_keep_arrival_order(self):
        buffer = PingPongBuffer(3)
        for t in range(2):
            buffer.append(record(float(t)), now=float(t))
        page = buffer.append(record(2.0), now=2.0)
        assert [r.timestamp for r in page] == [0.0, 1.0, 2.0]

    def test_buffers_alternate(self):
        buffer = PingPongBuffer(1)
        first = buffer.append(record(0.0), now=0.0)
        second = buffer.append(record(1.0), now=1.0)
        assert first[0].timestamp == 0.0
        assert second[0].timestamp == 1.0
        assert buffer.swaps == 2

    def test_fill_times_recorded(self):
        buffer = PingPongBuffer(2)
        buffer.append(record(0.0), now=0.0)
        buffer.append(record(1.0), now=3.0)
        assert buffer.fill_times == [3.0]
        assert buffer.min_fill_time() == 3.0

    def test_min_fill_time_none_before_first_page(self):
        buffer = PingPongBuffer(10)
        buffer.append(record(0.0), now=0.0)
        assert buffer.min_fill_time() is None

    def test_drain_returns_partial_page(self):
        buffer = PingPongBuffer(10)
        buffer.append(record(0.0), now=0.0)
        buffer.append(record(1.0), now=1.0)
        page = buffer.drain()
        assert len(page) == 2
        assert buffer.active_size == 0
        assert buffer.drain() == []

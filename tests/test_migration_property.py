"""Property test: the control plane is invisible to clients.

The PR 4 recovery-property pattern, lifted to the cluster level: generate a
random batched update/query workload, run it twice against identically
configured clusters, and on one of them interleave random control-plane
activity — live migrations (sometimes crashed mid-flight at a random
phase), read-replica seeding, server crashes with failover, revivals and
master rebalance passes — at random points between batches.  The final
states must be indistinguishable: same tablet boundaries, same keys, same
full row contents, same NN results for a fixed query sample.  Simulated
*costs* are allowed to differ (migrations charge the durability ledger and
chill block caches); *state* is not.
"""

import random

import pytest

from repro.experiments.common import uniform_leader_indexer
from repro.experiments.recovery import _nn_signature, _state_signature
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.server.cluster import ServerCluster
from repro.server.master import (
    CRASH_AFTER_FLUSH,
    CRASH_AFTER_HANDOFF,
    MasterOptions,
    TabletMaster,
)
from repro.workload.queries import NNQueryWorkload


def update_batches(rng, num_objects, num_batches, batch_size):
    """A reproducible batched update stream over known objects."""
    batches = []
    step = 0
    for _ in range(num_batches):
        batch = []
        for _ in range(batch_size):
            batch.append(
                UpdateMessage(
                    object_id=format_object_id(rng.randrange(num_objects)),
                    location=Point(
                        rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)
                    ),
                    velocity=Vector(1.0, 0.5),
                    timestamp=float(step) / 10.0,
                )
            )
            step += 1
        batches.append(batch)
    return batches


# State fingerprint down to full row contents (stronger than the
# boundary/key signature the recovery experiment uses).  The canonical
# definition moved next to the shard service so the remote side computes
# exactly the same tuple.
from repro.server.worker import full_row_signature  # noqa: E402


def control_actions(rng, master, cluster):
    """One random slice of control-plane activity between two batches."""
    roll = rng.random()
    if roll < 0.35:
        # A live migration of a random tablet, sometimes crashed mid-flight.
        stats = master.backend.tablet_stats()
        if not stats:
            return
        entry = stats[rng.randrange(len(stats))]
        source = cluster.server_index_for_tablet(entry.tablet_id)
        targets = [
            index
            for index in cluster.alive_server_indices()
            if index != source
        ]
        if not targets:
            return
        crash_point = rng.choice(
            [None, None, CRASH_AFTER_FLUSH, CRASH_AFTER_HANDOFF]
        )
        master.migrate_tablet(
            entry.table,
            entry.tablet_id,
            targets[rng.randrange(len(targets))],
            crash_point=crash_point,
        )
    elif roll < 0.5:
        # Replicate a random tablet for query fan-out.
        stats = master.backend.tablet_stats()
        if not stats:
            return
        entry = stats[rng.randrange(len(stats))]
        alive = cluster.alive_server_indices()
        master.replicate_tablet(
            entry.table, entry.tablet_id, alive[rng.randrange(len(alive))]
        )
    elif roll < 0.7:
        # Crash a random server (failover), unless it is the last one.
        victim = rng.randrange(cluster.num_servers)
        if (
            cluster.servers[victim].alive
            and len(cluster.alive_server_indices()) > 1
        ):
            master.fail_over(victim, rebalance=rng.random() < 0.5)
    elif roll < 0.85:
        # Revive whichever server has been down the longest.
        for index, server in enumerate(cluster.servers):
            if not server.alive:
                cluster.revive_server(index)
                break
    else:
        master.rebalance()


@pytest.mark.parametrize("seed", range(8))
def test_migrated_faulted_cluster_equals_unmigrated_reference(seed):
    rng = random.Random(3000 + seed)
    num_objects = rng.choice([400, 800])
    num_servers = rng.choice([3, 4, 5])
    batch_size = rng.choice([64, 128, 256])
    batches = update_batches(rng, num_objects, num_batches=10, batch_size=batch_size)
    queries = NNQueryWorkload(
        uniform_leader_indexer(10, seed=1).config.world, k=8, seed=seed
    ).batch(25)

    reference = uniform_leader_indexer(num_objects, seed=11)
    reference_cluster = ServerCluster(reference, num_servers=num_servers)
    for batch in batches:
        reference_cluster.submit_update_batch(batch)
        reference_cluster.submit_query_batch(queries[:5])

    subject = uniform_leader_indexer(num_objects, seed=11)
    cluster = ServerCluster(subject, num_servers=num_servers)
    master = TabletMaster(cluster, MasterOptions(replicate_read_share=0.10))
    for batch in batches:
        control_actions(rng, master, cluster)
        cluster.submit_update_batch(batch)
        # Query batches exercise replica fan-out mid-fault; results checked
        # wholesale at the end via the NN signature.
        cluster.submit_query_batch(queries[:5])

    assert _state_signature(subject) == _state_signature(reference), (
        f"seed {seed}: boundaries/keys diverged"
    )
    assert full_row_signature(subject) == full_row_signature(reference), (
        f"seed {seed}: row contents diverged"
    )
    assert _nn_signature(subject, queries) == _nn_signature(
        reference, queries
    ), f"seed {seed}: NN results diverged"


def control_actions_via_client(rng, client, num_servers):
    """The :func:`control_actions` slice, spoken through a shard client.

    Consumes ``rng`` draw for draw like the in-process original (including
    draws that happen only behind conditionals), so a remote run can be
    compared against the same reference workload.
    """
    roll = rng.random()
    if roll < 0.35:
        stats = client.call("tablet_stats")
        if not stats:
            return
        entry = stats[rng.randrange(len(stats))]
        source = client.call("server_index_for_tablet", entry.tablet_id)
        targets = [
            index
            for index in client.call("alive_server_indices")
            if index != source
        ]
        if not targets:
            return
        crash_point = rng.choice(
            [None, None, CRASH_AFTER_FLUSH, CRASH_AFTER_HANDOFF]
        )
        client.call(
            "migrate_tablet",
            entry.table,
            entry.tablet_id,
            targets[rng.randrange(len(targets))],
            crash_point=crash_point,
        )
    elif roll < 0.5:
        stats = client.call("tablet_stats")
        if not stats:
            return
        entry = stats[rng.randrange(len(stats))]
        alive = client.call("alive_server_indices")
        client.call(
            "replicate_tablet",
            entry.table,
            entry.tablet_id,
            alive[rng.randrange(len(alive))],
        )
    elif roll < 0.7:
        victim = rng.randrange(num_servers)
        alive = client.call("alive_server_indices")
        if victim in alive and len(alive) > 1:
            client.call("fail_over", victim, rebalance=rng.random() < 0.5)
    elif roll < 0.85:
        alive = set(client.call("alive_server_indices"))
        for index in range(num_servers):
            if index not in alive:
                client.call("revive_server", index)
                break
    else:
        client.call("rebalance")


@pytest.mark.parametrize("backend", ["inprocess", "process", "disk"])
@pytest.mark.parametrize("seed", [1, 4])
def test_control_plane_is_lossless_across_the_rpc_boundary(backend, seed):
    """The headline property, with the faulted cluster living inside a
    shard worker: every control-plane verb crosses the RPC boundary, and
    the final state must still equal the quiet in-process reference.  The
    ``disk`` backend additionally persists the faulted shard's tables to
    real files while the control plane churns."""
    from repro.bigtable.process_backend import single_shard_client
    from repro.server.worker import ShardRecipe

    rng = random.Random(3000 + seed)
    num_objects = rng.choice([400, 800])
    num_servers = rng.choice([3, 4, 5])
    batch_size = rng.choice([64, 128, 256])
    batches = update_batches(rng, num_objects, num_batches=8, batch_size=batch_size)
    queries = NNQueryWorkload(
        uniform_leader_indexer(10, seed=1).config.world, k=8, seed=seed
    ).batch(25)

    reference = uniform_leader_indexer(num_objects, seed=11)
    reference_cluster = ServerCluster(reference, num_servers=num_servers)
    for batch in batches:
        reference_cluster.submit_update_batch(batch)
        reference_cluster.submit_query_batch(queries[:5])

    recipe = ShardRecipe(
        num_objects=num_objects,
        seed=11,
        num_servers=num_servers,
        with_master=True,
        master_options=MasterOptions(replicate_read_share=0.10),
    )
    with single_shard_client(backend, recipe=recipe) as client:
        for batch in batches:
            control_actions_via_client(rng, client, num_servers)
            client.begin_update_batch(batch).result()
            client.begin_query_batch(queries[:5]).result()
        assert client.call("state_signature") == _state_signature(reference), (
            f"seed {seed} ({backend}): boundaries/keys diverged"
        )
        assert client.call("full_row_signature") == full_row_signature(
            reference
        ), f"seed {seed} ({backend}): row contents diverged"
        assert client.call("nn_signature", queries) == _nn_signature(
            reference, queries
        ), f"seed {seed} ({backend}): NN results diverged"


@pytest.mark.parametrize("seed", [1, 4])
def test_control_plane_survives_supervised_worker_death(seed):
    """The RPC-boundary property composed with PR 10's supervised masters:
    the worker hosting the faulted shard is SIGKILLed *twice* mid-workload
    and healed by a ``respawn`` supervisor, and the final state must still
    equal the quiet in-process reference draw for draw.  The accounting
    checkpoint restores the master's decision history and routing
    overrides, so the replayed control actions continue exactly where the
    dead worker's master stopped."""
    from repro.server.scaleout import ScaleOutCluster

    rng = random.Random(3000 + seed)
    num_objects = rng.choice([400, 800])
    num_servers = rng.choice([3, 4, 5])
    batch_size = rng.choice([64, 128, 256])
    batches = update_batches(rng, num_objects, num_batches=8, batch_size=batch_size)
    queries = NNQueryWorkload(
        uniform_leader_indexer(10, seed=1).config.world, k=8, seed=seed
    ).batch(25)

    reference = uniform_leader_indexer(num_objects, seed=11)
    reference_cluster = ServerCluster(reference, num_servers=num_servers)
    for batch in batches:
        reference_cluster.submit_update_batch(batch)
        reference_cluster.submit_query_batch(queries[:5])

    cluster = ScaleOutCluster.build(
        1,
        backend="disk",
        num_workers=1,
        supervision_policy="respawn",
        num_objects=num_objects,
        seed=11,
        num_servers=num_servers,
        with_master=True,
        master_options=MasterOptions(replicate_read_share=0.10),
    )
    try:
        client = cluster.clients[0]
        for round_index, batch in enumerate(batches):
            if round_index in (2, 5):
                cluster.backend.pool.kill_worker(0)
                assert cluster.heal_dead_workers() == 1
            control_actions_via_client(rng, client, num_servers)
            cluster.submit_update_batch(batch)
            cluster.submit_query_batch(queries[:5])
        snapshot = cluster.recovery_snapshot()
        assert snapshot["recoveries"] == 2
        assert snapshot["lost_updates"] == 0
        assert client.call("state_signature") == _state_signature(reference), (
            f"seed {seed}: boundaries/keys diverged"
        )
        assert client.call("full_row_signature") == full_row_signature(
            reference
        ), f"seed {seed}: row contents diverged"
        assert client.call("nn_signature", queries) == _nn_signature(
            reference, queries
        ), f"seed {seed}: NN results diverged"
    finally:
        cluster.close()


@pytest.mark.parametrize("seed", range(4))
def test_replicated_query_batches_match_sequential_results(seed):
    """Replica fan-out must return exactly what per-query dispatch returns,
    even while migrations churn underneath."""
    rng = random.Random(7000 + seed)
    indexer = uniform_leader_indexer(600, seed=13)
    cluster = ServerCluster(indexer, num_servers=4)
    master = TabletMaster(cluster, MasterOptions(replicate_read_share=0.05))
    batches = update_batches(rng, 600, num_batches=4, batch_size=128)
    for batch in batches:
        cluster.submit_update_batch(batch)
    master.rebalance()
    queries = NNQueryWorkload(indexer.config.world, k=10, seed=seed).batch(40)
    batched = cluster.submit_query_batch(queries)
    for query, result in zip(queries, batched):
        sequential = indexer.nearest_neighbors(
            query.location, query.k, range_limit=query.range_limit
        )
        assert [(n.object_id, n.distance) for n in result] == [
            (n.object_id, n.distance) for n in sequential
        ]

"""Tests for region (range) queries."""

import random

import pytest

from repro.core.region import RegionQueryStats
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id

from helpers import make_update


def load_uniform(indexer, count, seed=7):
    rng = random.Random(seed)
    positions = {}
    for index in range(count):
        point = Point(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))
        positions[format_object_id(index)] = point
        indexer.update(
            UpdateMessage(format_object_id(index), point, Vector(0.0, 0.0), 0.0)
        )
    return positions


class TestBoxQueries:
    def test_empty_index(self, indexer):
        region = BoundingBox(10.0, 10.0, 30.0, 30.0)
        assert indexer.objects_in_region(region) == []

    def test_matches_brute_force(self, indexer):
        positions = load_uniform(indexer, 80)
        region = BoundingBox(20.0, 20.0, 60.0, 70.0)
        expected = {
            object_id
            for object_id, point in positions.items()
            if region.contains_point(point)
        }
        results = indexer.objects_in_region(region)
        assert {r.object_id for r in results} == expected

    def test_results_sorted_by_distance_to_center(self, indexer):
        load_uniform(indexer, 50)
        region = BoundingBox(10.0, 10.0, 90.0, 90.0)
        results = indexer.objects_in_region(region)
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_followers_included_and_deduplicated(self, indexer):
        indexer.update(make_update(1, 40.0, 40.0, vx=1.0, vy=0.0))
        indexer.update(make_update(2, 42.0, 40.0, vx=1.0, vy=0.0))
        indexer.run_clustering(now=0.5)
        region = BoundingBox(30.0, 30.0, 50.0, 50.0)
        results = indexer.objects_in_region(region)
        ids = [r.object_id for r in results]
        assert sorted(ids) == ["obj0000000001", "obj0000000002"]
        assert len(ids) == len(set(ids))

    def test_followers_can_be_excluded(self, indexer):
        indexer.update(make_update(1, 40.0, 40.0, vx=1.0, vy=0.0))
        indexer.update(make_update(2, 42.0, 40.0, vx=1.0, vy=0.0))
        indexer.run_clustering(now=0.5)
        region = BoundingBox(30.0, 30.0, 50.0, 50.0)
        results = indexer.objects_in_region(region, include_followers=False)
        assert len(results) == 1
        assert results[0].is_leader

    def test_stats_populated(self, indexer):
        load_uniform(indexer, 40)
        stats = RegionQueryStats()
        results = indexer.objects_in_region(
            BoundingBox(0.0, 0.0, 50.0, 50.0), stats=stats
        )
        assert stats.cells_covered >= 1
        assert stats.leaders_scanned >= len(results)
        assert stats.results == len(results)

    def test_explicit_cover_level_validated(self, indexer):
        load_uniform(indexer, 10)
        with pytest.raises(QueryError):
            indexer.region_searcher.objects_in_box(
                BoundingBox(0.0, 0.0, 10.0, 10.0), cover_level=99
            )

    def test_predictive_region_query(self, indexer):
        # The object sits just outside the region but inside a covered cell;
        # dead-reckoning to t=2 moves it inside.
        indexer.update(make_update(1, 52.0, 50.0, vx=5.0, vy=0.0, t=0.0))
        region = BoundingBox(55.0, 45.0, 65.0, 55.0)
        assert indexer.objects_in_region(region, at_time=0.0) == []
        results = indexer.objects_in_region(region, at_time=2.0)
        assert [r.object_id for r in results] == ["obj0000000001"]


class TestCircleQueries:
    def test_radius_must_be_positive(self, indexer):
        with pytest.raises(QueryError):
            indexer.objects_near(Point(10.0, 10.0), 0.0)

    def test_matches_brute_force(self, indexer):
        positions = load_uniform(indexer, 80)
        center = Point(50.0, 50.0)
        radius = 25.0
        expected = {
            object_id
            for object_id, point in positions.items()
            if point.distance_to(center) <= radius
        }
        results = indexer.objects_near(center, radius)
        assert {r.object_id for r in results} == expected

    def test_all_results_within_radius(self, indexer):
        load_uniform(indexer, 60)
        center = Point(30.0, 70.0)
        for result in indexer.objects_near(center, 20.0):
            assert result.location.distance_to(center) <= 20.0 + 1e-9

    def test_growing_radius_returns_supersets(self, indexer):
        load_uniform(indexer, 60)
        center = Point(50.0, 50.0)
        small = {r.object_id for r in indexer.objects_near(center, 10.0)}
        large = {r.object_id for r in indexer.objects_near(center, 40.0)}
        assert small <= large

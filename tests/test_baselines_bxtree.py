"""Tests for the Bx-tree baseline."""

import pytest

from repro.baselines.bxtree import BxTree, BxTreeConfig
from repro.errors import ConfigurationError, QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage
from repro.workload.uniform import UniformWorkload

REGION = BoundingBox(0.0, 0.0, 1000.0, 1000.0)


def message(object_id, x, y, vx=0.0, vy=0.0, t=0.0):
    return UpdateMessage(object_id, Point(x, y), Vector(vx, vy), t)


class TestConfig:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            BxTreeConfig(curve_level=0)
        with pytest.raises(ConfigurationError):
            BxTreeConfig(phase_length_s=0.0)
        with pytest.raises(ConfigurationError):
            BxTreeConfig(num_phases=0)
        with pytest.raises(ConfigurationError):
            BxTreeConfig(page_access_seconds=-1.0)


class TestUpdates:
    def test_update_indexes_object(self):
        tree = BxTree()
        tree.update(message("a", 100.0, 100.0))
        assert tree.size() == 1
        assert tree.stats.updates == 1
        assert tree.stats.simulated_seconds > 0

    def test_second_update_replaces_key(self):
        tree = BxTree()
        tree.update(message("a", 100.0, 100.0, t=0.0))
        tree.update(message("a", 500.0, 500.0, t=1.0))
        assert tree.size() == 1
        assert len(tree._tree) == 1

    def test_key_encodes_phase(self):
        config = BxTreeConfig(phase_length_s=10.0, num_phases=2)
        tree = BxTree(config)
        key_phase0 = tree._key_for(message("a", 100.0, 100.0, t=1.0))
        key_phase1 = tree._key_for(message("a", 100.0, 100.0, t=11.0))
        assert key_phase0 >> (2 * config.curve_level) != key_phase1 >> (
            2 * config.curve_level
        )

    def test_stationary_object_key_independent_of_time_within_phase(self):
        tree = BxTree()
        first = tree._key_for(message("a", 100.0, 100.0, t=0.0))
        second = tree._key_for(message("a", 100.0, 100.0, t=1.0))
        # A stationary object projects to the same label-time position.
        assert first == second

    def test_moving_object_projected_to_label_time(self):
        config = BxTreeConfig(phase_length_s=10.0)
        tree = BxTree(config)
        moving = tree._key_for(message("a", 100.0, 100.0, vx=10.0, t=0.0))
        static = tree._key_for(message("b", 100.0, 100.0, vx=0.0, t=0.0))
        assert moving != static

    def test_update_cost_roughly_constant_with_population(self):
        tree = BxTree()
        workload = UniformWorkload(num_objects=2000, seed=5)
        for update in workload.initial_updates():
            tree.update(update)
        per_update = tree.stats.simulated_seconds / tree.stats.updates
        # Around 0.2-0.6 ms per update (the paper quotes ~3k updates/s).
        assert 1e-4 < per_update < 1e-3


class TestQueries:
    def test_k_must_be_positive(self):
        tree = BxTree()
        with pytest.raises(QueryError):
            tree.nearest_neighbors(Point(0.0, 0.0), 0, at_time=0.0)

    def test_finds_nearest_static_objects(self):
        tree = BxTree()
        tree.update(message("near", 100.0, 100.0))
        tree.update(message("far", 900.0, 900.0))
        results = tree.nearest_neighbors(Point(110.0, 100.0), 1, at_time=0.0)
        assert results[0][0] == "near"

    def test_returns_k_results_sorted_by_distance(self):
        tree = BxTree()
        workload = UniformWorkload(num_objects=200, seed=9)
        for update in workload.initial_updates():
            tree.update(update)
        results = tree.nearest_neighbors(Point(500.0, 500.0), 5, at_time=0.0)
        assert len(results) == 5
        distances = [distance for _, distance in results]
        assert distances == sorted(distances)

    def test_query_accounts_simulated_time(self):
        tree = BxTree()
        tree.update(message("a", 100.0, 100.0))
        before = tree.stats.simulated_seconds
        tree.nearest_neighbors(Point(100.0, 100.0), 1, at_time=0.0)
        assert tree.stats.simulated_seconds > before
        assert tree.stats.queries == 1

    def test_moving_object_found_at_predicted_position(self):
        tree = BxTree()
        tree.update(message("mover", 100.0, 100.0, vx=10.0, vy=0.0, t=0.0))
        results = tree.nearest_neighbors(Point(150.0, 100.0), 1, at_time=5.0)
        object_id, distance = results[0]
        assert object_id == "mover"
        assert distance == pytest.approx(0.0, abs=1e-6)

    def test_decode_cell_round_trip(self):
        config = BxTreeConfig()
        tree = BxTree(config)
        value = tree._curve_value(Point(123.0, 456.0))
        x, y = tree.decode_cell(value)
        side = 1 << config.curve_level
        assert 0 <= x < side and 0 <= y < side

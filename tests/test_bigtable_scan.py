"""Tests for scan plans, the scanner and the tablet-server block cache."""

import pytest

from repro.bigtable.cost import OpKind
from repro.bigtable.scan import BlockCache, BlockCacheOptions
from repro.bigtable.table import ColumnFamily, Table
from repro.bigtable.tablet import TabletOptions
from repro.errors import ConfigurationError


def make_table(split_threshold=512, cache_options=None):
    return Table(
        "scan_test",
        [ColumnFamily("mem", in_memory=True, max_versions=4)],
        options=TabletOptions(split_threshold=split_threshold, merge_threshold=4),
        cache_options=cache_options,
    )


def fill(table, count, width=4):
    for index in range(count):
        table.write(f"{index:0{width}d}", "mem", "q", index, 0.0)


class TestBlockCache:
    def test_invalid_options(self):
        with pytest.raises(ConfigurationError):
            BlockCacheOptions(capacity_blocks=0)
        with pytest.raises(ConfigurationError):
            BlockCacheOptions(block_prefix_len=0)

    def test_probe_miss_then_hit(self):
        cache = BlockCache(BlockCacheOptions(block_prefix_len=2))
        assert cache.probe("t1", "ab") is False
        assert cache.probe("t1", "ab") is True
        assert cache.hit_rate() == 0.5

    def test_lru_eviction(self):
        cache = BlockCache(BlockCacheOptions(capacity_blocks=2, block_prefix_len=2))
        cache.probe("t1", "aa")
        cache.probe("t1", "bb")
        cache.probe("t1", "aa")  # bump aa; bb is now LRU
        cache.probe("t1", "cc")  # evicts bb
        assert cache.probe("t1", "aa") is True
        assert cache.probe("t1", "bb") is False

    def test_invalidate_row_evicts_block(self):
        cache = BlockCache(BlockCacheOptions(block_prefix_len=2))
        cache.probe("t1", "ab")
        cache.invalidate_row("t1", "abcd")
        assert cache.probe("t1", "ab") is False

    def test_invalidate_tablet_evicts_all_its_blocks(self):
        cache = BlockCache(BlockCacheOptions(block_prefix_len=2))
        cache.probe("t1", "aa")
        cache.probe("t2", "aa")
        cache.invalidate_tablet("t1")
        assert cache.probe("t1", "aa") is False
        assert cache.probe("t2", "aa") is True

    def test_stats_per_tablet(self):
        cache = BlockCache(BlockCacheOptions(block_prefix_len=2))
        cache.probe("t1", "aa")
        cache.probe("t1", "aa")
        cache.probe("t2", "bb")
        stats = {entry.tablet_id: entry for entry in cache.stats("tbl")}
        assert stats["t1"].hits == 1 and stats["t1"].misses == 1
        assert stats["t2"].hits == 0 and stats["t2"].misses == 1
        assert stats["t1"].hit_rate == 0.5

    def test_disabled_cache_never_hits(self):
        cache = BlockCache(BlockCacheOptions(enabled=False))
        assert cache.probe("t1", "aa") is False
        assert cache.probe("t1", "aa") is False
        assert cache.hit_rate() == 0.0


class TestScanPlan:
    def test_plan_covers_intersecting_tablets(self):
        table = make_table(split_threshold=8)
        fill(table, 40)
        assert table.tablet_count() > 1
        plan = table.plan_scan(None, None)
        assert plan.tablet_ids() == [t.tablet_id for t in table.tablets()]
        narrow = table.plan_scan("0000", "0002")
        assert len(narrow.segments) == 1

    def test_execute_plan_matches_scan(self):
        table = make_table(split_threshold=8)
        fill(table, 40)
        plan = table.plan_scan("0005", "0015")
        rows = table.execute_plan(plan)
        assert [key for key, _ in rows] == [f"{i:04d}" for i in range(5, 15)]


class TestScannerCharging:
    def test_cold_scan_charges_scan_rows(self):
        table = make_table()
        fill(table, 10)
        before = table.counter.snapshot()
        table.scan()
        delta = table.counter.snapshot().delta(before)
        assert delta.counts.get(OpKind.SCAN) == 1
        assert delta.rows.get(OpKind.SCAN) == 10
        assert not delta.counts.get(OpKind.CACHE_READ)

    def test_warm_scan_is_cheaper_and_records_cache_reads(self):
        table = make_table()
        fill(table, 64)
        before = table.counter.snapshot()
        table.scan()
        cold = table.counter.snapshot()
        table.scan()
        warm = table.counter.snapshot()
        cold_cost = cold.delta(before).simulated_seconds
        warm_delta = warm.delta(cold)
        assert warm_delta.simulated_seconds < cold_cost
        assert warm_delta.rows.get(OpKind.CACHE_READ) == 64
        assert warm_delta.rows.get(OpKind.SCAN, 0) == 0

    def test_write_invalidates_block(self):
        table = make_table()
        fill(table, 4, width=4)  # all rows share the 6-char block prefix "000"...
        table.scan()
        table.write("0001", "mem", "q", 99, 1.0)
        before = table.counter.snapshot()
        table.scan()
        delta = table.counter.snapshot().delta(before)
        # The dirtied block is cold again: its rows are scan rows, not cache reads.
        assert delta.rows.get(OpKind.SCAN, 0) > 0

    def test_hit_rate_monotonically_warms(self):
        table = make_table()
        fill(table, 32)
        rates = []
        for _ in range(4):
            table.scan()
            rates.append(table.cache_hit_rate())
        assert rates == sorted(rates)
        assert rates[-1] > 0.5

    def test_storage_rpc_count_excludes_cache_reads(self):
        table = make_table()
        fill(table, 16)
        writes = table.counter.storage_rpc_count()
        table.scan()
        table.scan()
        assert table.counter.storage_rpc_count() == writes + 2
        assert table.counter.count(OpKind.CACHE_READ) >= 1
        assert table.counter.total_calls() > table.counter.storage_rpc_count()

    def test_empty_scan_attributes_to_owning_tablet(self):
        table = make_table(split_threshold=8)
        fill(table, 40)
        table.reset_tablet_counters()
        last = table.tablets()[-1]
        # A probe of a key range beyond every stored row yields no rows but
        # must still show up on the owning tablet's ledger.
        rows = table.scan("9000", "9999")
        assert rows == []
        assert last.counter.rows_touched(OpKind.SCAN) == 1
        assert table.tablets()[0].counter.total_calls() == 0

    def test_warm_scan_still_attributed_to_tablet_ledger(self):
        table = make_table()
        fill(table, 16)
        table.scan()
        table.reset_tablet_counters()
        table.scan()  # fully warm: every row a cache read
        tablet = table.tablets()[0]
        # The tablet served the scan RPC even though the cache covered every
        # row — its ledger must keep growing or read skew fades as the
        # cache warms.
        assert tablet.counter.count(OpKind.SCAN) == 1
        assert tablet.counter.rows_touched(OpKind.CACHE_READ) == 16
        assert tablet.counter.read_seconds > 0

    def test_split_invalidates_moved_rows(self):
        table = make_table(split_threshold=8)
        fill(table, 8)
        table.scan()
        assert len(table.cache) > 0
        fill(table, 9)  # ninth row triggers a split; both halves evict
        assert table.tablet_count() == 2
        before = table.counter.snapshot()
        table.scan()
        delta = table.counter.snapshot().delta(before)
        assert delta.rows.get(OpKind.SCAN, 0) == 9

    def test_reset_cache_stats_keeps_blocks_warm(self):
        table = make_table()
        fill(table, 16)
        table.scan()
        table.reset_cache_stats()
        assert table.cache_hit_rate() == 0.0
        before = table.counter.snapshot()
        table.scan()
        delta = table.counter.snapshot().delta(before)
        assert delta.rows.get(OpKind.CACHE_READ) == 16
        assert table.cache_hit_rate() == 1.0

"""Tests for school clustering (Section 3.3.2)."""

import pytest

from repro.core.clustering import ClusteringReport
from repro.errors import ClusteringError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage
from repro.spatial.cell import CellId
from repro.tables.affiliation_table import Role

from helpers import make_update


def load_colocated_leaders(indexer, count, base=(10.0, 10.0), velocity=(1.0, 0.0), spacing=1.0):
    """Insert ``count`` leaders near each other with identical velocities."""
    for index in range(count):
        indexer.update(
            make_update(
                index,
                base[0] + spacing * (index % 5),
                base[1] + spacing * (index // 5),
                vx=velocity[0],
                vy=velocity[1],
            )
        )


class TestClusterCell:
    def test_similar_leaders_merge_into_one_school(self, indexer):
        load_colocated_leaders(indexer, 4)
        report = indexer.run_clustering(now=1.0)
        assert report.leaders_before == 4
        assert report.leaders_after == 1
        assert indexer.school_count == 1

    def test_merged_leaders_become_followers_with_displacements(self, indexer):
        load_colocated_leaders(indexer, 3)
        indexer.run_clustering(now=1.0)
        roles = [
            indexer.affiliation_table.role_of(f"obj{i:010d}") for i in range(3)
        ]
        leaders = [r for r in roles if r.role is Role.LEADER]
        followers = [r for r in roles if r.role is Role.FOLLOWER]
        assert len(leaders) == 1
        assert len(followers) == 2
        for follower in followers:
            assert follower.displacement is not None

    def test_absorbed_leaders_removed_from_spatial_index(self, indexer):
        load_colocated_leaders(indexer, 3)
        indexer.run_clustering(now=1.0)
        assert indexer.spatial_table.total_objects() == 1

    def test_displacement_consistency_after_merge(self, indexer):
        """Follower location estimated from the leader's record plus the
        stored displacement matches the follower's actual position."""
        positions = {0: Point(10.0, 10.0), 1: Point(13.0, 10.0), 2: Point(10.0, 13.0)}
        for index, position in positions.items():
            indexer.update(
                UpdateMessage(f"obj{index:010d}", position, Vector(1.0, 0.0), 0.0)
            )
        indexer.run_clustering(now=0.0)
        for index, position in positions.items():
            estimated = indexer.location_of(f"obj{index:010d}", at_time=0.0)
            assert estimated.distance_to(position) < 1e-6

    def test_different_velocities_not_merged(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, vx=1.0, vy=0.0))
        indexer.update(make_update(2, 12.0, 10.0, vx=-1.0, vy=0.0))
        report = indexer.run_clustering(now=1.0)
        assert report.merges == 0
        assert indexer.school_count == 2

    def test_distant_leaders_in_different_clustering_cells_not_merged(self, indexer):
        indexer.update(make_update(1, 5.0, 5.0, vx=1.0, vy=0.0))
        indexer.update(make_update(2, 95.0, 95.0, vx=1.0, vy=0.0))
        indexer.run_clustering(now=1.0)
        assert indexer.school_count == 2

    def test_wrong_cell_level_rejected(self, indexer):
        with pytest.raises(ClusteringError):
            indexer.clusterer.cluster_cell(CellId(5, 0), now=0.0)

    def test_single_leader_cell_is_noop(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0))
        cell = CellId.from_point(Point(10.0, 10.0), indexer.config.clustering_cell_level, indexer.config.world)
        report = indexer.clusterer.cluster_cell(cell, now=1.0)
        assert report.leaders_before == 1
        assert report.leaders_after == 1
        assert report.write_seconds == 0.0


class TestSecondLevelMerging:
    def test_followers_transfer_when_their_leader_is_absorbed(self, indexer):
        # Round 1: objects 0 and 1 form a school (leader + follower).
        indexer.update(make_update(0, 10.0, 10.0, vx=1.0, vy=0.0))
        indexer.update(make_update(1, 12.0, 10.0, vx=1.0, vy=0.0))
        indexer.run_clustering(now=1.0)
        # Round 2: a bigger school appears nearby and absorbs the leader.
        for index in range(2, 6):
            indexer.update(make_update(index, 10.0 + index, 11.0, vx=1.0, vy=0.0))
        indexer.run_clustering(now=2.0)
        assert indexer.school_count == 1
        # Every object now points (directly) at the single surviving leader.
        leader_ids = {
            indexer.affiliation_table.role_of(f"obj{i:010d}").leader_id
            for i in range(6)
            if indexer.affiliation_table.role_of(f"obj{i:010d}").role is Role.FOLLOWER
        }
        assert len(leader_ids) == 1


class TestScheduling:
    def test_due_cells_respects_interval(self, indexer):
        load_colocated_leaders(indexer, 3)
        assert len(indexer.clusterer.due_cells(now=0.0)) == 1
        indexer.run_due_clustering(now=0.0)
        # Immediately afterwards the cell is not due again.
        assert indexer.clusterer.due_cells(now=1.0) == []
        # After the interval Tc it becomes due again.
        assert len(indexer.clusterer.due_cells(now=20.0)) == 1

    def test_occupied_clustering_cells(self, indexer):
        indexer.update(make_update(1, 5.0, 5.0))
        indexer.update(make_update(2, 95.0, 95.0))
        cells = indexer.clusterer.occupied_clustering_cells()
        assert len(cells) == 2
        assert all(cell.level == indexer.config.clustering_cell_level for cell in cells)


class TestReport:
    def test_report_phases_sum_to_total(self, indexer):
        load_colocated_leaders(indexer, 5)
        report = indexer.run_clustering(now=1.0)
        assert report.total_seconds == pytest.approx(
            report.read_seconds + report.compute_seconds + report.write_seconds
        )
        assert report.read_seconds > 0
        assert report.write_seconds > 0

    def test_report_merge_in(self):
        a = ClusteringReport(cells_processed=1, leaders_before=5, leaders_after=2, read_seconds=1.0)
        b = ClusteringReport(cells_processed=2, leaders_before=3, leaders_after=3, write_seconds=0.5)
        a.merge_in(b)
        assert a.cells_processed == 3
        assert a.leaders_before == 8
        assert a.merges == 3
        assert a.total_seconds == pytest.approx(1.5)

    def test_more_leaders_cost_more_read_time(self, indexer, small_config):
        from repro.core.moist import MoistIndexer

        small = MoistIndexer(small_config)
        load_colocated_leaders(small, 3)
        small_report = small.run_clustering(now=1.0)
        big = MoistIndexer(small_config)
        load_colocated_leaders(big, 20)
        big_report = big.run_clustering(now=1.0)
        assert big_report.read_seconds > small_report.read_seconds

"""Cross-system integration tests.

These replay the *same* recorded trace into MOIST (with and without schools)
and into the baselines, then check the comparative claims that motivate the
paper, plus a full-lifecycle test that exercises updates, clustering, all
query kinds, archiving and the server layer together.
"""

import pytest

from repro.baselines.bxtree import BxTree, BxTreeConfig
from repro.baselines.dynamic_clustering import DynamicClusteringIndex
from repro.baselines.no_school import build_no_school_indexer
from repro.baselines.static_clustering import StaticClusteringIndex
from repro.core.config import MoistConfig
from repro.core.moist import MoistIndexer
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.server.cluster import ServerCluster
from repro.server.loadtest import LoadTest
from repro.workload.generator import RoadNetworkWorkload, WorkloadConfig
from repro.workload.trace import record_trace

MAP_SIZE = 200.0
CONFIG = MoistConfig(
    world=BoundingBox(0.0, 0.0, MAP_SIZE, MAP_SIZE),
    storage_level=10,
    clustering_cell_level=1,
    deviation_threshold=15.0,
    velocity_threshold=1.0,
)


@pytest.fixture(scope="module")
def trace():
    workload = RoadNetworkWorkload(
        WorkloadConfig(
            num_objects=80,
            map_size=MAP_SIZE,
            block_size=25.0,
            min_update_interval_s=1.0,
            max_update_interval_s=1.0,
            seed=17,
        )
    )
    return record_trace(workload, duration_s=40.0)


def replay_into_moist(trace, config, with_clustering):
    indexer = MoistIndexer(config) if config.enable_schools else build_no_school_indexer(config)
    last_cluster = 0.0
    for message in trace:
        indexer.update(message)
        if with_clustering and message.timestamp - last_cluster >= config.clustering_interval_s:
            indexer.run_due_clustering(message.timestamp)
            last_cluster = message.timestamp
    return indexer


class TestTraceReplayComparisons:
    def test_schools_reduce_storage_work(self, trace):
        with_schools = replay_into_moist(trace, CONFIG, with_clustering=True)
        without = replay_into_moist(trace, CONFIG, with_clustering=False)
        assert with_schools.update_stats.shed > 0
        assert without.update_stats.shed == 0
        assert with_schools.simulated_seconds < without.simulated_seconds
        # Both still know every object.
        assert with_schools.object_count == without.object_count == 80

    def test_moist_faster_than_bxtree_on_same_trace(self, trace):
        moist = build_no_school_indexer(CONFIG)
        bx = BxTree(BxTreeConfig(region=CONFIG.world))
        for message in trace:
            moist.update(message)
            bx.update(message)
        moist_per_update = moist.simulated_seconds / moist.update_stats.total
        bx_per_update = bx.stats.simulated_seconds / bx.stats.updates
        assert moist_per_update < bx_per_update

    def test_clustering_baselines_write_every_update(self, trace):
        static = StaticClusteringIndex(CONFIG)
        dynamic = DynamicClusteringIndex(CONFIG, cluster_radius=20.0)
        sample = list(trace)[:400]
        for message in sample:
            static.update(message)
            dynamic.update(message)
        # Both baselines keep one Location Table record per update: nothing
        # is shed, which is exactly what object schools avoid.
        assert static.stats.updates == len(sample)
        assert dynamic.stats.updates == len(sample)
        moist = replay_into_moist(trace, CONFIG, with_clustering=True)
        assert moist.update_stats.shed > 0

    def test_query_results_unaffected_by_shedding_within_epsilon(self, trace):
        """Schools trade a bounded location error (<= ε) for fewer writes:
        every object's reported position stays within ε + noise of the
        position MOIST serves."""
        with_schools = replay_into_moist(trace, CONFIG, with_clustering=True)
        last_seen = {}
        for message in trace:
            last_seen[message.object_id] = message
        worst = 0.0
        for object_id, message in last_seen.items():
            served = with_schools.location_of(object_id, at_time=message.timestamp)
            worst = max(worst, served.distance_to(message.location))
        assert worst <= CONFIG.deviation_threshold * 2.0


class TestFullLifecycle:
    def test_everything_together(self, trace):
        indexer = MoistIndexer(CONFIG)
        cluster = ServerCluster(indexer, num_servers=3)
        load_test = LoadTest(cluster, failure_probability=0.0)
        result = load_test.run_updates(list(trace), bucket_requests=500)
        assert result.total_requests == len(trace)
        assert result.qps > 0

        indexer.run_clustering(now=45.0)
        assert indexer.school_count <= indexer.object_count

        center = Point(MAP_SIZE / 2, MAP_SIZE / 2)
        nn = indexer.nearest_neighbors(center, k=5)
        assert 0 < len(nn) <= 5
        region_hits = indexer.objects_near(center, radius=MAP_SIZE / 2)
        assert len(region_hits) >= len(nn)

        # Age everything out and make sure history is still served.
        indexer.archive_aged(now=45.0 + CONFIG.aging_interval_s + 1.0)
        indexer.archive_aged(now=45.0 + 2 * CONFIG.aging_interval_s + 2.0)
        indexer.archiver.flush_all(now=1000.0)
        some_object = nn[0].object_id
        assert len(indexer.object_history(some_object)) > 0

"""Tests for the batched query path: equivalence with sequential execution,
RPC savings, cache warm-up, predictive queries and the split metrics."""

import random

import pytest

from repro.core.config import MoistConfig
from repro.core.moist import MoistIndexer
from repro.core.nn_search import QueryBatchContext
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.server.cluster import ServerCluster
from repro.workload.queries import NNQuery, NNQueryWorkload

from helpers import make_update

CONFIG = MoistConfig(
    world=BoundingBox(0.0, 0.0, 100.0, 100.0),
    storage_level=8,
    clustering_cell_level=2,
)


def seeded_indexer(num_objects=120, seed=5):
    indexer = MoistIndexer(CONFIG)
    rng = random.Random(seed)
    for index in range(num_objects):
        indexer.update(
            make_update(index, rng.uniform(1.0, 99.0), rng.uniform(1.0, 99.0))
        )
    return indexer


def overlapping_queries(count=30, k=5, seed=9):
    """Queries concentrated in one quadrant so cells overlap across them."""
    rng = random.Random(seed)
    return [
        NNQuery(location=Point(rng.uniform(20.0, 40.0), rng.uniform(20.0, 40.0)), k=k)
        for _ in range(count)
    ]


def flatten(results):
    return [
        (r.object_id, r.distance, r.is_leader, r.leader_id)
        for batch in results
        for r in batch
    ]


class TestBatchEquivalence:
    def test_batch_matches_sequential_results_and_order(self):
        sequential = ServerCluster(seeded_indexer(), num_servers=3)
        batched = ServerCluster(seeded_indexer(), num_servers=3)
        queries = overlapping_queries()
        expected = [
            sequential.submit_nn_query(q.location, q.k, range_limit=q.range_limit)
            for q in queries
        ]
        actual = batched.submit_query_batch(queries)
        assert flatten(actual) == flatten(expected)

    def test_batch_issues_strictly_fewer_storage_rpcs(self):
        sequential = ServerCluster(seeded_indexer(), num_servers=3)
        batched = ServerCluster(seeded_indexer(), num_servers=3)
        queries = overlapping_queries()
        # Warm both systems identically, then measure the second (cache-warm)
        # pass of the same mixed workload.
        for q in queries:
            sequential.submit_nn_query(q.location, q.k)
        batched.submit_query_batch(queries)
        seq_before = sequential.indexer.emulator.counter.storage_rpc_count()
        for q in queries:
            sequential.submit_nn_query(q.location, q.k)
        seq_rpcs = (
            sequential.indexer.emulator.counter.storage_rpc_count() - seq_before
        )
        batch_before = batched.indexer.emulator.counter.storage_rpc_count()
        batched.submit_query_batch(queries)
        batch_rpcs = (
            batched.indexer.emulator.counter.storage_rpc_count() - batch_before
        )
        assert batch_rpcs < seq_rpcs

    def test_predictive_queries_through_batch(self):
        sequential = seeded_indexer()
        batched = seeded_indexer()
        queries = overlapping_queries(count=10, k=3)
        at_time = 5.0
        expected = [
            sequential.nearest_neighbors(q.location, q.k, at_time=at_time)
            for q in queries
        ]
        cluster = ServerCluster(batched, num_servers=2)
        actual = cluster.submit_query_batch(queries, at_time=at_time)
        assert flatten(actual) == flatten(expected)
        # Predictive positions are extrapolated: results must exist.
        assert any(batch for batch in actual)

    def test_empty_batch(self):
        cluster = ServerCluster(seeded_indexer(num_objects=5), num_servers=2)
        assert cluster.submit_query_batch([]) == []
        assert cluster.servers[0].handle_query_batch([]) == []

    def test_context_reports_shared_reads(self):
        indexer = seeded_indexer()
        queries = [NNQuery(location=Point(30.0, 30.0), k=5) for _ in range(4)]
        context = QueryBatchContext()
        indexer.nearest_neighbors_batch(queries, context=context)
        assert context.scans_shared > 0


class TestCacheWarmup:
    def test_hit_rate_monotonic_over_repeated_batches(self):
        cluster = ServerCluster(seeded_indexer(), num_servers=2)
        queries = overlapping_queries(count=20)
        rates = []
        for _ in range(4):
            cluster.submit_query_batch(queries)
            rates.append(cluster.indexer.cache_hit_rate())
        assert rates == sorted(rates)
        assert rates[-1] > 0.0

    def test_cache_stats_exposed_per_tablet(self):
        cluster = ServerCluster(seeded_indexer(), num_servers=2)
        cluster.submit_query_batch(overlapping_queries(count=10))
        stats = cluster.indexer.cache_stats()
        assert stats
        assert all(entry.lookups == entry.hits + entry.misses for entry in stats)


class TestQueryContention:
    def test_read_skew_feeds_contention_factor(self):
        cluster = ServerCluster(seeded_indexer(), num_servers=5)
        assert cluster.contention is not None
        # Hammer one spot: the hottest spatial-index tablet absorbs most of
        # the read time, so the blended skew must inflate the factor.
        hot = [NNQuery(location=Point(30.0, 30.0), k=5) for _ in range(64)]
        cluster.submit_query_batch(hot)
        cluster.contention.invalidate()
        assert cluster.contention.factor() > 1.0

    def test_batch_queries_accumulate_busy_time(self):
        cluster = ServerCluster(seeded_indexer(), num_servers=2)
        queries = overlapping_queries(count=12)
        cluster.submit_query_batch(queries)
        assert sum(s.queries_handled for s in cluster.servers) == 12
        assert sum(s.query_busy_seconds for s in cluster.servers) > 0


class TestSplitMetrics:
    def test_update_and_query_service_times_separate(self):
        cluster = ServerCluster(seeded_indexer(num_objects=40), num_servers=1)
        server = cluster.servers[0]
        server.reset_metrics()
        server.handle_update(make_update(1000, 50.0, 50.0))
        server.handle_nn_query(Point(50.0, 50.0), 3)
        assert server.mean_update_service_time() > 0
        assert server.mean_query_service_time() > 0
        assert server.update_busy_seconds > 0
        assert server.query_busy_seconds > 0
        assert server.busy_seconds == pytest.approx(
            server.update_busy_seconds + server.query_busy_seconds
        )
        blended = server.mean_service_time()
        assert blended == pytest.approx(server.busy_seconds / 2)

    def test_reset_metrics_zeroes_both_classes(self):
        cluster = ServerCluster(seeded_indexer(num_objects=10), num_servers=1)
        server = cluster.servers[0]
        server.handle_nn_query(Point(10.0, 10.0), 1)
        server.reset_metrics()
        assert server.busy_seconds == 0.0
        assert server.mean_update_service_time() == 0.0
        assert server.mean_query_service_time() == 0.0


class TestMixedLoadTest:
    def test_run_mixed_batches_counts_both_classes(self):
        from repro.server.loadtest import LoadTest

        indexer = seeded_indexer()
        cluster = ServerCluster(indexer, num_servers=2)
        messages = [make_update(2000 + i, 10.0 + (i % 80), 20.0) for i in range(100)]
        queries = NNQueryWorkload(CONFIG.world, k=5, seed=3).batch(100)
        result = LoadTest(cluster, failure_probability=0.0).run_mixed_batches(
            messages, queries, batch_size=25
        )
        assert result.total_requests == 200
        assert result.qps > 0
        assert 0.0 <= result.cache_hit_rate <= 1.0

"""Batched vs one-at-a-time update equivalence.

``MoistIndexer.update_many`` routes through the per-tablet group-commit
write path; these tests pin down the contract that batching is purely an
amortisation: the resulting table state, update statistics and total
simulated storage cost must match processing the same stream one message at
a time.
"""

import pytest

from repro.core.config import MoistConfig
from repro.core.moist import MoistIndexer
from repro.geometry.bbox import BoundingBox

from helpers import make_update

CONFIG = MoistConfig(
    world=BoundingBox(0.0, 0.0, 100.0, 100.0),
    storage_level=8,
    nn_level_delta=2,
    clustering_cell_level=2,
    deviation_threshold=5.0,
    velocity_threshold=1.0,
    clustering_interval_s=10.0,
    sigma=4,
)


def school_stream(t, count=120):
    """Updates for ``count`` objects moving together in a few tight knots."""
    messages = []
    for index in range(count):
        knot = index % 6
        offset = (index // 6) * 0.3
        messages.append(
            make_update(
                index,
                10.0 + knot * 12.0 + offset + t,
                10.0 + knot * 3.0 + offset,
                vx=1.0,
                vy=0.0,
                t=t,
            )
        )
    return messages


def divergent_stream(t, count=120):
    """Half the objects break away from their schools (promotion path)."""
    messages = []
    for index in range(count):
        if index % 2 == 0:
            messages.append(make_update(index, 10.0 + index % 6 * 12.0 + t, 10.0, t=t))
        else:
            messages.append(
                make_update(index, 90.0 - (index % 40), 90.0, vx=-1.0, t=t)
            )
    return messages


def drive(indexer, batched: bool):
    """Run the same three-phase scenario through either update path."""
    phases = [school_stream(0.0), school_stream(1.0), divergent_stream(2.0)]
    for phase_index, messages in enumerate(phases):
        if batched:
            indexer.update_many(messages)
        else:
            for message in messages:
                indexer.update(message)
        if phase_index == 0:
            indexer.run_clustering(0.5)
    return indexer


@pytest.fixture
def pair():
    sequential = drive(MoistIndexer(CONFIG), batched=False)
    batched = drive(MoistIndexer(CONFIG), batched=True)
    return sequential, batched


class TestBatchedEquivalence:
    def test_update_stats_identical(self, pair):
        sequential, batched = pair
        assert batched.update_stats == sequential.update_stats
        # The scenario must actually exercise every Algorithm 1 branch.
        assert batched.update_stats.new_leaders > 0
        assert batched.update_stats.shed > 0
        assert batched.update_stats.promotions > 0

    def test_total_simulated_cost_identical(self, pair):
        sequential, batched = pair
        assert batched.simulated_seconds == pytest.approx(
            sequential.simulated_seconds, rel=1e-12
        )

    def test_counter_breakdown_identical(self, pair):
        sequential, batched = pair
        seq = sequential.emulator.counter
        bat = batched.emulator.counter
        assert bat.counts == seq.counts
        assert bat.rows == seq.rows

    def test_location_table_state_identical(self, pair):
        sequential, batched = pair
        seq_ids = sequential.location_table.all_object_ids()
        assert batched.location_table.all_object_ids() == seq_ids
        for object_id in seq_ids:
            assert batched.location_table.recent_history(
                object_id
            ) == sequential.location_table.recent_history(object_id)

    def test_school_structure_identical(self, pair):
        sequential, batched = pair
        assert batched.school_count == sequential.school_count
        assert batched.object_count == sequential.object_count
        for object_id in sequential.location_table.all_object_ids():
            seq_role = sequential.affiliation_table.role_of(object_id)
            bat_role = batched.affiliation_table.role_of(object_id)
            assert (seq_role is None) == (bat_role is None)
            if seq_role is not None:
                assert bat_role.role == seq_role.role
                assert bat_role.leader_id == seq_role.leader_id

    def test_spatial_rows_identical(self, pair):
        sequential, batched = pair
        assert (
            batched.spatial_table.table.all_keys()
            == sequential.spatial_table.table.all_keys()
        )


class TestUpdateManyBehaviour:
    def test_empty_batch_is_noop(self):
        indexer = MoistIndexer(CONFIG)
        stats = indexer.update_many([])
        assert stats.total == 0
        assert indexer.simulated_seconds == 0.0

    def test_returns_cumulative_stats(self):
        indexer = MoistIndexer(CONFIG)
        indexer.update_many(school_stream(0.0, count=10))
        stats = indexer.update_many(school_stream(1.0, count=10))
        assert stats.total == 20

    def test_new_leaders_registered_with_archiver(self):
        indexer = MoistIndexer(CONFIG)
        indexer.update_many(school_stream(0.0, count=12))
        assert indexer.object_count == 12
        assert indexer.school_count == 12

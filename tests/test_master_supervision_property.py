"""Supervised masters: control-plane state survives SIGKILL, byte for byte.

PR 10's headline property: a seeded :class:`ChaosPlan` that folds simulated
control-plane faults (a migration aborted mid-flight, a server crash and
revival) into the same timeline as real SIGKILLs — including a kill at the
*same batch boundary* as the migration crash, i.e. the worker dies right
after checkpointing the aborted hand-off — completes with a ``to_report()``
rendering byte-identical to the chaos-free run's, at every worker count and
window size.  The accounting checkpoint now carries the tablet master's
decision history (migration/replication/failover records) alongside the
routing overrides, so a respawned shard's master continues exactly where
the dead one stopped.

The folded fault plan is drawn *before* the chaos draws, so it depends only
on the seed and the fault knobs — never on the worker count — which is what
lets one fault-only in-process reference serve every matrix point.
"""

import dataclasses
import random

import pytest

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.server import rpc
from repro.server.chaos import ChaosPlan
from repro.server.loadtest import ScaleOutLoadTest
from repro.server.master import MasterOptions
from repro.server.scaleout import ScaleOutCluster
from repro.bigtable.process_backend import make_scaleout_backend
from repro.workload.queries import NNQuery

NUM_SHARDS = 4
NUM_OBJECTS = 200
NUM_ROUNDS = 4  # 400 messages / batch_size 128
PLAN_SEED = 47
MASTER_OPTIONS = MasterOptions(replicate_read_share=0.10)


def make_messages(count, num_objects, seed=99):
    rng = random.Random(seed)
    return [
        UpdateMessage(
            object_id=format_object_id(rng.randrange(num_objects)),
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            velocity=Vector(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)),
            timestamp=float(index),
        )
        for index in range(count)
    ]


def make_queries(count, seed=7, k=5):
    rng = random.Random(seed)
    return [
        NNQuery(
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            k=k,
        )
        for _ in range(count)
    ]


MESSAGES = make_messages(400, NUM_OBJECTS)
QUERIES = make_queries(80)


def _plan(workers):
    """The acceptance-criteria schedule: every worker SIGKILLed at least
    once, one migration aborted mid-flight with a paired same-batch kill,
    one server crashed and revived."""
    return ChaosPlan.seeded(
        PLAN_SEED,
        num_batches=NUM_ROUNDS,
        num_workers=workers,
        kills=workers,
        migration_crashes=1,
        server_crashes=1,
        num_servers=2,
    )


def _cluster(backend, workers, policy=None, retry=None, window=1, **kwargs):
    kwargs.setdefault("with_master", True)
    kwargs.setdefault("master_options", MASTER_OPTIONS)
    return ScaleOutCluster.build(
        NUM_SHARDS,
        backend=backend,
        num_workers=workers,
        supervision_policy=policy,
        retry_policy=retry,
        window=window,
        num_objects=NUM_OBJECTS,
        seed=17,
        num_servers=2,
        **kwargs,
    )


def _run(cluster, chaos_plan=None, fault_plan=None):
    test = ScaleOutLoadTest(
        cluster,
        failure_probability=0.01,
        seed=404,
        rebalance_every=2,
        chaos_plan=chaos_plan,
        fault_plan=fault_plan,
    )
    return test.run_mixed_batches(MESSAGES, QUERIES, batch_size=128)


@pytest.fixture(scope="module")
def reference_report():
    """The chaos-free in-process rendering every supervised run must
    reproduce byte for byte.  The folded *simulated* faults are part of
    the deterministic workload, so the reference runs them too — as a
    plain ``fault_plan``, without any process-level chaos."""
    cluster = _cluster("inprocess", 1)
    try:
        return _run(cluster, fault_plan=_plan(1).fault_plan).to_report()
    finally:
        cluster.close()


# --------------------------------------------------------------------------
# The acceptance property
# --------------------------------------------------------------------------
class TestMasterSupervisionLossless:
    def test_folded_fault_plan_is_worker_count_independent(self):
        # One reference serves every matrix point only because the fault
        # half of the schedule never depends on the worker count.
        baseline = _plan(1).fault_plan.describe()
        assert baseline  # the composition actually folded faults in
        for workers in (2, 4):
            assert _plan(workers).fault_plan.describe() == baseline

    def test_kill_lands_on_the_migration_batch(self):
        # The pairing under test: some SIGKILL shares a batch boundary
        # with the migration crash, so the worker dies mid-migration.
        plan = _plan(2)
        migration_batches = {
            event.at_batch
            for event in plan.fault_plan.events
            if event.kind == "migration_crash"
        }
        kill_batches = {event.at_batch for event in plan.events}
        assert migration_batches
        assert migration_batches & kill_batches

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("window", [1, 8])
    def test_sigkill_mid_migration_is_byte_invisible(
        self, workers, window, reference_report
    ):
        plan = _plan(workers)
        cluster = _cluster(
            "disk",
            workers,
            policy="respawn",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
            window=window,
        )
        try:
            result = _run(cluster, chaos_plan=plan)
            assert result.to_report() == reference_report
            snapshot = cluster.recovery_snapshot()
            assert snapshot["policy"] == "respawn"
            assert snapshot["recoveries"] >= 1
            assert snapshot["lossless_recoveries"] == snapshot["recoveries"]
            assert snapshot["lost_updates"] == 0
        finally:
            cluster.close()

    def test_supervised_masters_fault_free_matches_unsupervised(
        self, reference_report
    ):
        # With no chaos the supervised master-bearing cluster (checkpointed
        # decision history included) changes no simulated number.
        cluster = _cluster(
            "disk",
            2,
            policy="respawn",
            retry=rpc.RetryPolicy(call_deadline_s=30.0),
        )
        try:
            report = _run(cluster, fault_plan=_plan(1).fault_plan).to_report()
            assert report == reference_report
            assert cluster.recovery_snapshot()["recoveries"] == 0
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# The mechanism: master decision history rides the accounting checkpoint
# --------------------------------------------------------------------------
class TestMasterStateSurvivesRespawn:
    def test_master_actions_survive_kill_and_heal(self):
        cluster = _cluster(
            "disk",
            1,
            policy="respawn",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
        )
        try:
            cluster.submit_update_batch(MESSAGES[:128])
            cluster.submit_query_batch(QUERIES[:20])
            # Force a recorded control-plane decision on every shard: the
            # aborted migration appends a MigrationRecord.
            cluster.apply_fault("migration_crash", crash_point="after_flush")
            cluster.rebalance()
            before = cluster.master_action_counts()
            assert sum(before) > 0
            cluster.backend.pool.kill_worker(0)
            cluster.heal_dead_workers()
            assert cluster.master_action_counts() == before
            snapshot = cluster.recovery_snapshot()
            assert snapshot["recoveries"] == 1
            assert snapshot["lost_updates"] == 0
        finally:
            cluster.close()

    def test_respawn_before_any_checkpointed_master_state(self):
        # A worker killed before its shards ever checkpointed still heals:
        # the restore path tolerates a checkpoint without master history.
        cluster = _cluster(
            "disk",
            1,
            policy="respawn",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
        )
        try:
            cluster.backend.pool.kill_worker(0)
            cluster.heal_dead_workers()
            assert cluster.master_action_counts() == (0, 0, 0)
            assert cluster.submit_update_batch(MESSAGES[:32]) > 0
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Satellite 1: the parent reads shard 0's recipe for the whole federation
# --------------------------------------------------------------------------
class TestMixedFleetGuard:
    def test_mixed_fleet_is_rejected_at_build_time(self):
        backend = make_scaleout_backend(
            "inprocess",
            NUM_SHARDS,
            num_objects=NUM_OBJECTS,
            seed=17,
            num_servers=2,
        )
        try:
            backend.recipes = list(backend.recipes)
            backend.recipes[2] = dataclasses.replace(
                backend.recipes[2], with_master=True
            )
            with pytest.raises(ConfigurationError, match="mixed fleet"):
                ScaleOutCluster(backend)
        finally:
            backend.close()

    def test_uniform_fleet_still_builds(self):
        cluster = _cluster("inprocess", 1)
        try:
            assert cluster.has_master
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Satellite 2: real p99 across the RPC boundary, worker-count independent
# --------------------------------------------------------------------------
class TestServiceTimePercentile:
    @pytest.fixture(scope="class")
    def p99_reference(self):
        cluster = _cluster("inprocess", 1, record_service_times=True)
        try:
            result = _run(cluster, fault_plan=_plan(1).fault_plan)
            return result.p99_service_time_s, result.to_report()
        finally:
            cluster.close()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_p99_is_real_and_worker_count_independent(
        self, workers, p99_reference
    ):
        reference_p99, reference_report = p99_reference
        assert reference_p99 > 0.0
        cluster = _cluster(
            "disk",
            workers,
            policy="respawn",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
            record_service_times=True,
            window=8,
        )
        try:
            result = _run(cluster, chaos_plan=_plan(workers))
            assert result.p99_service_time_s == reference_p99
            assert result.to_report() == reference_report
        finally:
            cluster.close()

    def test_p99_is_zero_without_recording(self):
        cluster = _cluster("inprocess", 1)
        try:
            cluster.submit_update_batch(MESSAGES[:64])
            assert cluster.service_time_percentile(0.99) == 0.0
        finally:
            cluster.close()

    def test_quantile_validation(self):
        cluster = _cluster("inprocess", 1)
        try:
            with pytest.raises(ConfigurationError, match="quantile"):
                cluster.service_time_percentile(0.0)
            with pytest.raises(ConfigurationError, match="quantile"):
                cluster.service_time_percentile(1.5)
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Composition guards
# --------------------------------------------------------------------------
class TestFaultFoldingGuards:
    def test_folded_and_explicit_fault_plans_conflict(self):
        plan = _plan(1)
        cluster = _cluster(
            "disk",
            1,
            policy="respawn",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
        )
        try:
            with pytest.raises(ConfigurationError, match="not both"):
                ScaleOutLoadTest(
                    cluster,
                    chaos_plan=plan,
                    fault_plan=plan.fault_plan,
                )
        finally:
            cluster.close()

    def test_server_crashes_need_num_servers(self):
        with pytest.raises(ConfigurationError, match="num_servers"):
            ChaosPlan.seeded(
                1, num_batches=4, num_workers=2, server_crashes=1
            )

    def test_plain_seeded_plans_carry_no_fault_plan(self):
        plan = ChaosPlan.seeded(29, num_batches=4, num_workers=2, kills=2)
        assert plan.fault_plan is None

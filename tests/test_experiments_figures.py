"""Small-scale integration runs of every figure harness.

These are scaled-down versions of the benchmark configurations: they verify
that each experiment produces the series the corresponding paper figure
plots and that the qualitative shape (who wins, what grows, what shrinks)
matches the paper's claims.
"""

import pytest

from repro.experiments.ablations import (
    run_curve_ablation,
    run_flag_cache_ablation,
    run_placement_ablation,
    run_velocity_partition_ablation,
)
from repro.experiments.common import mean, uniform_leader_indexer
from repro.experiments.fig09_schools import average_school_count, run_fig09a, run_fig09c
from repro.experiments.fig10_clustering import measure_clustering_latency, run_fig10a, run_fig10b
from repro.experiments.fig11_cluster_frequency import (
    measure_nn_cost_per_leader_count,
    run_fig11,
    simulate_nn_qps,
)
from repro.experiments.fig12_flag import (
    fixed_level_for_cell_size,
    run_fig12_density,
    run_fig12_range,
)
from repro.experiments.fig13_qps import measure_update_qps, run_fig13a, run_fig13_multiserver
from repro.experiments.headline import measure_bxtree_update_qps


class TestCommonHelpers:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0

    def test_uniform_leader_indexer_preloads_objects(self):
        indexer = uniform_leader_indexer(100)
        assert indexer.object_count == 100
        assert indexer.school_count == 100
        # Preload work is excluded from the measured ledger.
        assert indexer.simulated_seconds == 0.0


class TestFig09:
    def test_more_tolerance_means_fewer_schools(self):
        tight = average_school_count(60, deviation_threshold=1.0, duration_s=25.0)
        loose = average_school_count(60, deviation_threshold=40.0, duration_s=25.0)
        assert loose < tight

    def test_fig09a_series_structure(self):
        result = run_fig09a(epsilons=(1.0, 20.0), num_objects=40, duration_s=20.0)
        assert len(result.series) == 3
        for series in result.series:
            assert len(series.ys) == 2
            assert all(value > 0 for value in series.ys)

    def test_fig09c_variance_stays_bounded(self):
        result = run_fig09c(duration_s=40.0, num_objects=40)
        counts = result.get_series("#OS").ys
        settled = counts[len(counts) // 3:]
        assert max(settled) - min(settled) <= 20


class TestFig10:
    def test_latency_grows_with_pre_leaders(self):
        small = measure_clustering_latency(100, 20)
        large = measure_clustering_latency(400, 20)
        assert large.total_seconds > small.total_seconds
        assert large.read_seconds > small.read_seconds

    def test_read_time_dominates_writes_for_heavy_merges(self):
        report = measure_clustering_latency(400, 20)
        assert report.read_seconds > report.write_seconds

    def test_fig10a_and_b_structure(self):
        a = run_fig10a(pre_leader_counts=(100, 200), post_leaders=20)
        b = run_fig10b(post_leader_counts=(10, 50), pre_leaders=200)
        for figure in (a, b):
            labels = {series.label for series in figure.series}
            assert {"read time", "compute time", "write time", "total"} <= labels


class TestFig11:
    def test_nn_cost_grows_with_leaders(self):
        costs = measure_nn_cost_per_leader_count([200, 2000], queries=5)
        assert costs[2000] > costs[200]

    def test_clustering_beats_no_clustering(self):
        costs = {500: 5e-4, 5000: 5e-3}
        with_clustering = simulate_nn_qps(
            0.1, 30.0, costs, clustering_seconds=0.05,
            initial_leaders=500, total_objects=5000, horizon_s=30.0,
        )
        without = simulate_nn_qps(
            0.0, 30.0, costs, clustering_seconds=0.05,
            initial_leaders=5000, total_objects=5000, horizon_s=30.0,
        )
        assert with_clustering > without

    def test_run_fig11_has_optimum_above_baseline(self):
        result = run_fig11(
            frequencies_hz=(0.0, 0.1, 1.0),
            initial_leaders=100,
            total_objects=1000,
        )
        setting_a = result.get_series("setting A (30s growth)")
        baseline = result.get_series("no clustering")
        assert max(setting_a.ys) > baseline.ys[0]


class TestFig12:
    def test_fixed_level_helper(self):
        assert fixed_level_for_cell_size(8.0, 12) == 7
        assert fixed_level_for_cell_size(4.0, 12) == 8

    def test_flag_beats_fixed_fine_level_across_range(self):
        result = run_fig12_range(range_limits=(20.0, 80.0), num_objects=2000)
        flag = result.get_series("FLAG QPS")
        fine = result.get_series("fixed level 8 (4m cells) QPS")
        assert all(f >= x for f, x in zip(flag.ys, fine.ys))

    def test_fixed_level_degrades_with_range_flag_stays_flat(self):
        result = run_fig12_range(range_limits=(20.0, 100.0), num_objects=2000)
        fine = result.get_series("fixed level 8 (4m cells) QPS")
        flag = result.get_series("FLAG QPS")
        assert fine.ys[-1] < fine.ys[0]  # fixed fine level drops with range
        # FLAG degrades far more gracefully than the fixed fine level.
        flag_drop = flag.ys[0] / flag.ys[-1]
        fine_drop = fine.ys[0] / fine.ys[-1]
        assert flag_drop < fine_drop
        assert flag.ys[-1] >= 0.5 * flag.ys[0]

    def test_flag_adapts_to_density(self):
        result = run_fig12_density(object_counts=(1000, 20000))
        flag = result.get_series("FLAG QPS")
        fine = result.get_series("fixed level 8 (4m cells) QPS")
        assert all(f > x for f, x in zip(flag.ys, fine.ys))


class TestFig13:
    def test_single_server_qps_near_paper_anchor(self):
        outcome = measure_update_qps(2000, num_servers=1, num_updates=1500)
        assert 6000 < outcome.qps < 10000

    def test_qps_flat_in_population(self):
        result = run_fig13a(object_counts=(1000, 5000), num_updates=1500)
        qps = result.get_series("update QPS").ys
        assert qps[1] == pytest.approx(qps[0], rel=0.2)

    def test_multi_server_speedup(self):
        single = measure_update_qps(2000, num_servers=1, num_updates=1500)
        five = measure_update_qps(2000, num_servers=5, num_updates=1500)
        speedup = five.qps / single.qps
        assert 3.5 < speedup <= 5.0

    def test_timeline_figure_structure(self):
        result = run_fig13_multiserver(5, num_objects=2000, num_updates=4000, num_clients=10)
        labels = {series.label for series in result.series}
        assert {"QPS", "failed QPS", "average QPS"} <= labels
        assert len(result.get_series("QPS").xs) > 1


class TestHeadline:
    def test_bxtree_near_paper_number(self):
        qps = measure_bxtree_update_qps(num_objects=3000, num_updates=1500)
        assert 2000 < qps < 4500

    def test_moist_beats_bxtree_on_updates(self):
        bx = measure_bxtree_update_qps(num_objects=3000, num_updates=1500)
        moist = measure_update_qps(3000, num_servers=1, num_updates=1500).qps
        assert moist > 1.5 * bx


class TestAblations:
    def test_curve_ablation_prefers_hilbert(self):
        result = run_curve_ablation(levels=(6, 8))
        hilbert = result.get_series("Hilbert")
        z_order = result.get_series("Z-order")
        assert all(h < z for h, z in zip(hilbert.ys, z_order.ys))

    def test_velocity_partition_hexagons_respect_bound(self):
        result = run_velocity_partition_ablation(max_deviation=1.0, samples=400)
        hexagon = result.get_series("hexagon")
        assert hexagon.ys[0] <= 1.0 + 1e-9  # worst intra-bin deviation

    def test_flag_cache_reduces_probe_reads(self):
        result = run_flag_cache_ablation(num_objects=2000, queries=40)
        cached = result.get_series("with cache")
        uncached = result.get_series("without cache")
        assert cached.ys[0] <= uncached.ys[0]

    def test_placement_ablation_structure(self):
        result = run_placement_ablation(num_objects=40, records_per_object=10, queries=10)
        labels = {series.label for series in result.series}
        assert labels == {"object+location hash", "object-only hash"}
        for series in result.series:
            assert all(value > 0 for value in series.ys)

"""Tests for the multi-table emulator."""

import pytest

from repro.bigtable.cost import CostModel
from repro.bigtable.emulator import BigtableEmulator
from repro.bigtable.table import ColumnFamily
from repro.errors import StorageError, TableNotFoundError


class TestTableManagement:
    def test_create_and_lookup(self):
        emulator = BigtableEmulator()
        table = emulator.create_table("t1", [ColumnFamily("f")])
        assert emulator.table("t1") is table
        assert emulator.has_table("t1")
        assert emulator.table_names() == ["t1"]

    def test_duplicate_table_rejected(self):
        emulator = BigtableEmulator()
        emulator.create_table("t1", [ColumnFamily("f")])
        with pytest.raises(StorageError):
            emulator.create_table("t1", [ColumnFamily("f")])

    def test_missing_table_raises(self):
        emulator = BigtableEmulator()
        with pytest.raises(TableNotFoundError):
            emulator.table("missing")

    def test_drop_table(self):
        emulator = BigtableEmulator()
        emulator.create_table("t1", [ColumnFamily("f")])
        emulator.drop_table("t1")
        assert not emulator.has_table("t1")
        with pytest.raises(TableNotFoundError):
            emulator.drop_table("t1")

    def test_table_names_sorted(self):
        emulator = BigtableEmulator()
        emulator.create_table("zz", [ColumnFamily("f")])
        emulator.create_table("aa", [ColumnFamily("f")])
        assert emulator.table_names() == ["aa", "zz"]


class TestSharedAccounting:
    def test_tables_share_the_counter(self):
        emulator = BigtableEmulator()
        t1 = emulator.create_table("t1", [ColumnFamily("f")])
        t2 = emulator.create_table("t2", [ColumnFamily("f")])
        t1.write("r", "f", "q", 1, 0.0)
        t2.write("r", "f", "q", 2, 0.0)
        assert emulator.counter.total_calls() == 2
        assert emulator.simulated_seconds > 0

    def test_reset_counters(self):
        emulator = BigtableEmulator()
        table = emulator.create_table("t1", [ColumnFamily("f")])
        table.write("r", "f", "q", 1, 0.0)
        emulator.reset_counters()
        assert emulator.simulated_seconds == 0.0

    def test_custom_cost_model_applied(self):
        expensive = BigtableEmulator(cost_model=CostModel(write_rpc=1.0))
        cheap = BigtableEmulator()
        expensive.create_table("t", [ColumnFamily("f")]).write("r", "f", "q", 1, 0.0)
        cheap.create_table("t", [ColumnFamily("f")]).write("r", "f", "q", 1, 0.0)
        assert expensive.simulated_seconds > cheap.simulated_seconds

"""Tests for the six-face cube wrapper."""

import pytest

from repro.errors import SpatialError
from repro.spatial.cube import FaceCellId, NUM_FACES, face_for_lat_lng


class TestFaceSelection:
    def test_equator_prime_meridian_is_face_zero(self):
        assert face_for_lat_lng(0.0, 0.0) == 0

    def test_antipode_is_opposite_face(self):
        assert face_for_lat_lng(0.0, 180.0) == 3

    def test_north_pole(self):
        assert face_for_lat_lng(90.0, 0.0) == 2

    def test_south_pole(self):
        assert face_for_lat_lng(-90.0, 0.0) == 5

    def test_east_and_west(self):
        assert face_for_lat_lng(0.0, 90.0) == 1
        assert face_for_lat_lng(0.0, -90.0) == 4

    def test_invalid_latitude_rejected(self):
        with pytest.raises(SpatialError):
            face_for_lat_lng(95.0, 0.0)

    def test_all_faces_reachable(self):
        samples = [
            (0.0, 0.0),
            (0.0, 90.0),
            (89.0, 10.0),
            (0.0, 180.0),
            (0.0, -90.0),
            (-89.0, 10.0),
        ]
        faces = {face_for_lat_lng(lat, lng) for lat, lng in samples}
        assert faces == set(range(NUM_FACES))


class TestFaceCellId:
    def test_from_lat_lng_builds_valid_cell(self):
        cell = FaceCellId.from_lat_lng(37.4, -122.1, level=10)
        assert 0 <= cell.face < NUM_FACES
        assert cell.cell.level == 10

    def test_nearby_points_share_coarse_cell(self):
        a = FaceCellId.from_lat_lng(37.4000, -122.1000, level=8)
        b = FaceCellId.from_lat_lng(37.4001, -122.1001, level=8)
        assert a == b

    def test_far_points_differ(self):
        a = FaceCellId.from_lat_lng(37.4, -122.1, level=8)
        b = FaceCellId.from_lat_lng(-33.9, 151.2, level=8)
        assert a != b

    def test_key_prefixed_by_face(self):
        cell = FaceCellId.from_lat_lng(10.0, 20.0, level=6)
        assert cell.key().startswith(str(cell.face))

    def test_keys_of_different_faces_do_not_interleave(self):
        a = FaceCellId.from_lat_lng(0.0, 10.0, level=6)   # face 0
        b = FaceCellId.from_lat_lng(0.0, 100.0, level=6)  # face 1
        assert a.face < b.face
        assert a.key() < b.key()

    def test_parent_keeps_face(self):
        cell = FaceCellId.from_lat_lng(10.0, 20.0, level=6)
        parent = cell.parent(3)
        assert parent.face == cell.face
        assert parent.cell.contains(cell.cell)

    def test_invalid_face_rejected(self):
        from repro.spatial.cell import CellId

        with pytest.raises(SpatialError):
            FaceCellId(6, CellId(1, 0))

    def test_invalid_level_rejected(self):
        with pytest.raises(SpatialError):
            FaceCellId.from_lat_lng(0.0, 0.0, level=99)

"""Tests for the Hilbert and Z-order curve encodings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpatialError
from repro.spatial.hilbert import hilbert_index, hilbert_point
from repro.spatial.zcurve import z_index, z_point


class TestHilbertSmall:
    def test_order_one_enumerates_four_cells(self):
        positions = {hilbert_index(1, x, y) for x in range(2) for y in range(2)}
        assert positions == {0, 1, 2, 3}

    def test_order_zero_is_single_cell(self):
        assert hilbert_index(0, 0, 0) == 0

    def test_known_order_one_layout(self):
        # The classic order-1 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
        assert hilbert_index(1, 0, 0) == 0
        assert hilbert_index(1, 0, 1) == 1
        assert hilbert_index(1, 1, 1) == 2
        assert hilbert_index(1, 1, 0) == 3

    def test_out_of_range_coordinates_rejected(self):
        with pytest.raises(SpatialError):
            hilbert_index(2, 4, 0)
        with pytest.raises(SpatialError):
            hilbert_index(2, 0, -1)

    def test_negative_order_rejected(self):
        with pytest.raises(SpatialError):
            hilbert_index(-1, 0, 0)
        with pytest.raises(SpatialError):
            hilbert_point(-1, 0)

    def test_decode_out_of_range_rejected(self):
        with pytest.raises(SpatialError):
            hilbert_point(2, 16)


class TestHilbertProperties:
    @given(st.integers(min_value=1, max_value=8), st.data())
    def test_round_trip(self, order, data):
        side = 1 << order
        x = data.draw(st.integers(min_value=0, max_value=side - 1))
        y = data.draw(st.integers(min_value=0, max_value=side - 1))
        assert hilbert_point(order, hilbert_index(order, x, y)) == (x, y)

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=6))
    def test_bijection_over_whole_grid(self, order):
        side = 1 << order
        indexes = {
            hilbert_index(order, x, y) for x in range(side) for y in range(side)
        }
        assert indexes == set(range(side * side))

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=6))
    def test_curve_is_continuous(self, order):
        """Consecutive curve positions are always grid neighbours — the
        locality property that keeps nearby cells in nearby rows."""
        side = 1 << order
        for d in range(side * side - 1):
            x1, y1 = hilbert_point(order, d)
            x2, y2 = hilbert_point(order, d + 1)
            assert abs(x1 - x2) + abs(y1 - y2) == 1


class TestZCurve:
    def test_order_one_layout(self):
        assert z_index(1, 0, 0) == 0
        assert z_index(1, 1, 0) == 1
        assert z_index(1, 0, 1) == 2
        assert z_index(1, 1, 1) == 3

    @given(st.integers(min_value=1, max_value=8), st.data())
    def test_round_trip(self, order, data):
        side = 1 << order
        x = data.draw(st.integers(min_value=0, max_value=side - 1))
        y = data.draw(st.integers(min_value=0, max_value=side - 1))
        assert z_point(order, z_index(order, x, y)) == (x, y)

    def test_bijection_small_grid(self):
        codes = {z_index(3, x, y) for x in range(8) for y in range(8)}
        assert codes == set(range(64))

    def test_out_of_range_rejected(self):
        with pytest.raises(SpatialError):
            z_index(2, 4, 0)
        with pytest.raises(SpatialError):
            z_point(2, 100)

    def test_hilbert_needs_fewer_scan_runs_than_z(self):
        """Covering a small square block of cells needs fewer contiguous key
        runs (i.e. fewer range scans) under the Hilbert curve than under the
        Z-curve — the paper's reason for choosing Hilbert."""
        order = 5
        side = 1 << order
        block = 4

        def mean_runs(encoder):
            total = 0
            count = 0
            for x0 in range(0, side - block, 3):
                for y0 in range(0, side - block, 3):
                    keys = sorted(
                        encoder(order, x, y)
                        for x in range(x0, x0 + block)
                        for y in range(y0, y0 + block)
                    )
                    runs = 1 + sum(
                        1 for a, b in zip(keys, keys[1:]) if b != a + 1
                    )
                    total += runs
                    count += 1
            return total / count

        assert mean_runs(hilbert_index) < mean_runs(z_index)

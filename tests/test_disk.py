"""Tests for the disk model and disk array."""

import pytest

from repro.disk.array import DiskArray
from repro.disk.model import DiskModel
from repro.errors import ArchiveError, ConfigurationError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import HistoryRecord


def record(object_id="obj1", x=1.0, y=2.0, t=0.0):
    return HistoryRecord(
        object_id=object_id, location=Point(x, y), velocity=Vector(0.0, 0.0), timestamp=t
    )


class TestDiskModel:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskModel(rotational_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            DiskModel(transfer_rate_bytes_per_s=0.0)

    def test_access_latency(self):
        model = DiskModel(rotational_delay_s=0.004, seek_time_s=0.008)
        assert model.access_latency_s == pytest.approx(0.012)

    def test_flush_time_equation(self):
        model = DiskModel(
            rotational_delay_s=0.004, seek_time_s=0.008, transfer_rate_bytes_per_s=1e6
        )
        # Td = Trot + Tseek + sB / (nd * Rdisk)
        assert model.flush_time(1e6, 1) == pytest.approx(0.012 + 1.0)
        assert model.flush_time(1e6, 2) == pytest.approx(0.012 + 0.5)

    def test_flush_time_invalid_args(self):
        model = DiskModel()
        with pytest.raises(ConfigurationError):
            model.flush_time(100.0, 0)
        with pytest.raises(ConfigurationError):
            model.flush_time(-1.0, 1)

    def test_write_utilisation_decreases_with_disks(self):
        model = DiskModel()
        assert model.write_utilisation(1e6, 1) > model.write_utilisation(1e6, 4)

    def test_read_resolution_increases_with_disks(self):
        assert DiskModel.read_resolution(4, 100) > DiskModel.read_resolution(1, 100)

    def test_read_resolution_scaling_factor(self):
        assert DiskModel.read_resolution(2, 100, k=10.0) == pytest.approx(0.2)

    def test_read_resolution_invalid(self):
        with pytest.raises(ConfigurationError):
            DiskModel.read_resolution(0, 100)
        with pytest.raises(ConfigurationError):
            DiskModel.read_resolution(1, 100, k=0.0)


class TestDiskArray:
    def test_needs_at_least_one_disk(self):
        with pytest.raises(ArchiveError):
            DiskArray(0)

    def test_flush_and_read_back(self):
        array = DiskArray(2)
        segment = array.flush(0, [record(), record("obj2")], flush_time=1.0)
        assert segment.disk_index == 0
        assert array.segment_count() == 1
        assert array.record_count() == 2
        assert array.segments(0)[0] is segment
        assert array.segments(1) == []

    def test_flush_invalid_disk(self):
        array = DiskArray(2)
        with pytest.raises(ArchiveError):
            array.flush(5, [record()], flush_time=0.0)
        with pytest.raises(ArchiveError):
            array.segments(5)

    def test_flush_accumulates_time(self):
        array = DiskArray(1)
        array.flush(0, [record()], flush_time=0.0)
        array.flush(0, [record()], flush_time=1.0)
        assert array.flush_seconds[0] > 0
        assert array.total_flush_seconds() == pytest.approx(array.flush_seconds[0])

    def test_all_segments_iterates_every_disk(self):
        array = DiskArray(3)
        array.flush(0, [record()], flush_time=0.0)
        array.flush(2, [record()], flush_time=0.0)
        assert len(list(array.all_segments())) == 2

    def test_segment_object_ids_deduplicated_in_order(self):
        array = DiskArray(1)
        segment = array.flush(
            0, [record("a"), record("b"), record("a")], flush_time=0.0
        )
        assert segment.object_ids() == ["a", "b"]

"""Tests for repro.geometry.vector."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.vector import Vector

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestVectorAlgebra:
    def test_addition_and_subtraction(self):
        assert Vector(1.0, 2.0) + Vector(3.0, -1.0) == Vector(4.0, 1.0)
        assert Vector(1.0, 2.0) - Vector(3.0, -1.0) == Vector(-2.0, 3.0)

    def test_negation(self):
        assert -Vector(1.0, -2.0) == Vector(-1.0, 2.0)

    def test_scalar_multiplication_both_sides(self):
        assert Vector(1.0, 2.0) * 2.0 == Vector(2.0, 4.0)
        assert 3.0 * Vector(1.0, 2.0) == Vector(3.0, 6.0)

    def test_zero_vector(self):
        assert Vector.zero().magnitude() == 0.0

    @given(finite, finite, finite, finite)
    def test_addition_commutes(self, ax, ay, bx, by):
        assert Vector(ax, ay) + Vector(bx, by) == Vector(bx, by) + Vector(ax, ay)


class TestVectorMetrics:
    def test_magnitude(self):
        assert Vector(3.0, 4.0).magnitude() == pytest.approx(5.0)

    def test_squared_magnitude(self):
        assert Vector(3.0, 4.0).squared_magnitude() == pytest.approx(25.0)

    def test_distance_to_is_difference_magnitude(self):
        a = Vector(1.0, 1.0)
        b = Vector(4.0, 5.0)
        assert a.distance_to(b) == pytest.approx((a - b).magnitude())

    def test_dot_product(self):
        assert Vector(1.0, 2.0).dot(Vector(3.0, 4.0)) == pytest.approx(11.0)

    def test_orthogonal_vectors_have_zero_dot(self):
        assert Vector(1.0, 0.0).dot(Vector(0.0, 5.0)) == 0.0

    @given(finite, finite)
    def test_distance_to_self_is_zero(self, dx, dy):
        assert Vector(dx, dy).distance_to(Vector(dx, dy)) == 0.0


class TestVectorDirections:
    def test_normalised_has_unit_length(self):
        assert Vector(3.0, 4.0).normalised().magnitude() == pytest.approx(1.0)

    def test_normalised_zero_stays_zero(self):
        assert Vector.zero().normalised() == Vector(0.0, 0.0)

    def test_scaled(self):
        assert Vector(1.0, -2.0).scaled(0.5) == Vector(0.5, -1.0)

    def test_heading_of_axis_vectors(self):
        assert Vector(1.0, 0.0).heading() == pytest.approx(0.0)
        assert Vector(0.0, 1.0).heading() == pytest.approx(math.pi / 2)

    def test_rotated_quarter_turn(self):
        rotated = Vector(1.0, 0.0).rotated(math.pi / 2)
        assert rotated.dx == pytest.approx(0.0, abs=1e-12)
        assert rotated.dy == pytest.approx(1.0)

    @given(finite, finite)
    def test_rotation_preserves_magnitude(self, dx, dy):
        vector = Vector(dx, dy)
        rotated = vector.rotated(1.234)
        assert rotated.magnitude() == pytest.approx(vector.magnitude(), rel=1e-9, abs=1e-9)

    def test_is_finite(self):
        assert Vector(1.0, 1.0).is_finite()
        assert not Vector(float("nan"), 1.0).is_finite()

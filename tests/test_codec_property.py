"""Property tests: every columnar codec against its pickle-fallback twin.

Each wire codec has two paths — a columnar fast path and a pickle
fallback behind the same one-byte flag — and the decoder cannot tell the
difference.  These tests drive both paths over adversarial inputs
(non-numeric and unicode object ids, NaN/inf coordinates, empty and
single-record batches) and assert:

* **round-trip equality** — decode(encode(x)) reproduces x bit-for-bit
  (floats compared by bit pattern, so NaN payloads count too);
* **fallback correctness** — inputs the columnar layout cannot carry
  produce a pickled frame that still round-trips exactly;
* **byte determinism** — encoding the same seeded input twice, or through
  two fresh encoder instances, yields byte-identical output (the property
  the wire-bytes CI guard and the worker-count invariance both rest on).
"""

from __future__ import annotations

import math
import random
import struct

import pytest

from repro.bigtable.cost import CostModel, OpCounter
from repro.bigtable.tablet import TabletStats
from repro.codec import wire
from repro.errors import RpcError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import NeighborResult, UpdateMessage, format_object_id
from repro.server import rpc
from repro.workload.queries import NNQuery

_F64 = struct.Struct("<d")


def _bits(value: float) -> bytes:
    return _F64.pack(value)


def _update_equal(a: UpdateMessage, b: UpdateMessage) -> bool:
    return (
        a.object_id == b.object_id
        and _bits(a.location.x) == _bits(b.location.x)
        and _bits(a.location.y) == _bits(b.location.y)
        and _bits(a.velocity.dx) == _bits(b.velocity.dx)
        and _bits(a.velocity.dy) == _bits(b.velocity.dy)
        and _bits(a.timestamp) == _bits(b.timestamp)
    )


def _query_equal(a: NNQuery, b: NNQuery) -> bool:
    if _bits(a.location.x) != _bits(b.location.x):
        return False
    if _bits(a.location.y) != _bits(b.location.y):
        return False
    if a.k != b.k:
        return False
    if (a.range_limit is None) != (b.range_limit is None):
        return False
    return a.range_limit is None or _bits(a.range_limit) == _bits(b.range_limit)


def _seeded_updates(seed: int, count: int, ids="numeric"):
    rng = random.Random(seed)
    messages = []
    for index in range(count):
        if ids == "numeric":
            object_id = format_object_id(rng.randrange(10000))
        elif ids == "mixed":
            object_id = rng.choice(
                [format_object_id(index), f"bus-{index}", f"tøg-{index}"]
            )
        else:
            object_id = f"véhicule-{index:04d}"
        messages.append(
            UpdateMessage(
                object_id=object_id,
                location=Point(rng.uniform(0, 1000), rng.uniform(0, 1000)),
                velocity=Vector(rng.uniform(-2, 2), rng.uniform(-2, 2)),
                timestamp=float(index) / 10.0,
            )
        )
    return messages


# --------------------------------------------------------------------------
# Update batches
# --------------------------------------------------------------------------

ADVERSARIAL_UPDATES = [
    [],
    [
        UpdateMessage(
            object_id=format_object_id(7),
            location=Point(1.5, 2.5),
            velocity=Vector(0.0, 0.0),
            timestamp=0.0,
        )
    ],
    _seeded_updates(1, 1, ids="unicode"),
    _seeded_updates(2, 40, ids="mixed"),
    # Extreme-but-finite floats: denormals, negative zero, huge magnitudes
    # and negative timestamps (NaN/inf coordinates cannot exist on this
    # path — ``UpdateMessage`` validates at construction *and* inside
    # ``__reduce__``, so even the pickle twin rejects them; the NaN/inf
    # coverage lives with the query and neighbour codecs below).
    [
        UpdateMessage(
            object_id="not numeric",
            location=Point(-0.0, 5e-324),
            velocity=Vector(-1e300, 1e300),
            timestamp=-1.0,
        )
    ],
    [
        UpdateMessage(
            object_id=format_object_id(3),
            location=Point(1e300, -5e-324),
            velocity=Vector(0.0, -0.0),
            timestamp=1e300,
        )
    ],
]


def test_update_messages_cannot_carry_non_finite_coordinates():
    from repro.errors import SchemaError

    with pytest.raises(SchemaError):
        UpdateMessage(
            object_id="x",
            location=Point(float("nan"), 0.0),
            velocity=Vector(0.0, 0.0),
            timestamp=0.0,
        )


@pytest.mark.parametrize("index", range(len(ADVERSARIAL_UPDATES)))
def test_update_batch_round_trips_adversarial_inputs(index):
    messages = ADVERSARIAL_UPDATES[index]
    body = rpc.encode_update_batch(messages)
    decoded = rpc.decode_update_batch(body)
    assert len(decoded) == len(messages)
    for a, b in zip(messages, decoded):
        assert _update_equal(a, b)


def test_update_batch_non_numeric_ids_take_the_pickle_fallback():
    numeric = _seeded_updates(3, 10, ids="numeric")
    unicode_ids = _seeded_updates(3, 10, ids="unicode")
    assert rpc.encode_update_batch(numeric)[0] == wire.FLAG_COLUMNAR
    assert rpc.encode_update_batch(unicode_ids)[0] == wire.FLAG_PICKLED
    assert wire.encode_update_batch_columnar(unicode_ids) is None


def test_update_batch_columnar_beats_pickle_on_the_hot_shape():
    messages = _seeded_updates(4, 256, ids="numeric")
    columnar = rpc.encode_update_batch(messages)
    import pickle

    # Five f64 columns dominate the columnar size (~41 bytes/record);
    # pickle spends roughly double that on the same content.
    assert len(columnar) * 1.8 < len(pickle.dumps(messages))


def test_update_batch_encoding_is_deterministic():
    messages = _seeded_updates(5, 64, ids="numeric")
    assert rpc.encode_update_batch(messages) == rpc.encode_update_batch(messages)
    assert rpc.encode_update_batch(list(messages)) == rpc.encode_update_batch(
        messages
    )


# --------------------------------------------------------------------------
# Query batches
# --------------------------------------------------------------------------

ADVERSARIAL_QUERIES = [
    [],
    [NNQuery(location=Point(1.0, 2.0), k=10)],
    [NNQuery(location=Point(float("nan"), float("inf")), k=1)],
    [NNQuery(location=Point(0.0, 0.0), k=0, range_limit=float("inf"))],
    [
        NNQuery(location=Point(i * 1.0, i * 2.0), k=i % 7, range_limit=None)
        for i in range(30)
    ]
    + [NNQuery(location=Point(5.0, 5.0), k=3, range_limit=12.5)],
]


@pytest.mark.parametrize("index", range(len(ADVERSARIAL_QUERIES)))
def test_query_batch_round_trips_adversarial_inputs(index):
    queries = ADVERSARIAL_QUERIES[index]
    body = rpc.encode_query_batch(queries)
    decoded = rpc.decode_query_batch(body)
    assert len(decoded) == len(queries)
    for a, b in zip(queries, decoded):
        assert _query_equal(a, b)


def test_query_batch_negative_k_takes_the_pickle_fallback():
    queries = [NNQuery(location=Point(1.0, 1.0), k=-1)]
    assert wire.encode_query_batch_columnar(queries) is None
    body = rpc.encode_query_batch(queries)
    assert body[0] == wire.FLAG_PICKLED
    assert rpc.decode_query_batch(body)[0].k == -1


def test_query_batch_encoding_is_deterministic():
    rng = random.Random(8)
    queries = [
        NNQuery(
            location=Point(rng.uniform(0, 1000), rng.uniform(0, 1000)),
            k=rng.randrange(1, 20),
            range_limit=rng.choice([None, rng.uniform(1, 100)]),
        )
        for _ in range(50)
    ]
    assert rpc.encode_query_batch(queries) == rpc.encode_query_batch(queries)


# --------------------------------------------------------------------------
# The stateful neighbour stream
# --------------------------------------------------------------------------


def _results_for(queries, objects):
    """NeighborResults with the exact distance identity the codec verifies."""
    batches = []
    for query in queries:
        batch = []
        for object_id, point, leader in objects:
            batch.append(
                NeighborResult(
                    object_id=object_id,
                    location=point,
                    distance=point.distance_to(query.location),
                    is_leader=leader is None,
                    leader_id=leader,
                )
            )
        batches.append(batch)
    return batches


def _stream_pair():
    return wire.NeighborStreamEncoder(), wire.NeighborStreamDecoder()


def _assert_batches_equal(decoded, expected):
    assert len(decoded) == len(expected)
    for da, ea in zip(decoded, expected):
        assert len(da) == len(ea)
        for d, e in zip(da, ea):
            assert d.object_id == e.object_id
            assert _bits(d.location.x) == _bits(e.location.x)
            assert _bits(d.location.y) == _bits(e.location.y)
            assert _bits(d.distance) == _bits(e.distance)
            assert d.is_leader == e.is_leader
            assert d.leader_id == e.leader_id


def test_neighbor_stream_round_trips_and_shrinks_repeats():
    encoder, decoder = _stream_pair()
    queries = [NNQuery(location=Point(10.0, 20.0), k=5)]
    objects = [
        (format_object_id(i), Point(i * 3.0, i * 5.0), None) for i in range(5)
    ]
    batches = _results_for(queries, objects)

    first = encoder.encode(batches, queries)
    _assert_batches_equal(decoder.decode(first, queries), batches)
    second = encoder.encode(batches, queries)
    _assert_batches_equal(decoder.decode(second, queries), batches)
    # Unchanged records cost a couple of bytes each on the repeat frame.
    assert len(second) < len(first) / 3


def test_neighbor_stream_falls_back_on_non_numeric_ids_and_resyncs():
    encoder, decoder = _stream_pair()
    queries = [NNQuery(location=Point(0.0, 0.0), k=3)]
    good = _results_for(queries, [(format_object_id(1), Point(3.0, 4.0), None)])
    weird = _results_for(queries, [("bus-17", Point(1.0, 1.0), None)])

    frame = encoder.encode(good, queries)
    assert frame[0] == wire.FLAG_COLUMNAR
    _assert_batches_equal(decoder.decode(frame, queries), good)

    fallback = encoder.encode(weird, queries)
    assert fallback[0] == wire.FLAG_PICKLED
    _assert_batches_equal(decoder.decode(fallback, queries), weird)

    # The fallback frame left both dictionaries untouched: the stream
    # carries on columnar with the tokens it already assigned.
    resumed = encoder.encode(good, queries)
    assert resumed[0] == wire.FLAG_COLUMNAR
    _assert_batches_equal(decoder.decode(resumed, queries), good)


def test_neighbor_stream_carries_nan_distances_columnar():
    """Same-bit NaN distances pass the bitwise identity check and ride the
    columnar path — reconstructed bit-exactly on the far side."""
    encoder, decoder = _stream_pair()
    queries = [NNQuery(location=Point(float("nan"), 0.0), k=1)]
    batches = _results_for(
        queries, [(format_object_id(2), Point(1.0, 2.0), None)]
    )
    assert math.isnan(batches[0][0].distance)
    frame = encoder.encode(batches, queries)
    assert frame[0] == wire.FLAG_COLUMNAR
    decoded = decoder.decode(frame, queries)
    assert _bits(decoded[0][0].distance) == _bits(batches[0][0].distance)


def test_neighbor_stream_rejects_out_of_order_frames():
    encoder, decoder = _stream_pair()
    queries = [NNQuery(location=Point(0.0, 0.0), k=1)]
    batches = _results_for(queries, [(format_object_id(1), Point(1.0, 0.0), None)])
    first = encoder.encode(batches, queries)
    decoder.decode(first, queries)
    with pytest.raises(RpcError):
        decoder.decode(first, queries)  # replayed frame


def test_neighbor_stream_bytes_are_deterministic_across_fresh_pairs():
    queries = [NNQuery(location=Point(50.0, 50.0), k=8)]
    rng = random.Random(13)
    objects = [
        (
            format_object_id(i),
            Point(rng.uniform(0, 100), rng.uniform(0, 100)),
            None,
        )
        for i in range(8)
    ]
    batches = _results_for(queries, objects)
    frames_a = []
    frames_b = []
    for frames in (frames_a, frames_b):
        encoder = wire.NeighborStreamEncoder()
        frames.append(encoder.encode(batches, queries))
        frames.append(encoder.encode(batches, queries))
    assert frames_a == frames_b


# --------------------------------------------------------------------------
# Compact CALL results vs their pickle twins
# --------------------------------------------------------------------------


def _counter_snapshot():
    from repro.bigtable.cost import OpKind

    counter = OpCounter(model=CostModel())
    counter.record(OpKind.READ, rows=3)
    counter.record(OpKind.WRITE, rows=2)
    counter.record_durability(OpKind.LOG_APPEND, rows=2)
    return counter.snapshot()


RESULT_VALUES = [
    None,
    True,
    False,
    0,
    12345678901234567890,
    -1,  # negative ints defer to pickle
    3.25,
    float("nan"),
    "plain string",
    "tøg-ünïcode",
    "",
    (1, 2, 3),  # tuples defer to pickle
    {"makespan": 1.5, "servers": [], "master_actions": (0, 0, 0), "has_master": False},
    {
        "makespan": 0.25,
        "servers": [(3, 4, 0.1, 0.2, True), (0, 0, 0.0, 0.0, False)],
        "master_actions": (1, 2, 3),
        "has_master": True,
    },
    [],
    [
        TabletStats(
            table="location",
            tablet_id="location/tablet-0001",
            start_key="",
            end_key=None,
            row_count=10,
            op_calls=4,
            simulated_seconds=0.5,
            read_seconds=0.25,
            write_seconds=0.25,
            run_count=2,
            log_records=7,
            durability_seconds=0.125,
            write_amplification=1.5,
        ),
        TabletStats(
            table="location",
            tablet_id="location/tablet-0002",
            start_key="8000",
            end_key="c000",
            row_count=0,
            op_calls=0,
            simulated_seconds=0.0,
            read_seconds=0.0,
            write_seconds=0.0,
        ),
    ],
]


@pytest.mark.parametrize("index", range(len(RESULT_VALUES)))
def test_result_codec_round_trips_against_pickle_twin(index):
    value = RESULT_VALUES[index]
    body = rpc.encode_result(value)
    decoded = rpc.decode_result(body)
    if isinstance(value, float) and math.isnan(value):
        assert math.isnan(decoded)
    else:
        assert decoded == value
        assert type(decoded) is type(value)


def test_counter_snapshot_result_is_compact_and_exact():
    snapshot = _counter_snapshot()
    compact = wire.encode_result_compact(snapshot)
    assert compact is not None and compact[0] == wire.RESULT_COUNTER_SNAPSHOT
    assert wire.decode_result_compact(compact) == snapshot


def test_tablet_stats_result_bytes_are_interning_independent():
    """The pickle twin's size depends on whether equal strings are the
    same object (memoisation); the columnar encoding must not."""
    shared = "location"
    rows_shared = [
        TabletStats(shared, f"{shared}/tablet-000{i}", "", None, 1, 1, 0.0, 0.0, 0.0)
        for i in range(3)
    ]
    rows_distinct = [
        TabletStats(
            "".join("location"),
            f"{'loc' + 'ation'}/tablet-000{i}",
            "",
            None,
            1,
            1,
            0.0,
            0.0,
            0.0,
        )
        for i in range(3)
    ]
    a = wire.encode_result_compact(rows_shared)
    b = wire.encode_result_compact(rows_distinct)
    assert a is not None and a[0] == wire.RESULT_TABLET_STATS
    assert a == b
    assert wire.decode_result_compact(a) == rows_shared


def test_exotic_results_still_round_trip_via_pickle():
    for value in [{"arbitrary": [1, 2, {3}]}, object, Ellipsis]:
        body = rpc.encode_result(value)
        assert body[0] == wire.FLAG_PICKLED
        assert rpc.decode_result(body) == value

"""Tests for the nearest-neighbour search (Algorithm 2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.moist import MoistIndexer
from repro.core.nn_search import NNQueryStats
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id

from helpers import make_update


def load_uniform(indexer, count, seed=7):
    rng = random.Random(seed)
    positions = {}
    for index in range(count):
        point = Point(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))
        positions[format_object_id(index)] = point
        indexer.update(
            UpdateMessage(format_object_id(index), point, Vector(0.0, 0.0), 0.0)
        )
    return positions


def brute_force_knn(positions, query, k):
    ranked = sorted(positions.items(), key=lambda item: item[1].distance_to(query))
    return [object_id for object_id, _ in ranked[:k]]


class TestValidation:
    def test_k_must_be_positive(self, indexer):
        with pytest.raises(QueryError):
            indexer.nearest_neighbors(Point(1.0, 1.0), 0)

    def test_negative_range_rejected(self, indexer):
        with pytest.raises(QueryError):
            indexer.nearest_neighbors(Point(1.0, 1.0), 1, range_limit=-5.0)

    def test_invalid_fixed_level_rejected(self, indexer):
        with pytest.raises(QueryError):
            indexer.nearest_neighbors(Point(1.0, 1.0), 1, nn_level=99)


class TestCorrectness:
    def test_empty_index_returns_nothing(self, indexer):
        assert indexer.nearest_neighbors(Point(50.0, 50.0), 5) == []

    def test_single_object_found(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0))
        results = indexer.nearest_neighbors(Point(12.0, 10.0), 1)
        assert len(results) == 1
        assert results[0].object_id == "obj0000000001"
        assert results[0].distance == pytest.approx(2.0)

    def test_matches_brute_force(self, indexer):
        positions = load_uniform(indexer, 60)
        query = Point(42.0, 58.0)
        results = indexer.nearest_neighbors(query, 5)
        expected = brute_force_knn(positions, query, 5)
        assert [r.object_id for r in results] == expected

    def test_results_sorted_by_distance(self, indexer):
        load_uniform(indexer, 40)
        results = indexer.nearest_neighbors(Point(30.0, 30.0), 8)
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_k_larger_than_population(self, indexer):
        load_uniform(indexer, 5)
        results = indexer.nearest_neighbors(Point(50.0, 50.0), 20)
        assert len(results) == 5

    def test_range_limit_filters_results(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0))
        indexer.update(make_update(2, 90.0, 90.0))
        results = indexer.nearest_neighbors(Point(12.0, 10.0), 5, range_limit=10.0)
        assert [r.object_id for r in results] == ["obj0000000001"]

    def test_fixed_level_queries_agree_with_flag(self, indexer):
        positions = load_uniform(indexer, 60)
        query = Point(70.0, 20.0)
        expected = brute_force_knn(positions, query, 4)
        for level in (4, 5, 6):
            results = indexer.nearest_neighbors(query, 4, nn_level=level)
            assert [r.object_id for r in results] == expected

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=5.0, max_value=95.0), st.floats(min_value=5.0, max_value=95.0))
    def test_property_matches_brute_force(self, qx, qy):
        from repro.core.config import MoistConfig
        from repro.geometry.bbox import BoundingBox

        config = MoistConfig(
            world=BoundingBox(0.0, 0.0, 100.0, 100.0),
            storage_level=8,
            clustering_cell_level=2,
            sigma=4,
        )
        indexer = MoistIndexer(config)
        positions = load_uniform(indexer, 30, seed=11)
        query = Point(qx, qy)
        results = indexer.nearest_neighbors(query, 3)
        assert [r.object_id for r in results] == brute_force_knn(positions, query, 3)


class TestSchoolsInResults:
    def test_followers_are_returned(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, vx=1.0, vy=0.0))
        indexer.update(make_update(2, 12.0, 10.0, vx=1.0, vy=0.0))
        indexer.run_clustering(now=0.5)
        assert indexer.school_count == 1
        results = indexer.nearest_neighbors(Point(11.0, 10.0), 2)
        assert {r.object_id for r in results} == {"obj0000000001", "obj0000000002"}
        assert sum(1 for r in results if r.is_leader) == 1
        follower = next(r for r in results if not r.is_leader)
        assert follower.leader_id is not None

    def test_followers_excluded_when_requested(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, vx=1.0, vy=0.0))
        indexer.update(make_update(2, 12.0, 10.0, vx=1.0, vy=0.0))
        indexer.run_clustering(now=0.5)
        results = indexer.nearest_neighbors(Point(11.0, 10.0), 2, include_followers=False)
        assert len(results) == 1
        assert results[0].is_leader

    def test_predictive_query_extrapolates_leaders(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, vx=2.0, vy=0.0, t=0.0))
        results = indexer.nearest_neighbors(Point(20.0, 10.0), 1, at_time=5.0)
        assert results[0].location.x == pytest.approx(20.0)
        assert results[0].distance == pytest.approx(0.0, abs=1e-9)


class TestStats:
    def test_stats_populated(self, indexer):
        load_uniform(indexer, 30)
        stats = NNQueryStats()
        indexer.nearest_neighbors(Point(50.0, 50.0), 5, stats=stats)
        assert stats.cells_visited >= 1
        assert stats.leaders_scanned >= 5
        assert stats.nn_level >= 1

    def test_coarser_level_visits_fewer_cells(self, indexer):
        load_uniform(indexer, 50)
        coarse_stats = NNQueryStats()
        fine_stats = NNQueryStats()
        indexer.nearest_neighbors(Point(50.0, 50.0), 5, nn_level=3, stats=coarse_stats)
        indexer.nearest_neighbors(Point(50.0, 50.0), 5, nn_level=7, stats=fine_stats)
        assert coarse_stats.cells_visited <= fine_stats.cells_visited

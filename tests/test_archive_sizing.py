"""Tests for the disk-count optimisation (Section 3.6.2)."""

import pytest

from repro.archive.sizing import optimise_disk_count
from repro.disk.model import DiskModel
from repro.errors import ConfigurationError


MODEL = DiskModel(
    rotational_delay_s=0.004, seek_time_s=0.008, transfer_rate_bytes_per_s=100e6
)


class TestValidation:
    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            optimise_disk_count(MODEL, 0.0, 1000, 10.0)
        with pytest.raises(ConfigurationError):
            optimise_disk_count(MODEL, 1e6, 0, 10.0)
        with pytest.raises(ConfigurationError):
            optimise_disk_count(MODEL, 1e6, 1000, 0.0)
        with pytest.raises(ConfigurationError):
            optimise_disk_count(MODEL, 1e6, 1000, 1.0, max_disks=0)


class TestOptimisation:
    def test_result_respects_max_disks(self):
        result = optimise_disk_count(MODEL, 1e8, 10000, fill_time_s=60.0, max_disks=16)
        assert 1 <= result.num_disks <= 16

    def test_crossover_found_when_constraint_slack(self):
        # Ud = 0.833/nd and Rd = 0.001*nd cross near nd = 29, well inside the
        # 64-disk budget, and the huge fill time keeps the constraint slack.
        result = optimise_disk_count(
            MODEL, 1e6, 1000, fill_time_s=1e6, k=1.0, max_disks=64
        )
        assert result.binding == "crossover"
        assert result.constraint_satisfied
        # At the crossover the two objectives are close to each other.
        ratio = result.write_utilisation / result.read_resolution
        assert 0.1 <= ratio <= 10.0

    def test_more_objects_need_more_disks_for_resolution(self):
        few = optimise_disk_count(MODEL, 1e8, 1000, fill_time_s=1e6, k=1.0, max_disks=256)
        many = optimise_disk_count(MODEL, 1e8, 100000, fill_time_s=1e6, k=1.0, max_disks=256)
        assert many.num_disks >= few.num_disks

    def test_tight_fill_time_limits_disks(self):
        # With an extremely tight fill time even one disk may violate the
        # constraint; the result reports that explicitly.
        result = optimise_disk_count(MODEL, 1e9, 1000, fill_time_s=1e-6, max_disks=8)
        assert not result.constraint_satisfied
        assert result.num_disks == 1

    def test_constraint_binding_reported(self):
        # Moderate fill time: the crossover (which wants many disks for this
        # many objects) is reachable only if Td stays below Tm.
        result = optimise_disk_count(MODEL, 1e8, 10**6, fill_time_s=2.0, k=1.0, max_disks=64)
        assert result.binding in ("crossover", "constraint")
        if result.binding == "constraint":
            assert result.constraint_satisfied

    def test_objective_is_min_of_both(self):
        result = optimise_disk_count(MODEL, 1e8, 10000, fill_time_s=60.0, max_disks=32)
        assert result.objective == pytest.approx(
            min(result.write_utilisation, result.read_resolution)
        )

    def test_flush_time_matches_model(self):
        result = optimise_disk_count(MODEL, 1e8, 10000, fill_time_s=60.0, max_disks=32)
        assert result.flush_time == pytest.approx(
            MODEL.flush_time(1e8, result.num_disks)
        )

"""Tests for the road-network workload generator and uniform workload."""

import pytest

from repro.errors import WorkloadError
from repro.geometry.bbox import BoundingBox
from repro.workload.generator import RoadNetworkWorkload, WorkloadConfig
from repro.workload.uniform import UniformWorkload


class TestWorkloadConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_objects=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(pedestrian_fraction=1.5)
        with pytest.raises(WorkloadError):
            WorkloadConfig(noise_std=-0.1)
        with pytest.raises(WorkloadError):
            WorkloadConfig(min_update_interval_s=0.0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(min_update_interval_s=2.0, max_update_interval_s=1.0)


class TestRoadNetworkWorkload:
    def _workload(self, **kwargs):
        defaults = dict(
            num_objects=20,
            map_size=100.0,
            block_size=25.0,
            min_update_interval_s=1.0,
            max_update_interval_s=1.0,
            seed=5,
        )
        defaults.update(kwargs)
        return RoadNetworkWorkload(WorkloadConfig(**defaults))

    def test_population_split_between_kinds(self):
        workload = self._workload(pedestrian_fraction=0.5)
        kinds = [obj.kind.value for obj in workload.objects]
        assert kinds.count("pedestrian") == 10
        assert kinds.count("car") == 10

    def test_advance_produces_messages_in_time_order(self):
        workload = self._workload()
        messages = workload.advance_to(5.0)
        timestamps = [m.timestamp for m in messages]
        assert timestamps == sorted(timestamps)
        assert all(0.0 <= t <= 5.0 for t in timestamps)

    def test_roughly_one_update_per_object_per_second(self):
        workload = self._workload()
        messages = workload.advance_to(10.0)
        # 20 objects at 1 Hz over 10 s: about 200 messages (staggered start).
        assert 150 <= len(messages) <= 220

    def test_time_cannot_move_backwards(self):
        workload = self._workload()
        workload.advance_to(5.0)
        with pytest.raises(WorkloadError):
            workload.advance_to(1.0)

    def test_messages_within_map_bounds(self):
        workload = self._workload(noise_std=1.0)
        bounds = workload.network.bounds
        for message in workload.advance_to(10.0):
            assert bounds.contains_point(message.location)

    def test_run_yields_batches(self):
        workload = self._workload()
        batches = list(workload.run(5.0, step_s=1.0))
        assert len(batches) == 5
        with pytest.raises(WorkloadError):
            list(self._workload().run(0.0))

    def test_deterministic_for_seed(self):
        first = self._workload(seed=9).advance_to(5.0)
        second = self._workload(seed=9).advance_to(5.0)
        assert [(m.object_id, m.timestamp) for m in first] == [
            (m.object_id, m.timestamp) for m in second
        ]

    def test_different_seeds_differ(self):
        first = self._workload(seed=1).advance_to(5.0)
        second = self._workload(seed=2).advance_to(5.0)
        assert [m.location for m in first] != [m.location for m in second]


class TestUniformWorkload:
    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            UniformWorkload(num_objects=0)
        with pytest.raises(WorkloadError):
            UniformWorkload(max_speed=-1.0)

    def test_initial_updates_cover_every_object(self):
        workload = UniformWorkload(num_objects=50, seed=3)
        updates = workload.initial_updates()
        assert len(updates) == 50
        assert len({u.object_id for u in updates}) == 50

    def test_positions_inside_region(self):
        region = BoundingBox(0.0, 0.0, 10.0, 10.0)
        workload = UniformWorkload(num_objects=30, region=region, seed=3)
        for update in workload.initial_updates():
            assert region.contains_point(update.location)

    def test_step_keeps_objects_inside_region(self):
        region = BoundingBox(0.0, 0.0, 10.0, 10.0)
        workload = UniformWorkload(num_objects=30, region=region, max_speed=5.0, seed=3)
        for step in range(20):
            for update in workload.step(dt=1.0, timestamp=float(step)):
                assert region.contains_point(update.location)

    def test_random_update_targets_known_object(self):
        workload = UniformWorkload(num_objects=10, seed=3)
        update = workload.random_update(timestamp=1.0)
        assert update.object_id in {workload.object_id(i) for i in range(10)}

    def test_object_accessors_validate_index(self):
        workload = UniformWorkload(num_objects=5, seed=3)
        with pytest.raises(WorkloadError):
            workload.object_id(5)
        with pytest.raises(WorkloadError):
            workload.position(-1)

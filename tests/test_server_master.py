"""Unit tests for the tablet master: routing, migration, replication,
rebalancing."""

import pytest

from repro.bigtable.cost import OpKind
from repro.errors import ConfigurationError
from repro.experiments.common import uniform_leader_indexer
from repro.server.cluster import ServerCluster, TabletRoutingTable
from repro.server.loadtest import LoadTest
from repro.server.master import (
    CRASH_AFTER_FLUSH,
    CRASH_AFTER_HANDOFF,
    MasterOptions,
    TabletMaster,
)

from helpers import make_update


def build_cluster(num_objects=800, num_servers=4, seed=17, **master_kwargs):
    indexer = uniform_leader_indexer(num_objects, seed=seed)
    cluster = ServerCluster(indexer, num_servers=num_servers)
    master = TabletMaster(cluster, MasterOptions(**master_kwargs))
    return indexer, cluster, master


def drive_updates(cluster, count=1200, num_objects=800, batch_size=256):
    messages = [
        make_update(index % num_objects, 10.0 + (index % 900), 10.0 + (index % 900))
        for index in range(count)
    ]
    load_test = LoadTest(cluster, failure_probability=0.0)
    return load_test.run_update_batches(messages, batch_size=batch_size)


class TestTabletRoutingTable:
    def test_defaults_to_hash_affinity(self):
        routing = TabletRoutingTable(4)
        assert routing.primary_index("t/x") == routing.default_index("t/x")
        assert not routing.is_pinned("t/x")
        assert routing.read_indices("t/x") == (routing.default_index("t/x"),)

    def test_assignment_overrides_default(self):
        routing = TabletRoutingTable(4)
        target = (routing.default_index("t/x") + 1) % 4
        routing.assign("t/x", target)
        assert routing.primary_index("t/x") == target
        assert routing.is_pinned("t/x")

    def test_replicas_follow_primary(self):
        routing = TabletRoutingTable(4)
        primary = routing.primary_index("t/x")
        replica = (primary + 1) % 4
        assert routing.add_replica("t/x", replica)
        assert not routing.add_replica("t/x", replica)  # already serving
        assert not routing.add_replica("t/x", primary)  # primary serves anyway
        assert routing.read_indices("t/x") == (primary, replica)
        assert routing.replica_counts() == {"t/x": 2}
        # Promoting the replica to primary collapses the replica set.
        routing.assign("t/x", replica)
        assert routing.read_indices("t/x") == (replica,)
        assert routing.replica_counts() == {}

    def test_drop_server_strips_replicas(self):
        routing = TabletRoutingTable(3)
        primary = routing.primary_index("t/x")
        replica = (primary + 1) % 3
        routing.add_replica("t/x", replica)
        routing.drop_server(replica)
        assert routing.read_indices("t/x") == (primary,)

    def test_invalid_servers_rejected(self):
        routing = TabletRoutingTable(2)
        with pytest.raises(ConfigurationError):
            routing.assign("t/x", 5)
        with pytest.raises(ConfigurationError):
            routing.add_replica("t/x", -1)
        with pytest.raises(ConfigurationError):
            TabletRoutingTable(0)


class TestMigration:
    def test_committed_migration_repoints_routing(self):
        indexer, cluster, master = build_cluster()
        drive_updates(cluster)
        stats = max(indexer.tablet_stats(), key=lambda s: s.simulated_seconds)
        source = cluster.server_index_for_tablet(stats.tablet_id)
        target = (source + 1) % cluster.num_servers
        record = master.migrate_tablet(stats.table, stats.tablet_id, target)
        assert record.committed
        assert record.source == source
        assert record.target == target
        assert cluster.server_index_for_tablet(stats.tablet_id) == target
        # The hand-off was priced on the durability ledger, not the
        # paper-facing one.
        counter = indexer.emulator.counter
        assert counter.durability_count(OpKind.MIGRATION) == 1
        assert OpKind.MIGRATION not in counter.counts

    def test_migration_ships_runs_and_log_tail(self):
        indexer, cluster, master = build_cluster()
        drive_updates(cluster)
        stats = max(indexer.tablet_stats(), key=lambda s: s.row_count)
        target = (cluster.server_index_for_tablet(stats.tablet_id) + 1) % 4
        record = master.migrate_tablet(stats.table, stats.tablet_id, target)
        # freeze+flush moved the memtable into a run before the hand-off.
        assert record.rows_shipped >= stats.row_count
        table = indexer.emulator.table(stats.table)
        tablet = table.find_tablet(stats.tablet_id)
        assert len(tablet.runs) >= 1
        assert len(tablet.log) == 0

    @pytest.mark.parametrize("crash_point", [CRASH_AFTER_FLUSH, CRASH_AFTER_HANDOFF])
    def test_mid_flight_crash_aborts_without_moving(self, crash_point):
        indexer, cluster, master = build_cluster()
        drive_updates(cluster)
        stats = max(indexer.tablet_stats(), key=lambda s: s.simulated_seconds)
        source = cluster.server_index_for_tablet(stats.tablet_id)
        target = (source + 1) % cluster.num_servers
        record = master.migrate_tablet(
            stats.table, stats.tablet_id, target, crash_point=crash_point
        )
        assert not record.committed
        assert record.crash_point == crash_point
        assert cluster.server_index_for_tablet(stats.tablet_id) == source
        if crash_point == CRASH_AFTER_FLUSH:
            # Crashed before the hand-off: nothing shipped, nothing charged.
            assert record.rows_shipped == 0

    def test_invalid_migrations_rejected(self):
        indexer, cluster, master = build_cluster()
        drive_updates(cluster)
        stats = indexer.tablet_stats()[0]
        source = cluster.server_index_for_tablet(stats.tablet_id)
        with pytest.raises(ConfigurationError):
            master.migrate_tablet(stats.table, stats.tablet_id, source)
        with pytest.raises(ConfigurationError):
            master.migrate_tablet(stats.table, stats.tablet_id, 99)
        with pytest.raises(ConfigurationError):
            master.migrate_tablet(stats.table, "location/tablet-9999", 0)
        with pytest.raises(ConfigurationError):
            master.migrate_tablet(
                stats.table, stats.tablet_id, source, crash_point="bogus"
            )


class TestReplication:
    def test_replica_serves_identical_results(self):
        indexer, cluster, master = build_cluster()
        drive_updates(cluster)
        spatial = indexer.spatial_table.table
        tablet = max(spatial.tablets(), key=lambda t: t.row_count)
        primary = cluster.server_index_for_tablet(tablet.tablet_id)
        replica = (primary + 1) % cluster.num_servers
        record = master.replicate_tablet(spatial.name, tablet.tablet_id, replica)
        assert record is not None
        assert cluster.routing.replica_counts() == {tablet.tablet_id: 2}
        # Registering the same replica twice is a no-op.
        assert master.replicate_tablet(spatial.name, tablet.tablet_id, replica) is None

    def test_replica_counts_feed_contention(self):
        indexer, cluster, master = build_cluster()
        drive_updates(cluster)
        assert cluster.contention is not None
        assert cluster.contention.replica_counts is not None
        assert cluster.contention.replica_counts() == master.replica_counts()
        skew = indexer.emulator.tablet_skew()
        assert skew.hot_read_tablet is not None
        before = skew.blended_share
        adjusted = skew.replica_adjusted_share({skew.hot_read_tablet: 2})
        assert adjusted < before

    def test_replica_on_dead_server_rejected(self):
        indexer, cluster, master = build_cluster()
        drive_updates(cluster)
        cluster.fail_server(2)
        spatial = indexer.spatial_table.table
        tablet = spatial.tablets()[0]
        with pytest.raises(ConfigurationError):
            master.replicate_tablet(spatial.name, tablet.tablet_id, 2)


class TestRebalance:
    def test_rebalance_reduces_imbalance(self):
        # Pin every tablet onto one server to fabricate the worst case.
        indexer, cluster, master = build_cluster(num_servers=4)
        drive_updates(cluster)
        for stats in indexer.tablet_stats():
            cluster.routing.assign(stats.tablet_id, 0)
        before = master._imbalance(master.server_loads())
        report = master.rebalance()
        assert report.migrations  # it acted
        assert report.imbalance_after < report.imbalance_before
        assert master._imbalance(master.server_loads()) < before

    def test_rebalance_is_idempotent_when_balanced(self):
        indexer, cluster, master = build_cluster()
        drive_updates(cluster)
        master.rebalance()
        settled = master.rebalance()
        assert settled.actions == 0
        assert settled.imbalance_before == settled.imbalance_after

    def test_rebalance_replicates_read_hot_tablet(self):
        indexer, cluster, master = build_cluster(
            num_servers=4, replicate_read_share=0.05, max_replicas=3
        )
        drive_updates(cluster)
        # Concentrate reads on one spatial tablet.
        from repro.workload.queries import NNQuery
        from repro.geometry.point import Point

        queries = [NNQuery(location=Point(15.0, 15.0), k=5) for _ in range(60)]
        cluster.submit_query_batch(queries)
        report = master.rebalance()
        assert report.replications
        counts = master.replica_counts()
        assert counts and max(counts.values()) <= 3

    def test_master_requires_sharded_backend(self):
        class Flat:
            pass

        indexer = uniform_leader_indexer(50, seed=3)
        cluster = ServerCluster(indexer, num_servers=2)
        cluster.indexer = type(
            "Facade", (), {"emulator": Flat(), "indexer": None}
        )()
        with pytest.raises(ConfigurationError):
            TabletMaster(cluster)

    def test_master_options_validation(self):
        with pytest.raises(ConfigurationError):
            MasterOptions(imbalance_threshold=0.5)
        with pytest.raises(ConfigurationError):
            MasterOptions(replicate_read_share=0.0)
        with pytest.raises(ConfigurationError):
            MasterOptions(max_replicas=0)
        with pytest.raises(ConfigurationError):
            MasterOptions(max_migrations_per_round=-1)

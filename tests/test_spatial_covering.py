"""Tests for repro.spatial.covering."""

import pytest

from repro.errors import SpatialError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.spatial.cell import CellId
from repro.spatial.covering import (
    coalesce_ranges,
    cover_box,
    cover_circle,
    level_for_resolution,
)

WORLD = BoundingBox(0.0, 0.0, 100.0, 100.0)


class TestCoverBox:
    def test_whole_world_cover_at_level_one(self):
        cells = cover_box(WORLD, 1, WORLD)
        assert len(cells) == 4

    def test_small_region_covered_by_one_cell(self):
        region = BoundingBox(10.0, 10.0, 11.0, 11.0)
        cells = cover_box(region, 3, WORLD)
        assert len(cells) == 1
        assert cells[0].to_box(WORLD).contains_box(region)

    def test_cover_contains_every_region_corner(self):
        region = BoundingBox(20.0, 30.0, 55.0, 70.0)
        cells = cover_box(region, 4, WORLD)
        for corner in region.corners():
            assert any(cell.to_box(WORLD).contains_point(corner) for cell in cells)

    def test_cover_cells_all_intersect_region(self):
        region = BoundingBox(20.0, 30.0, 55.0, 70.0)
        for cell in cover_box(region, 4, WORLD):
            assert cell.to_box(WORLD).intersects(region)

    def test_cells_sorted_by_position(self):
        region = BoundingBox(0.0, 0.0, 60.0, 60.0)
        cells = cover_box(region, 3, WORLD)
        positions = [cell.pos for cell in cells]
        assert positions == sorted(positions)

    def test_invalid_level_rejected(self):
        with pytest.raises(SpatialError):
            cover_box(WORLD, -1, WORLD)


class TestCoverCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(SpatialError):
            cover_circle(Point(50.0, 50.0), -1.0, 3, WORLD)

    def test_circle_cover_subset_of_box_cover(self):
        center = Point(50.0, 50.0)
        radius = 20.0
        circle_cells = set(cover_circle(center, radius, 4, WORLD))
        box_cells = set(
            cover_box(BoundingBox.from_center(center, radius, radius), 4, WORLD)
        )
        assert circle_cells <= box_cells

    def test_circle_cover_contains_center_cell(self):
        center = Point(42.0, 17.0)
        cells = cover_circle(center, 5.0, 5, WORLD)
        assert CellId.from_point(center, 5, WORLD) in cells

    def test_all_cells_within_radius(self):
        center = Point(50.0, 50.0)
        radius = 15.0
        for cell in cover_circle(center, radius, 5, WORLD):
            assert cell.distance_to_point(center, WORLD) <= radius


class TestCoalesceRanges:
    def test_empty_input(self):
        assert coalesce_ranges([]) == []

    def test_adjacent_cells_merge_into_one_range(self):
        cells = [CellId(4, pos) for pos in range(4, 9)]
        ranges = coalesce_ranges(cells)
        assert len(ranges) == 1
        start, end = ranges[0]
        assert start == CellId(4, 4).key_range()[0]
        assert end == CellId(4, 8).key_range()[1]

    def test_gap_produces_two_ranges(self):
        cells = [CellId(4, 1), CellId(4, 2), CellId(4, 9)]
        assert len(coalesce_ranges(cells)) == 2

    def test_mixed_levels_rejected(self):
        with pytest.raises(SpatialError):
            coalesce_ranges([CellId(3, 0), CellId(4, 0)])


class TestLevelForResolution:
    def test_coarse_resolution_gives_level_zero(self):
        assert level_for_resolution(1000.0, WORLD) == 0

    def test_resolution_maps_to_expected_level(self):
        # 100-unit world, 25-unit resolution -> 2^2 cells per side.
        assert level_for_resolution(25.0, WORLD) == 2

    def test_finer_resolution_gives_deeper_level(self):
        assert level_for_resolution(1.0, WORLD) > level_for_resolution(10.0, WORLD)

    def test_invalid_resolution_rejected(self):
        with pytest.raises(SpatialError):
            level_for_resolution(0.0, WORLD)

    def test_cells_at_chosen_level_are_fine_enough(self):
        resolution = 7.0
        level = level_for_resolution(resolution, WORLD)
        assert WORLD.width / (1 << level) <= resolution

"""Tests for the Affiliation Table wrapper."""

import pytest

from repro.bigtable.emulator import BigtableEmulator
from repro.errors import SchemaError
from repro.geometry.vector import Vector
from repro.tables.affiliation_table import AffiliationTable, LFRecord, Role


@pytest.fixture
def table():
    return AffiliationTable(BigtableEmulator())


class TestLFRecord:
    def test_follower_requires_leader_and_displacement(self):
        with pytest.raises(SchemaError):
            LFRecord(role=Role.FOLLOWER, timestamp=0.0)

    def test_leader_must_not_carry_follower_fields(self):
        with pytest.raises(SchemaError):
            LFRecord(role=Role.LEADER, timestamp=0.0, leader_id="x")

    def test_valid_records(self):
        leader = LFRecord(role=Role.LEADER, timestamp=1.0)
        follower = LFRecord(
            role=Role.FOLLOWER, timestamp=1.0, leader_id="L", displacement=Vector(1.0, 0.0)
        )
        assert leader.role is Role.LEADER
        assert follower.leader_id == "L"


class TestRoles:
    def test_unknown_object_has_no_role(self, table):
        assert table.role_of("nope") is None

    def test_set_leader(self, table):
        table.set_leader("L", timestamp=1.0)
        record = table.role_of("L")
        assert record.role is Role.LEADER
        assert record.timestamp == 1.0

    def test_set_follower(self, table):
        table.set_follower("F", "L", Vector(2.0, 3.0), timestamp=1.0)
        record = table.role_of("F")
        assert record.role is Role.FOLLOWER
        assert record.leader_id == "L"
        assert record.displacement == Vector(2.0, 3.0)

    def test_self_follow_rejected(self, table):
        with pytest.raises(SchemaError):
            table.set_follower("x", "x", Vector(0.0, 0.0), timestamp=0.0)
        with pytest.raises(SchemaError):
            table.add_follower("x", "x", Vector(0.0, 0.0), timestamp=0.0)

    def test_role_transition_follower_to_leader(self, table):
        table.set_follower("F", "L", Vector(1.0, 0.0), timestamp=1.0)
        table.set_leader("F", timestamp=2.0)
        assert table.role_of("F").role is Role.LEADER

    def test_batch_roles(self, table):
        table.set_leader("L", timestamp=1.0)
        table.set_follower("F", "L", Vector(1.0, 0.0), timestamp=1.0)
        roles = table.batch_roles(["L", "F", "missing"])
        assert set(roles) == {"L", "F"}
        assert roles["L"].role is Role.LEADER

    def test_leader_ids(self, table):
        table.set_leader("L1", timestamp=1.0)
        table.set_leader("L2", timestamp=1.0)
        table.set_follower("F", "L1", Vector(1.0, 0.0), timestamp=1.0)
        assert sorted(table.leader_ids()) == ["L1", "L2"]

    def test_age_lf_records(self, table):
        table.set_leader("L", timestamp=1.0)
        moved = table.age_lf_records(cutoff_timestamp=10.0)
        assert moved == 1


class TestFollowerInfo:
    def test_add_and_list_followers(self, table):
        table.add_follower("L", "F1", Vector(1.0, 0.0), timestamp=1.0)
        table.add_follower("L", "F2", Vector(0.0, 1.0), timestamp=1.0)
        followers = table.followers_of("L")
        assert followers == {"F1": Vector(1.0, 0.0), "F2": Vector(0.0, 1.0)}

    def test_followers_of_unknown_leader_is_empty(self, table):
        assert table.followers_of("nobody") == {}

    def test_remove_follower(self, table):
        table.add_follower("L", "F1", Vector(1.0, 0.0), timestamp=1.0)
        assert table.remove_follower("L", "F1")
        assert not table.remove_follower("L", "F1")
        assert table.followers_of("L") == {}

    def test_batch_followers(self, table):
        table.add_follower("L1", "F1", Vector(1.0, 0.0), timestamp=1.0)
        table.add_follower("L2", "F2", Vector(0.0, 1.0), timestamp=1.0)
        info = table.batch_followers(["L1", "L2"])
        assert info["L1"] == {"F1": Vector(1.0, 0.0)}
        assert info["L2"] == {"F2": Vector(0.0, 1.0)}

    def test_clear_followers(self, table):
        table.add_follower("L", "F1", Vector(1.0, 0.0), timestamp=1.0)
        table.add_follower("L", "F2", Vector(0.0, 1.0), timestamp=1.0)
        assert table.clear_followers("L") == 2
        assert table.followers_of("L") == {}
        assert table.clear_followers("L") == 0

    def test_batch_apply(self, table):
        table.set_leader("L1", timestamp=0.0)
        table.set_leader("L2", timestamp=0.0)
        table.add_follower("L2", "F1", Vector(1.0, 0.0), timestamp=0.0)
        # Merge L2 (and its follower F1) into L1.
        lf_updates = [
            ("L2", LFRecord(Role.FOLLOWER, 1.0, "L1", Vector(2.0, 0.0))),
            ("F1", LFRecord(Role.FOLLOWER, 1.0, "L1", Vector(3.0, 0.0))),
        ]
        follower_updates = [
            ("L1", "L2", Vector(2.0, 0.0)),
            ("L1", "F1", Vector(3.0, 0.0)),
        ]
        follower_deletes = [("L2", "F1")]
        table.batch_apply(lf_updates, follower_updates, follower_deletes, timestamp=1.0)
        assert table.role_of("L2").leader_id == "L1"
        assert table.role_of("F1").leader_id == "L1"
        assert set(table.followers_of("L1")) == {"L2", "F1"}
        assert table.followers_of("L2") == {}
        assert table.object_count() >= 3

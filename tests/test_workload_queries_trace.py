"""Tests for the query workloads and trace record/replay."""

import pytest

from repro.errors import WorkloadError
from repro.geometry.bbox import BoundingBox
from repro.workload.generator import RoadNetworkWorkload, WorkloadConfig
from repro.workload.queries import HistoryQueryWorkload, NNQueryWorkload
from repro.workload.trace import Trace, record_trace

REGION = BoundingBox(0.0, 0.0, 100.0, 100.0)


class TestNNQueryWorkload:
    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            NNQueryWorkload(REGION, k=0)
        with pytest.raises(WorkloadError):
            NNQueryWorkload(REGION, range_limit=0.0)

    def test_queries_inside_region(self):
        workload = NNQueryWorkload(REGION, k=5, seed=1)
        for query in workload.batch(50):
            assert REGION.contains_point(query.location)
            assert query.k == 5

    def test_batch_size_validated(self):
        with pytest.raises(WorkloadError):
            NNQueryWorkload(REGION).batch(0)

    def test_range_limit_propagated(self):
        workload = NNQueryWorkload(REGION, k=3, range_limit=25.0)
        assert workload.next_query().range_limit == 25.0


class TestHistoryQueryWorkload:
    def test_needs_object_ids(self):
        with pytest.raises(WorkloadError):
            HistoryQueryWorkload([], REGION)

    def test_invalid_fractions(self):
        with pytest.raises(WorkloadError):
            HistoryQueryWorkload(["a"], REGION, region_fraction=0.0)
        with pytest.raises(WorkloadError):
            HistoryQueryWorkload(["a"], REGION, object_query_probability=2.0)

    def test_object_queries_only(self):
        workload = HistoryQueryWorkload(["a", "b"], REGION, object_query_probability=1.0)
        for query in workload.batch(20):
            assert query.object_id in ("a", "b")
            assert query.region is None

    def test_region_queries_only(self):
        workload = HistoryQueryWorkload(["a"], REGION, object_query_probability=0.0)
        for query in workload.batch(20):
            assert query.object_id is None
            assert REGION.contains_box(query.region)

    def test_time_window_propagated(self):
        workload = HistoryQueryWorkload(["a"], REGION, object_query_probability=1.0)
        query = workload.next_query(start_time=1.0, end_time=5.0)
        assert query.start_time == 1.0
        assert query.end_time == 5.0


class TestTrace:
    def _small_workload(self):
        return RoadNetworkWorkload(
            WorkloadConfig(
                num_objects=10,
                map_size=100.0,
                block_size=25.0,
                min_update_interval_s=1.0,
                max_update_interval_s=1.0,
                seed=4,
            )
        )

    def test_record_trace_orders_messages(self):
        trace = record_trace(self._small_workload(), duration_s=5.0)
        assert len(trace) > 0
        timestamps = [m.timestamp for m in trace]
        assert timestamps == sorted(timestamps)

    def test_trace_requires_tuple(self):
        with pytest.raises(WorkloadError):
            Trace(messages=["not", "a", "tuple"])

    def test_object_ids_and_duration(self):
        trace = record_trace(self._small_workload(), duration_s=5.0)
        assert len(trace.object_ids()) == 10
        assert trace.duration() >= 0.0

    def test_save_and_load_round_trip(self, tmp_path):
        trace = record_trace(self._small_workload(), duration_s=5.0)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        assert loaded.messages[0] == trace.messages[0]
        assert loaded.messages[-1] == trace.messages[-1]

    def test_empty_trace(self):
        trace = Trace.from_messages([])
        assert len(trace) == 0
        assert trace.duration() == 0.0
        assert trace.object_ids() == []

"""Integration-level tests of the MoistIndexer facade."""

import pytest

from repro.core.moist import MoistIndexer
from repro.core.update import UpdateOutcome
from repro.errors import QueryError
from repro.geometry.point import Point

from helpers import make_update


class TestFacadeBasics:
    def test_default_construction(self):
        indexer = MoistIndexer()
        assert indexer.object_count == 0
        assert indexer.school_count == 0
        assert indexer.simulated_seconds == 0.0

    def test_tables_created_with_prefix(self, small_config):
        indexer = MoistIndexer(small_config, table_prefix="x_")
        names = indexer.emulator.table_names()
        assert "x_location" in names
        assert "x_spatial_index" in names
        assert "x_affiliation" in names

    def test_flag_can_be_disabled(self, small_config):
        indexer = MoistIndexer(small_config, enable_flag=False)
        assert indexer.flag is None
        indexer.update(make_update(1, 10.0, 10.0))
        # Queries still work through the default NN level.
        assert len(indexer.nearest_neighbors(Point(10.0, 10.0), 1)) == 1

    def test_simulated_time_accumulates(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0))
        first = indexer.simulated_seconds
        indexer.update(make_update(2, 20.0, 20.0))
        assert indexer.simulated_seconds > first


class TestLocationOf:
    def test_unknown_object_raises(self, indexer):
        with pytest.raises(QueryError):
            indexer.location_of("objMISSING")

    def test_leader_location(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, vx=2.0, vy=0.0, t=0.0))
        assert indexer.location_of("obj0000000001") == Point(10.0, 10.0)

    def test_leader_location_extrapolated(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, vx=2.0, vy=0.0, t=0.0))
        assert indexer.location_of("obj0000000001", at_time=3.0) == Point(16.0, 10.0)

    def test_follower_location_estimated_from_leader(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, vx=1.0, vy=0.0, t=0.0))
        indexer.update(make_update(2, 13.0, 10.0, vx=1.0, vy=0.0, t=0.0))
        indexer.run_clustering(now=0.0)
        estimated = indexer.location_of("obj0000000002", at_time=0.0)
        assert estimated.distance_to(Point(13.0, 10.0)) < 1e-6
        # And moves with the leader when extrapolated.
        later = indexer.location_of("obj0000000002", at_time=4.0)
        assert later.distance_to(Point(17.0, 10.0)) < 1e-6


class TestShedRatioLifecycle:
    def test_shedding_after_clustering(self, indexer):
        """End-to-end: two co-moving objects, cluster, then shed updates."""
        indexer.update(make_update(1, 10.0, 10.0, vx=1.0, vy=0.0, t=0.0))
        indexer.update(make_update(2, 12.0, 10.0, vx=1.0, vy=0.0, t=0.0))
        indexer.run_clustering(now=0.0)
        shed_before = indexer.update_stats.shed
        # Both objects keep co-moving for a few seconds.
        for t in (1.0, 2.0, 3.0):
            outcome_1 = indexer.update(make_update(1, 10.0 + t, 10.0, vx=1.0, vy=0.0, t=t))
            outcome_2 = indexer.update(make_update(2, 12.0 + t, 10.0, vx=1.0, vy=0.0, t=t))
            assert UpdateOutcome.SHED in (outcome_1.outcome, outcome_2.outcome)
        assert indexer.update_stats.shed > shed_before
        assert indexer.shed_ratio() > 0.0

    def test_update_many(self, indexer):
        messages = [make_update(i, 10.0 + i, 10.0) for i in range(5)]
        stats = indexer.update_many(messages)
        assert stats.total == 5
        assert indexer.object_count == 5


class TestArchiveAged:
    def test_archive_aged_counts(self, indexer):
        for t in range(4):
            indexer.update(make_update(1, 10.0 + t, 10.0, t=float(t)))
        aging = indexer.config.aging_interval_s
        first = indexer.archive_aged(now=aging + 10.0)
        assert first["aged_to_disk"] == 4
        assert first["archived"] == 0
        second = indexer.archive_aged(now=2 * aging + 20.0)
        assert second["archived"] == 4

    def test_archiver_registration_on_first_update(self, indexer):
        message = make_update(1, 10.0, 10.0)
        indexer.update(message)
        assert indexer.archiver.home_disk(message.object_id) is not None


class TestEndToEndScenario:
    def test_realistic_small_scenario(self, small_config):
        """A miniature end-to-end run exercising update, clustering, NN
        search, history and archiving together."""
        indexer = MoistIndexer(small_config)
        # A convoy of 5 objects moving east along y=50, plus one loner.
        for t in range(10):
            for index in range(5):
                indexer.update(
                    make_update(index, 10.0 + 2 * index + t, 50.0, vx=1.0, vy=0.0, t=float(t))
                )
            indexer.update(make_update(99, 90.0, 5.0, vx=0.0, vy=1.0, t=float(t)))
            indexer.run_due_clustering(now=float(t))

        # The convoy collapsed into few schools and shed updates.
        assert indexer.school_count < 6
        assert indexer.update_stats.shed > 0

        # NN query near the convoy returns convoy members first.
        results = indexer.nearest_neighbors(Point(20.0, 50.0), 3)
        assert len(results) == 3
        assert all(r.object_id != "obj0000000099" for r in results)

        # The loner is still individually queryable.
        loner = indexer.location_of("obj0000000099")
        assert loner.distance_to(Point(90.0, 5.0)) < 1e-6

        # History is available for every object.
        assert len(indexer.object_history("obj0000000000")) > 0

"""Tests for the PPP placement hash."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.archive.placement import PlacementHash
from repro.errors import ArchiveError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point

WORLD = BoundingBox(0.0, 0.0, 1000.0, 1000.0)


class TestConstruction:
    def test_needs_at_least_one_disk(self):
        with pytest.raises(ArchiveError):
            PlacementHash(num_disks=0)

    def test_negative_level_rejected(self):
        with pytest.raises(ArchiveError):
            PlacementHash(num_disks=4, locality_level=-1)


class TestPlacement:
    def test_deterministic(self):
        placement = PlacementHash(num_disks=8, world=WORLD)
        point = Point(123.0, 456.0)
        assert placement.disk_for("obj1", point) == placement.disk_for("obj1", point)

    def test_disk_in_range(self):
        placement = PlacementHash(num_disks=5, world=WORLD)
        rng = random.Random(3)
        for index in range(100):
            point = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            disk = placement.disk_for(f"obj{index}", point)
            assert 0 <= disk < 5

    def test_single_disk_everything_on_disk_zero(self):
        placement = PlacementHash(num_disks=1, world=WORLD)
        assert placement.disk_for("anything", Point(1.0, 1.0)) == 0

    def test_nearby_objects_concentrate_on_few_disks(self):
        """The initial-location component keeps a neighbourhood's objects on
        a small window of disks (spatial locality of the placement)."""
        placement = PlacementHash(num_disks=16, world=WORLD)
        rng = random.Random(5)
        nearby_disks = {
            placement.disk_for(
                f"obj{i}", Point(100.0 + rng.uniform(-5, 5), 100.0 + rng.uniform(-5, 5))
            )
            for i in range(50)
        }
        object_only = PlacementHash(num_disks=16, world=WORLD, use_initial_location=False)
        spread_disks = {
            object_only.disk_for(
                f"obj{i}", Point(100.0 + rng.uniform(-5, 5), 100.0 + rng.uniform(-5, 5))
            )
            for i in range(50)
        }
        assert len(nearby_disks) < len(spread_disks)

    def test_object_only_hash_balances_load(self):
        placement = PlacementHash(num_disks=4, world=WORLD, use_initial_location=False)
        counts = [0, 0, 0, 0]
        for index in range(400):
            counts[placement.disk_for(f"obj{index}", Point(0.0, 0.0))] += 1
        assert min(counts) > 50

    @given(st.integers(min_value=1, max_value=32), st.text(min_size=1, max_size=12))
    def test_disk_always_in_range_property(self, num_disks, object_id):
        placement = PlacementHash(num_disks=num_disks, world=WORLD)
        disk = placement.disk_for(object_id, Point(500.0, 500.0))
        assert 0 <= disk < num_disks

    def test_stable_hash_is_process_independent(self):
        # blake2b of a fixed string must not change between runs.
        assert PlacementHash._stable_hash("obj1") == PlacementHash._stable_hash("obj1")
        assert PlacementHash._stable_hash("obj1") != PlacementHash._stable_hash("obj2")

"""Tests for the static/dynamic clustering baselines and the no-school build."""

import pytest

from repro.baselines.dynamic_clustering import DynamicClusteringIndex
from repro.baselines.no_school import build_no_school_indexer
from repro.baselines.static_clustering import StaticClusteringIndex, default_prototypes
from repro.core.config import MoistConfig
from repro.core.moist import MoistIndexer
from repro.errors import ConfigurationError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage

CONFIG = MoistConfig(
    world=BoundingBox(0.0, 0.0, 100.0, 100.0),
    storage_level=8,
    clustering_cell_level=2,
    deviation_threshold=5.0,
)


def message(object_id, x, y, vx=1.0, vy=0.0, t=0.0):
    return UpdateMessage(object_id, Point(x, y), Vector(vx, vy), t)


class TestStaticClustering:
    def test_prototypes_cover_directions(self):
        prototypes = default_prototypes(max_speed=2.0, directions=4)
        assert len(prototypes) == 9  # zero + 2 speeds x 4 directions
        with pytest.raises(ConfigurationError):
            default_prototypes(directions=0)

    def test_every_update_writes_location(self):
        index = StaticClusteringIndex(CONFIG)
        for t in range(5):
            index.update(message("a", 10.0 + t, 10.0, t=float(t)))
        assert index.stats.updates == 5
        assert len(index.location_table.recent_history("a")) == 5

    def test_reclassification_counted_on_pattern_change(self):
        index = StaticClusteringIndex(CONFIG)
        index.update(message("a", 10.0, 10.0, vx=2.0, vy=0.0, t=0.0))
        index.update(message("a", 11.0, 10.0, vx=2.0, vy=0.0, t=1.0))
        index.update(message("a", 12.0, 10.0, vx=-2.0, vy=0.0, t=2.0))
        assert index.stats.reclassifications == 2  # initial + the U-turn
        assert index.prototype_of("a") is not None
        assert 0.0 < index.stats.reclassification_ratio <= 1.0

    def test_simulated_time_grows_linearly_with_updates(self):
        index = StaticClusteringIndex(CONFIG)
        index.update(message("a", 10.0, 10.0))
        single = index.simulated_seconds
        for t in range(1, 10):
            index.update(message("a", 10.0 + t, 10.0, t=float(t)))
        assert index.simulated_seconds == pytest.approx(10 * single, rel=0.3)


class TestDynamicClustering:
    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            DynamicClusteringIndex(CONFIG, cluster_radius=0.0)

    def test_nearby_objects_join_one_cluster(self):
        index = DynamicClusteringIndex(CONFIG, cluster_radius=10.0)
        index.update(message("a", 10.0, 10.0))
        index.update(message("b", 12.0, 10.0))
        assert index.cluster_count() == 1
        assert index.cluster_of("a") == index.cluster_of("b")

    def test_far_objects_get_separate_clusters(self):
        index = DynamicClusteringIndex(CONFIG, cluster_radius=10.0)
        index.update(message("a", 10.0, 10.0))
        index.update(message("b", 90.0, 90.0))
        assert index.cluster_count() == 2

    def test_departing_object_triggers_reclustering(self):
        index = DynamicClusteringIndex(CONFIG, cluster_radius=5.0)
        index.update(message("a", 10.0, 10.0, vx=0.0, vy=0.0, t=0.0))
        index.update(message("b", 11.0, 10.0, vx=0.0, vy=0.0, t=0.0))
        index.update(message("b", 60.0, 60.0, vx=0.0, vy=0.0, t=1.0))
        assert index.stats.reclusterings == 1
        assert index.cluster_of("a") != index.cluster_of("b")

    def test_every_update_still_writes_location_and_cluster(self):
        index = DynamicClusteringIndex(CONFIG, cluster_radius=10.0)
        for t in range(5):
            index.update(message("a", 10.0 + 0.1 * t, 10.0, vx=0.1, t=float(t)))
        assert index.stats.updates == 5
        assert index.stats.cluster_writes >= 5
        assert index.simulated_seconds > 0


class TestNoSchoolBaseline:
    def test_schools_disabled(self):
        indexer = build_no_school_indexer(CONFIG)
        assert indexer.config.enable_schools is False
        assert indexer.config.deviation_threshold == 0.0

    def test_every_object_stays_a_leader(self):
        indexer = build_no_school_indexer(CONFIG)
        for i in range(5):
            indexer.update(message(f"obj{i}", 10.0 + i, 10.0))
        assert indexer.school_count == 5

    def test_comparison_moist_sheds_but_no_school_does_not(self):
        """The central claim: with schools MOIST writes less for the same
        co-moving workload."""
        with_schools = MoistIndexer(CONFIG)
        without_schools = build_no_school_indexer(CONFIG)
        stream = []
        for t in range(8):
            for index in range(4):
                stream.append(
                    message(f"obj{index}", 10.0 + 2 * index + t, 50.0, vx=1.0, t=float(t))
                )
        for update in stream:
            with_schools.update(update)
            without_schools.update(update)
            if update.timestamp == 0.0:
                with_schools.run_clustering(now=0.0)
        assert with_schools.update_stats.shed > 0
        assert without_schools.update_stats.shed == 0
        assert with_schools.simulated_seconds < without_schools.simulated_seconds

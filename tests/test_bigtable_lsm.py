"""Tests for the LSM primitives: commit log, SSTables, flush, compaction,
merged reads and the durability ledger."""

import pytest

from repro.bigtable.cost import CostModel, OpCounter, OpKind
from repro.bigtable.lsm import (
    MEMTABLE_SOURCE,
    TOMBSTONE,
    BloomFilter,
    CommitLog,
    SSTable,
)
from repro.bigtable.table import ColumnFamily, Table
from repro.bigtable.tablet import TabletOptions
from repro.errors import ConfigurationError

LSM = TabletOptions(
    split_threshold=16,
    merge_threshold=6,
    group_commit_size=8,
    memtable_flush_rows=8,
    compaction_max_runs=3,
)


def make_table(options=LSM, name="t"):
    return Table(name, [ColumnFamily("f", max_versions=2)], options=options)


def fill(table, count, prefix="k", base=0):
    for index in range(count):
        table.write(f"{prefix}{index:04d}", "f", "q", base + index, float(index))


def latest_values(table):
    return {
        key: row["f"]["q"][0].value
        for key, row in table.scan()
        if row.get("f", {}).get("q")
    }


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = [f"key-{i}" for i in range(500)]
        bloom = BloomFilter(keys)
        assert all(bloom.might_contain(key) for key in keys)

    def test_mostly_rejects_absent_keys(self):
        bloom = BloomFilter([f"key-{i}" for i in range(500)])
        false_positives = sum(
            1 for i in range(500) if bloom.might_contain(f"other-{i}")
        )
        assert false_positives < 100  # ~2 probes over 8 bits/key: well under 20%

    def test_empty_filter(self):
        bloom = BloomFilter([])
        assert not bloom.might_contain("anything")


class TestSSTable:
    def run(self):
        keys = [f"k{i:02d}" for i in range(10)]
        return SSTable("run-0", keys, list(range(10)), max_seqno=10)

    def test_get_and_range_metadata(self):
        run = self.run()
        assert len(run) == 10
        assert run.min_key == "k00" and run.max_key == "k09"
        assert run.get("k03") == 3
        assert run.get("absent") is None

    def test_scan_bounds(self):
        run = self.run()
        assert [k for k, _ in run.scan("k02", "k05")] == ["k02", "k03", "k04"]

    def test_slice_shares_arrays_and_id(self):
        run = self.run()
        left = run.slice(None, "k05")
        right = run.slice("k05", None)
        assert len(left) == 5 and len(right) == 5
        assert left.run_id == right.run_id == run.run_id
        assert left.get("k04") == 4 and left.get("k07") is None
        assert right.get("k07") == 7 and right.get("k04") is None

    def test_coalesce_rejoins_adjacent_slices(self):
        run = self.run()
        left = run.slice(None, "k05")
        right = run.slice("k05", None)
        rejoined = left.try_coalesce(right)
        assert rejoined is not None and len(rejoined) == 10
        assert rejoined.get("k00") == 0 and rejoined.get("k09") == 9

    def test_coalesce_refuses_disjoint_or_foreign(self):
        run = self.run()
        other = SSTable("run-1", ["z1"], [1], max_seqno=11)
        assert run.slice(None, "k03").try_coalesce(run.slice("k05", None)) is None
        assert run.try_coalesce(other) is None


class TestCommitLog:
    def test_split_preserves_order(self):
        log = CommitLog()
        for seq, key in enumerate(["b", "d", "a", "c", "b"]):
            log.append((seq, "w", key, "f", "q", seq, 0.0))
        upper = log.split_off("c")
        assert [record[2] for record in log.records] == ["b", "a", "b"]
        assert [record[2] for record in upper.records] == ["d", "c"]
        assert [record[0] for record in upper.records] == [1, 3]

    def test_absorb_restores_seqno_order(self):
        left, right = CommitLog(), CommitLog()
        left.append((0, "w", "a", "f", "q", 0, 0.0))
        right.append((1, "w", "z", "f", "q", 1, 0.0))
        left.append((2, "w", "b", "f", "q", 2, 0.0))
        left.absorb(right)
        assert [record[0] for record in left.records] == [0, 1, 2]
        assert len(right) == 0


class TestFlushAndMergedReads:
    def test_flush_moves_rows_into_a_run(self):
        table = make_table()
        fill(table, 5)
        flushed = table.flush_memtables()
        assert flushed == 5
        (tablet,) = table.tablets()
        assert len(tablet.rows) == 0
        assert table.run_count() == 1
        assert table.log_record_count() == 0  # flush truncates the log
        # Reads span the run transparently.
        assert table.row_count() == 5
        assert table.read_latest("k0003", "f", "q").value == 3
        assert latest_values(table) == {f"k{i:04d}": i for i in range(5)}

    def test_overwrite_pulls_row_back_into_memtable(self):
        table = make_table()
        fill(table, 5)
        table.flush_memtables()
        table.write("k0002", "f", "q", 99, 10.0)
        (tablet,) = table.tablets()
        assert len(tablet.rows) == 1  # only the overwritten row came back
        assert table.read_latest("k0002", "f", "q").value == 99
        assert table.row_count() == 5
        # The run's frozen copy is shadowed, not modified.
        assert tablet.runs[0].get("k0002").families["f"]["q"][0].value == 2

    def test_auto_flush_and_compaction_keep_run_count_tiered(self):
        table = make_table()
        fill(table, 120)
        assert table.run_count() <= 3 * table.tablet_count()
        assert latest_values(table) == {f"k{i:04d}": i for i in range(120)}

    def test_major_compaction_collapses_to_one_run_per_tablet(self):
        table = make_table()
        fill(table, 40)
        table.flush_memtables()
        table.compact_runs(major=True)
        for tablet in table.tablets():
            assert len(tablet.runs) <= 1
        assert latest_values(table) == {f"k{i:04d}": i for i in range(40)}

    def test_point_reads_prefer_newest_version_across_runs(self):
        table = make_table(
            TabletOptions(memtable_flush_rows=4, compaction_max_runs=10)
        )
        for round_base in (0, 100, 200):
            fill(table, 4, base=round_base)
            table.flush_memtables()
        assert table.run_count() >= 3
        for index in range(4):
            assert table.read_latest(f"k{index:04d}", "f", "q").value == 200 + index


class TestDurabilityLedger:
    def test_log_appends_charge_only_the_durability_ledger(self):
        table = make_table(TabletOptions())
        before = table.counter.snapshot()
        fill(table, 10)
        delta = table.counter.snapshot().delta(before)
        assert delta.durability_rows.get(OpKind.LOG_APPEND) == 10
        assert delta.durability_seconds > 0.0
        # The paper-facing ledger never sees durability kinds.
        assert OpKind.LOG_APPEND not in delta.counts
        assert delta.simulated_seconds == pytest.approx(
            delta.read_seconds + delta.write_seconds
        )

    def test_group_commit_batches_log_fsyncs(self):
        grouped = make_table(TabletOptions())
        with grouped.group_commit():
            fill(grouped, 10)
        solo = make_table(TabletOptions())
        fill(solo, 10)
        # Same records durably logged, far fewer fsyncs.
        assert grouped.counter.durability_rows_touched(OpKind.LOG_APPEND) == 10
        assert solo.counter.durability_count(OpKind.LOG_APPEND) == 10
        assert (
            grouped.counter.durability_count(OpKind.LOG_APPEND)
            < solo.counter.durability_count(OpKind.LOG_APPEND)
        )
        assert (
            grouped.counter.durability_seconds < solo.counter.durability_seconds
        )

    def test_record_durability_rejects_standard_kinds(self):
        counter = OpCounter(model=CostModel())
        with pytest.raises(ConfigurationError):
            counter.record_durability(OpKind.WRITE)
        with pytest.raises(ConfigurationError):
            counter.record(OpKind.LOG_APPEND)

    def test_write_amplification_tracks_flush_and_compaction(self):
        table = make_table(TabletOptions())
        fill(table, 20)
        assert table.write_amplification() == pytest.approx(1.0)  # log only
        table.flush_memtables()
        assert table.write_amplification() == pytest.approx(2.0)  # log + flush
        stats = table.tablet_stats()
        assert all(entry.write_amplification >= 1.0 for entry in stats)

    def test_disabled_commit_log_skips_logging(self):
        table = make_table(TabletOptions(commit_log_enabled=False))
        fill(table, 5)
        assert table.log_record_count() == 0
        assert table.counter.durability_seconds == 0.0

    def test_write_amplification_is_honest_with_log_disabled(self):
        table = make_table(
            TabletOptions(commit_log_enabled=False, memtable_flush_rows=4)
        )
        fill(table, 40)
        # Flushes rewrote rows even though nothing was logged: amplification
        # must reflect the physical writes, not fall back to 1.0.
        assert table.counter.durability_rows_touched(OpKind.COMPACTION_WRITE) > 0
        assert table.write_amplification() > 1.0

    def test_noop_cell_delete_never_pulls_run_rows_back(self):
        table = make_table(
            TabletOptions(memtable_flush_rows=1024, compaction_max_runs=8)
        )
        fill(table, 10)
        table.flush_memtables()
        for index in range(10):
            assert table.delete_cell(f"k{index:04d}", "f", "absent") is False
        (tablet,) = table.tablets()
        assert len(tablet.rows) == 0  # misses copied nothing into the memtable
        assert table.log_record_count() == 0


class TestSplitMergeWithRuns:
    def test_split_slices_runs_and_partitions_log(self):
        table = make_table(
            TabletOptions(
                split_threshold=16,
                merge_threshold=4,
                memtable_flush_rows=64,
                compaction_max_runs=8,
            )
        )
        fill(table, 10)
        table.flush_memtables()
        fill(table, 30, base=1000)  # overwrites + growth forces a split
        assert table.tablet_count() >= 2
        total_run_rows = sum(
            len(run) for tablet in table.tablets() for run in tablet.runs
        )
        assert total_run_rows == 10  # sliced, not copied or lost
        assert latest_values(table) == {f"k{i:04d}": 1000 + i for i in range(30)}
        # Per-tablet logs hold exactly their own key ranges.
        for tablet in table.tablets():
            end = None
            tablets = table.tablets()
            position = tablets.index(tablet)
            if position + 1 < len(tablets):
                end = tablets[position + 1].start_key
            for record in tablet.log.records:
                assert record[2] >= tablet.start_key
                if end is not None:
                    assert record[2] < end

    def test_merge_reunites_run_slices(self):
        options = TabletOptions(
            split_threshold=8, merge_threshold=6, memtable_flush_rows=64
        )
        table = make_table(options)
        fill(table, 12)
        table.flush_memtables()
        assert table.tablet_count() >= 2
        # Delete most rows so the tablets shrink below the merge threshold.
        for index in range(12):
            if index not in (0, 11):
                table.delete_row(f"k{index:04d}")
        table.batch_delete([])  # no-op; merges ran on the delete path already
        if table.tablet_count() == 1:
            (tablet,) = table.tablets()
            # The parent run's two slices coalesced back into one view.
            run_ids = [run.run_id for run in tablet.runs]
            assert len(run_ids) == len(set(run_ids))
        assert set(table.all_keys()) == {"k0000", "k0011"}


class TestScannerCacheWithRuns:
    def test_scan_sources_blocks_by_run(self):
        table = make_table(
            TabletOptions(memtable_flush_rows=1024, compaction_max_runs=8)
        )
        fill(table, 12)
        table.flush_memtables()
        fill(table, 6, base=500)  # first half now memtable-resident
        before = table.counter.snapshot()
        table.scan()
        delta = table.counter.snapshot().delta(before)
        # One scan RPC; all rows cold on first touch.
        assert delta.counts[OpKind.SCAN] == 1
        assert delta.rows[OpKind.SCAN] == 12
        before = table.counter.snapshot()
        table.scan()
        delta = table.counter.snapshot().delta(before)
        # Second scan: warm blocks from both the memtable and the run.
        assert delta.rows.get(OpKind.CACHE_READ) == 12
        assert delta.rows.get(OpKind.SCAN, 0) == 0

    def test_flush_evicts_memtable_blocks(self):
        table = make_table(
            TabletOptions(memtable_flush_rows=1024, compaction_max_runs=8)
        )
        fill(table, 8)
        table.scan()  # warm the memtable blocks
        table.flush_memtables()
        before = table.counter.snapshot()
        table.scan()
        delta = table.counter.snapshot().delta(before)
        # Rows now come from the (cold) run: scanned, not cache-read.
        assert delta.rows[OpKind.SCAN] == 8
        assert delta.rows.get(OpKind.CACHE_READ, 0) == 0

    def test_compaction_evicts_consumed_run_blocks(self):
        table = make_table(
            TabletOptions(memtable_flush_rows=1024, compaction_max_runs=8)
        )
        fill(table, 8)
        table.flush_memtables()
        table.scan()  # warm the run's blocks
        table.compact_runs(major=True)
        before = table.counter.snapshot()
        table.scan()
        delta = table.counter.snapshot().delta(before)
        assert delta.rows[OpKind.SCAN] == 8
        assert delta.rows.get(OpKind.CACHE_READ, 0) == 0


class TestOptionsValidation:
    def test_new_knobs_validate(self):
        with pytest.raises(ConfigurationError):
            TabletOptions(memtable_flush_rows=0)
        with pytest.raises(ConfigurationError):
            TabletOptions(compaction_max_runs=0)
        assert TabletOptions(memtable_flush_rows=None).memtable_flush_rows is None

    def test_tombstone_repr_and_identity(self):
        assert repr(TOMBSTONE) == "<TOMBSTONE>"
        assert MEMTABLE_SOURCE == "mem"

"""Tests for the sorted map underlying the BigTable emulator."""

from hypothesis import given, strategies as st

from repro.bigtable.sorted_map import SortedMap

keys = st.text(alphabet="abcdef0123456789", min_size=1, max_size=8)


class TestBasicOperations:
    def test_set_and_get(self):
        m = SortedMap()
        m.set("b", 2)
        assert m.get("b") == 2
        assert m.get("missing") is None
        assert m.get("missing", 7) == 7

    def test_overwrite_keeps_single_key(self):
        m = SortedMap()
        m.set("a", 1)
        m.set("a", 2)
        assert len(m) == 1
        assert m.get("a") == 2

    def test_delete(self):
        m = SortedMap()
        m.set("a", 1)
        assert m.delete("a")
        assert not m.delete("a")
        assert len(m) == 0

    def test_contains_and_len(self):
        m = SortedMap()
        assert "x" not in m
        m.set("x", 1)
        assert "x" in m
        assert len(m) == 1

    def test_clear(self):
        m = SortedMap()
        m.set("a", 1)
        m.set("b", 2)
        m.clear()
        assert len(m) == 0
        assert m.keys() == []

    def test_keys_are_sorted(self):
        m = SortedMap()
        for key in ["d", "a", "c", "b"]:
            m.set(key, key)
        assert m.keys() == ["a", "b", "c", "d"]

    def test_items_in_key_order(self):
        m = SortedMap()
        m.set("b", 2)
        m.set("a", 1)
        assert list(m.items()) == [("a", 1), ("b", 2)]


class TestScans:
    def _populated(self):
        m = SortedMap()
        for key in ["a", "b", "c", "d", "e"]:
            m.set(key, key.upper())
        return m

    def test_scan_full(self):
        m = self._populated()
        assert [k for k, _ in m.scan()] == ["a", "b", "c", "d", "e"]

    def test_scan_range_is_half_open(self):
        m = self._populated()
        assert [k for k, _ in m.scan("b", "d")] == ["b", "c"]

    def test_scan_with_limit(self):
        m = self._populated()
        assert [k for k, _ in m.scan(limit=2)] == ["a", "b"]

    def test_scan_start_between_keys(self):
        m = self._populated()
        assert [k for k, _ in m.scan("bb", "dd")] == ["c", "d"]

    def test_count_range(self):
        m = self._populated()
        assert m.count_range("b", "e") == 3
        assert m.count_range() == 5
        assert m.count_range("x", "z") == 0

    def test_first_last(self):
        m = self._populated()
        assert m.first_key() == "a"
        assert m.last_key() == "e"
        assert SortedMap().first_key() is None
        assert SortedMap().last_key() is None

    def test_floor_and_ceiling(self):
        m = self._populated()
        assert m.floor_key("c") == "c"
        assert m.floor_key("cz") == "c"
        assert m.floor_key("0") is None
        assert m.ceiling_key("c") == "c"
        assert m.ceiling_key("cz") == "d"
        assert m.ceiling_key("z") is None


class TestProperties:
    @given(st.dictionaries(keys, st.integers(), max_size=40))
    def test_matches_reference_dict(self, reference):
        m = SortedMap()
        for key, value in reference.items():
            m.set(key, value)
        assert m.keys() == sorted(reference)
        for key, value in reference.items():
            assert m.get(key) == value

    @given(st.lists(keys, max_size=40), st.lists(keys, max_size=20))
    def test_delete_matches_reference(self, inserts, deletes):
        m = SortedMap()
        reference = {}
        for key in inserts:
            m.set(key, key)
            reference[key] = key
        for key in deletes:
            assert m.delete(key) == (key in reference)
            reference.pop(key, None)
        assert m.keys() == sorted(reference)

    @given(st.dictionaries(keys, st.integers(), max_size=40), keys, keys)
    def test_scan_matches_reference(self, reference, low, high):
        if low > high:
            low, high = high, low
        m = SortedMap()
        for key, value in reference.items():
            m.set(key, value)
        expected = sorted(k for k in reference if low <= k < high)
        assert [k for k, _ in m.scan(low, high)] == expected
        assert m.count_range(low, high) == len(expected)


class TestIteratorAPI:
    def test_iter_keys_full_range(self):
        m = SortedMap()
        for key in ["d", "a", "c", "b"]:
            m.set(key, key)
        assert list(m.iter_keys()) == ["a", "b", "c", "d"]

    def test_iter_keys_bounded(self):
        m = SortedMap()
        for key in ["a", "b", "c", "d", "e"]:
            m.set(key, key)
        assert list(m.iter_keys("b", "e")) == ["b", "c", "d"]
        assert list(m.iter_keys(None, "c")) == ["a", "b"]
        assert list(m.iter_keys("c", None)) == ["c", "d", "e"]

    def test_key_at(self):
        m = SortedMap()
        for key in ["c", "a", "b"]:
            m.set(key, key)
        assert m.key_at(0) == "a"
        assert m.key_at(1) == "b"
        assert m.key_at(len(m) // 2) == "b"
        assert m.key_at(-1) == "c"

    def test_iter_keys_observes_buffered_inserts(self):
        # Keys still sitting in the unsorted write buffer must appear in
        # ordered iteration exactly like merged keys.
        m = SortedMap()
        m.set("b", 1)
        assert m.keys() == ["b"]  # force a merge
        m.set("a", 2)
        m.set("c", 3)
        assert list(m.iter_keys()) == ["a", "b", "c"]


class TestMemtableProperty:
    """The LSM-style write buffer must be invisible: under any interleaving
    of inserts, overwrites, deletes and ordered reads the map behaves like a
    plain dict whose keys are sorted on demand."""

    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("set"), keys, st.integers()),
                st.tuples(st.just("delete"), keys, st.integers()),
                st.tuples(st.just("scan"), keys, keys),
                st.tuples(st.just("keys"), keys, keys),
                st.tuples(st.just("floor"), keys, keys),
                st.tuples(st.just("ceiling"), keys, keys),
            ),
            max_size=60,
        )
    )
    def test_random_interleavings_match_reference(self, ops):
        m = SortedMap()
        reference = {}
        for op, a, b in ops:
            if op == "set":
                m.set(a, b)
                reference[a] = b
            elif op == "delete":
                assert m.delete(a) == (a in reference)
                reference.pop(a, None)
            elif op == "scan":
                low, high = min(a, b), max(a, b)
                expected = sorted(k for k in reference if low <= k < high)
                assert [k for k, _ in m.scan(low, high)] == expected
                assert list(m.iter_keys(low, high)) == expected
            elif op == "keys":
                assert m.keys() == sorted(reference)
            elif op == "floor":
                expected_floor = max((k for k in reference if k <= a), default=None)
                assert m.floor_key(a) == expected_floor
            elif op == "ceiling":
                expected_ceiling = min((k for k in reference if k >= a), default=None)
                assert m.ceiling_key(a) == expected_ceiling
            # Point invariants hold after every operation.
            assert len(m) == len(reference)
        assert m.keys() == sorted(reference)
        assert [v for _, v in m.items()] == [
            reference[k] for k in sorted(reference)
        ]

    @given(st.dictionaries(keys, st.integers(), max_size=40), keys)
    def test_split_off_with_buffered_inserts(self, reference, pivot):
        m = SortedMap()
        for key, value in reference.items():
            m.set(key, value)
        upper = m.split_off(pivot)
        assert m.keys() == sorted(k for k in reference if k < pivot)
        assert upper.keys() == sorted(k for k in reference if k >= pivot)
        # Both halves stay fully functional memtables after the split.
        m.set("0new", -1)
        upper.set("zz", -2)
        assert m.get("0new") == -1
        assert upper.get("zz") == -2

    @given(st.dictionaries(keys, st.integers(), max_size=30))
    def test_absorb_after_merges_buffers(self, reference):
        m = SortedMap()
        for key, value in reference.items():
            m.set(key, value)
        upper = m.split_off("8")
        m.absorb_after(upper)
        assert m.keys() == sorted(reference)
        assert len(upper) == 0

"""Tests for the Spatial Index Table wrapper."""

import pytest

from repro.bigtable.emulator import BigtableEmulator
from repro.errors import SchemaError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.spatial.cell import CellId
from repro.tables.spatial_index_table import SpatialIndexTable

WORLD = BoundingBox(0.0, 0.0, 100.0, 100.0)


@pytest.fixture
def table():
    return SpatialIndexTable(BigtableEmulator(), storage_level=8, world=WORLD)


class TestConfiguration:
    def test_invalid_storage_level(self):
        with pytest.raises(SchemaError):
            SpatialIndexTable(BigtableEmulator(), storage_level=0)

    def test_cell_and_row_key(self, table):
        point = Point(10.0, 20.0)
        cell = table.cell_for(point)
        assert cell.level == 8
        assert table.row_key_for(point) == cell.key()


class TestMutations:
    def test_add_and_lookup(self, table):
        point = Point(10.0, 20.0)
        cell = table.add("obj1", point, timestamp=1.0)
        objects = table.objects_in_cell(cell)
        assert objects == {"obj1": point}

    def test_remove(self, table):
        point = Point(10.0, 20.0)
        table.add("obj1", point, timestamp=1.0)
        assert table.remove("obj1", point)
        assert table.objects_in_cell(table.cell_for(point)) == {}

    def test_remove_from_cell(self, table):
        point = Point(10.0, 20.0)
        cell = table.add("obj1", point, timestamp=1.0)
        assert table.remove_from_cell("obj1", cell)
        assert not table.remove_from_cell("obj1", cell)

    def test_move_across_cells(self, table):
        old = Point(1.0, 1.0)
        new = Point(90.0, 90.0)
        table.add("obj1", old, timestamp=1.0)
        old_cell, new_cell = table.move("obj1", old, new, timestamp=2.0)
        assert old_cell != new_cell
        assert table.objects_in_cell(old_cell) == {}
        assert table.objects_in_cell(new_cell) == {"obj1": new}

    def test_move_within_same_cell_overwrites(self, table):
        old = Point(10.0, 10.0)
        new = Point(10.01, 10.01)
        table.add("obj1", old, timestamp=1.0)
        old_cell, new_cell = table.move("obj1", old, new, timestamp=2.0)
        assert old_cell == new_cell
        assert table.objects_in_cell(new_cell)["obj1"] == new

    def test_move_without_previous_location(self, table):
        old_cell, new_cell = table.move("obj1", None, Point(5.0, 5.0), timestamp=1.0)
        assert old_cell is None
        assert table.objects_in_cell(new_cell) == {"obj1": Point(5.0, 5.0)}

    def test_batch_remove(self, table):
        a = Point(10.0, 10.0)
        b = Point(20.0, 20.0)
        table.add("a", a, timestamp=1.0)
        table.add("b", b, timestamp=1.0)
        table.batch_remove([("a", a), ("b", b)])
        assert table.total_objects() == 0


class TestQueries:
    def test_objects_in_coarse_cell_aggregates_storage_rows(self, table):
        # Two nearby points that land in different storage cells but share a
        # coarse ancestor.
        a = Point(10.0, 10.0)
        b = Point(12.0, 11.0)
        table.add("a", a, timestamp=1.0)
        table.add("b", b, timestamp=1.0)
        coarse = table.cell_for(a).parent(4)
        objects = table.objects_in_cell(coarse)
        assert set(objects) == {"a", "b"}

    def test_objects_outside_cell_not_returned(self, table):
        table.add("far", Point(90.0, 90.0), timestamp=1.0)
        near_cell = table.cell_for(Point(5.0, 5.0)).parent(4)
        assert "far" not in table.objects_in_cell(near_cell)

    def test_count_in_cell(self, table):
        table.add("a", Point(10.0, 10.0), timestamp=1.0)
        table.add("b", Point(11.0, 11.0), timestamp=1.0)
        coarse = table.cell_for(Point(10.0, 10.0)).parent(3)
        assert table.count_in_cell(coarse) == 2

    def test_approximate_count_counts_rows(self, table):
        table.add("a", Point(10.0, 10.0), timestamp=1.0)
        table.add("b", Point(50.0, 50.0), timestamp=1.0)
        root = CellId(1, table.cell_for(Point(10.0, 10.0)).parent(1).pos)
        assert table.approximate_count_in_cell(root) >= 1

    def test_total_objects_and_row_count(self, table):
        table.add("a", Point(10.0, 10.0), timestamp=1.0)
        table.add("b", Point(90.0, 90.0), timestamp=1.0)
        assert table.total_objects() == 2
        assert table.row_count() == 2

    def test_categories_via_extra_families(self):
        table = SpatialIndexTable(
            BigtableEmulator(), storage_level=8, world=WORLD, extra_families=("bus",)
        )
        point = Point(10.0, 10.0)
        table.add("bus1", point, timestamp=1.0, family="bus")
        table.add("user1", point, timestamp=1.0)
        cell = table.cell_for(point)
        assert table.objects_in_cell(cell, family="bus") == {"bus1": point}
        assert table.objects_in_cell(cell) == {"user1": point}

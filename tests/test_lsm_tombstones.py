"""Tombstone correctness: deleted rows must never resurrect.

The failure mode under test is the classic LSM bug: a row's newest live
version sits in an old SSTable run, the delete lands in the memtable (or a
newer run), and some sequence of flushes, compactions, splits or merges
drops the tombstone while the old version survives — the row comes back
from the dead.  Every test drives a delete through a different
flush/compact/split/merge interleaving and asserts the row stays gone on
every read path (point reads, scans, batch reads, NN search)."""

from repro.bigtable.table import ColumnFamily, Table
from repro.bigtable.tablet import TabletOptions
from repro.experiments.common import uniform_leader_indexer
from repro.geometry.point import Point


def make_table(**overrides):
    defaults = dict(
        split_threshold=16,
        merge_threshold=6,
        memtable_flush_rows=1024,
        compaction_max_runs=8,
    )
    defaults.update(overrides)
    return Table("t", [ColumnFamily("f")], options=TabletOptions(**defaults))


def fill(table, count, base=0, prefix="k"):
    for index in range(count):
        table.write(f"{prefix}{index:04d}", "f", "q", base + index, float(index))


def assert_gone(table, key):
    assert table.read_latest(key, "f", "q", _charge=False) is None
    assert not table.row_exists(key, _charge=False)
    assert key not in table.all_keys()
    assert key not in dict(table.scan())
    assert key not in table.batch_read([key])


class TestDeleteFlushCompactScan:
    def test_delete_then_flush_then_scan(self):
        table = make_table()
        fill(table, 10)
        table.flush_memtables()          # k0003's live version is run-resident
        table.delete_row("k0003")        # tombstone in the memtable
        assert_gone(table, "k0003")
        table.flush_memtables()          # tombstone flushes into a newer run
        assert_gone(table, "k0003")

    def test_delete_flush_compact_never_resurrects(self):
        table = make_table()
        fill(table, 10)
        table.flush_memtables()
        table.delete_row("k0003")
        table.flush_memtables()
        table.compact_runs()             # size-tiered pass
        assert_gone(table, "k0003")
        table.compact_runs(major=True)   # tombstone GC
        assert_gone(table, "k0003")
        assert table.run_count() <= table.tablet_count()

    def test_major_compaction_garbage_collects_the_tombstone_itself(self):
        table = make_table()
        fill(table, 6)
        table.flush_memtables()
        table.delete_row("k0002")
        table.flush_memtables()
        table.compact_runs(major=True)
        (tablet,) = table.tablets()
        for run in tablet.runs:
            assert run.get("k0002") is None  # neither value nor tombstone
        assert_gone(table, "k0002")
        assert table.row_count() == 5

    def test_cell_delete_emptying_a_flushed_row_tombstones_it(self):
        table = make_table()
        fill(table, 6)
        table.flush_memtables()
        assert table.delete_cell("k0004", "f", "q") is True
        assert_gone(table, "k0004")
        table.flush_memtables()
        table.compact_runs(major=True)
        assert_gone(table, "k0004")

    def test_rewrite_after_delete_is_a_fresh_row(self):
        table = make_table()
        fill(table, 6)
        table.flush_memtables()
        table.delete_row("k0001")
        table.write("k0001", "f", "q", 777, 99.0)
        cell = table.read_latest("k0001", "f", "q", _charge=False)
        assert cell.value == 777
        versions = table.read_versions("k0001", "f", "q", _charge=False)
        assert [c.value for c in versions] == [777]  # old versions stay dead
        table.flush_memtables()
        table.compact_runs(major=True)
        assert [
            c.value
            for c in table.read_versions("k0001", "f", "q", _charge=False)
        ] == [777]


class TestAcrossSplitAndMerge:
    def test_tombstone_survives_a_tablet_split(self):
        table = make_table(split_threshold=8, memtable_flush_rows=1024)
        fill(table, 6)
        table.flush_memtables()
        table.delete_row("k0004")        # tombstone over a run-resident row
        fill(table, 20, base=100, prefix="m")  # grows past the split threshold
        assert table.tablet_count() >= 2
        assert_gone(table, "k0004")
        table.flush_memtables()
        table.compact_runs(major=True)
        assert_gone(table, "k0004")

    def test_tombstone_survives_a_tablet_merge(self):
        table = make_table(split_threshold=8, merge_threshold=6)
        fill(table, 12)
        table.flush_memtables()
        assert table.tablet_count() >= 2
        table.delete_row("k0005")
        assert_gone(table, "k0005")
        # Drain both tablets until they merge back together.
        for index in range(12):
            if index not in (0, 5, 11):
                table.delete_row(f"k{index:04d}")
        assert_gone(table, "k0005")
        table.flush_memtables()
        table.compact_runs(major=True)
        assert_gone(table, "k0005")
        assert set(table.all_keys()) == {"k0000", "k0011"}

    def test_row_counts_stay_consistent_through_the_lifecycle(self):
        table = make_table(memtable_flush_rows=8, compaction_max_runs=3)
        fill(table, 40)
        for index in range(0, 40, 4):
            table.delete_row(f"k{index:04d}")
        expected = {f"k{i:04d}" for i in range(40) if i % 4 != 0}
        assert table.row_count() == len(expected)
        assert set(table.all_keys()) == expected
        table.flush_memtables()
        table.compact_runs(major=True)
        assert table.row_count() == len(expected)
        assert set(table.all_keys()) == expected


class TestNeverResurrectThroughNN:
    def test_deleted_object_never_returns_from_nn_search(self):
        options = TabletOptions(memtable_flush_rows=64, compaction_max_runs=4)
        indexer = uniform_leader_indexer(300, seed=11, tablet_options=options)
        victim = indexer.nearest_neighbors(Point(500.0, 500.0), k=1)[0]
        # Remove the victim from all three tables the way the schema stores it.
        spatial = indexer.spatial_table
        record = indexer.location_table.latest(victim.object_id)
        spatial.remove(victim.object_id, record.location)
        indexer.location_table.delete_object(victim.object_id)

        def ids(k=20):
            return {
                n.object_id
                for n in indexer.nearest_neighbors(
                    Point(500.0, 500.0), k, range_limit=400.0
                )
            }

        assert victim.object_id not in ids()
        indexer.flush_storage()
        assert victim.object_id not in ids()
        indexer.compact_storage()
        assert victim.object_id not in ids()
        indexer.compact_storage(major=True)
        assert victim.object_id not in ids()
        report = indexer.recover_storage()
        assert report.tables  # the LSM plane actually ran
        assert victim.object_id not in ids()

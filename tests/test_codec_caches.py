"""Tests for the memoized spatial key codecs and covering caches (PR 3).

The caches must be pure accelerators: clearing them can never change a
result, cached values must be safe against caller mutation, and the bounded
memos must keep answering correctly after overflowing.
"""

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.spatial.cell import CellId, cell_codec_cache_clear
from repro.spatial.covering import (
    cover_box,
    cover_circle,
    covering_cache_clear,
    covering_cache_info,
)
from repro.spatial.hilbert import (
    hilbert_cache_clear,
    hilbert_cache_info,
    hilbert_index,
    hilbert_point,
)
from repro.errors import SpatialError

from repro.bigtable.emulator import BigtableEmulator
from repro.tables import spatial_index_table as sit_module
from repro.tables.spatial_index_table import SpatialIndexTable


class TestHilbertMemo:
    def test_results_stable_across_cache_clear(self):
        samples = [(4, x, y) for x in range(8) for y in range(8)]
        before = [hilbert_index(order, x, y) for order, x, y in samples]
        hilbert_cache_clear()
        after = [hilbert_index(order, x, y) for order, x, y in samples]
        assert before == after
        points = [hilbert_point(4, d) for d in range(64)]
        hilbert_cache_clear()
        assert points == [hilbert_point(4, d) for d in range(64)]

    def test_repeat_calls_hit_the_cache(self):
        hilbert_cache_clear()
        hilbert_index(6, 11, 17)
        hits_before = hilbert_cache_info()[0].hits
        hilbert_index(6, 11, 17)
        assert hilbert_cache_info()[0].hits == hits_before + 1

    def test_invalid_arguments_raise_every_call(self):
        for _ in range(2):  # errors must never be cached
            with pytest.raises(SpatialError):
                hilbert_index(2, 99, 0)
            with pytest.raises(SpatialError):
                hilbert_point(2, 999)


class TestCellCodecMemo:
    def test_key_codecs_stable_across_cache_clear(self):
        cells = [CellId(5, pos) for pos in range(0, 1024, 37)]
        keys = [cell.key() for cell in cells]
        ranges = [cell.key_range() for cell in cells]
        boxes = [cell.to_box() for cell in cells]
        cell_codec_cache_clear()
        assert keys == [cell.key() for cell in cells]
        assert ranges == [cell.key_range() for cell in cells]
        assert boxes == [cell.to_box() for cell in cells]

    def test_neighbor_lists_are_fresh_copies(self):
        cell = CellId(3, 21)
        first = cell.edge_neighbors()
        first.append("poison")
        assert "poison" not in cell.edge_neighbors()
        everyone = cell.all_neighbors()
        everyone.clear()
        assert cell.all_neighbors() != []

    def test_distance_matches_box_distance(self):
        world = BoundingBox(0.0, 0.0, 100.0, 100.0)
        cell = CellId(4, 123)
        for point in (Point(3.0, 97.0), Point(50.0, 50.0), Point(-5.0, 12.0)):
            assert cell.distance_to_point(point, world) == pytest.approx(
                cell.to_box(world).distance_to_point(point), abs=0.0
            )


class TestCoveringCache:
    def test_cover_box_stable_across_cache_clear(self):
        region = BoundingBox(0.1, 0.2, 0.4, 0.5)
        first = cover_box(region, 5)
        covering_cache_clear()
        assert cover_box(region, 5) == first

    def test_repeated_shape_hits_the_cache(self):
        covering_cache_clear()
        region = BoundingBox(0.25, 0.25, 0.75, 0.75)
        cover_box(region, 4)
        cover_box(region, 4)
        box_info = covering_cache_info()[0]
        assert box_info.hits >= 1
        assert box_info.misses >= 1

    def test_cached_results_are_fresh_lists(self):
        region = BoundingBox(0.0, 0.0, 0.3, 0.3)
        first = cover_box(region, 4)
        first.clear()
        assert cover_box(region, 4) != []

    def test_cover_circle_stable_across_cache_clear(self):
        first = cover_circle(Point(0.5, 0.5), 0.2, 5)
        covering_cache_clear()
        assert cover_circle(Point(0.5, 0.5), 0.2, 5) == first

    def test_invalid_arguments_raise_every_call(self):
        for _ in range(2):
            with pytest.raises(SpatialError):
                cover_box(BoundingBox(0.0, 0.0, 1.0, 1.0), 99)
            with pytest.raises(SpatialError):
                cover_circle(Point(0.0, 0.0), -1.0, 4)


class TestSpatialIndexCellMemo:
    def test_memo_returns_consistent_cells(self):
        table = SpatialIndexTable(BigtableEmulator(), storage_level=8)
        location = Point(0.31, 0.64)
        first = table.cell_for(location)
        assert table.cell_for(location) is first  # memo hit: same object
        assert first == CellId.from_point(location, 8)
        assert table.row_key_for(location) == first.key()

    def test_memo_survives_overflow_reset(self, monkeypatch):
        monkeypatch.setattr(sit_module, "_CELL_MEMO_MAX", 4)
        table = SpatialIndexTable(BigtableEmulator(), storage_level=8)
        points = [Point(i / 16.0, i / 16.0) for i in range(12)]
        expected = [CellId.from_point(point, 8) for point in points]
        assert [table.cell_for(point) for point in points] == expected
        assert len(table._cell_memo) <= 4 + 1
        # Overflow dropped entries, never correctness.
        assert [table.cell_for(point) for point in points] == expected

"""Determinism guard: identical seeded fault-plan load tests render
byte-identical reports.

The whole simulator is meant to be deterministic — simulated time, routing,
the master's decisions and the fault injector are all pure functions of
seeds and ledgers.  This suite locks that in end to end: any nondeterminism
creep (set iteration, wall-clock leakage, unordered dict hashing of
non-string keys) shows up here as a report diff.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.rebalance import hot_school_streams, rebalance_harness
from repro.server.loadtest import (
    CRASH_SERVER,
    MIGRATION_CRASH,
    REVIVE_SERVER,
    FaultEvent,
    FaultPlan,
)


def run_faulted_load_test(seed=31):
    """One full seeded run: skewed workload, fault plan, master control."""
    _, _, _, load_test = rebalance_harness(
        800, 4, balanced=True, seed=seed,
        fault_plan=FaultPlan.seeded(seed, num_batches=8, num_servers=4),
    )
    messages, queries = hot_school_streams(800, 2000, 0.8, seed=seed)
    return load_test.run_mixed_batches(messages, queries, batch_size=128)


class TestFaultPlan:
    def test_seeded_plans_are_reproducible(self):
        first = FaultPlan.seeded(7, num_batches=20, num_servers=5, crashes=2)
        second = FaultPlan.seeded(7, num_batches=20, num_servers=5, crashes=2)
        assert first.describe() == second.describe()
        assert [e for e in first.events] == [e for e in second.events]

    def test_events_validate(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at_batch=0, kind="meteor_strike")
        with pytest.raises(ConfigurationError):
            FaultEvent(at_batch=-1, kind=MIGRATION_CRASH)
        with pytest.raises(ConfigurationError):
            FaultEvent(at_batch=0, kind=CRASH_SERVER)  # needs a server
        event = FaultEvent(at_batch=3, kind=REVIVE_SERVER, server_id=1)
        assert "batch 3" in event.describe()

    def test_events_sorted_by_batch(self):
        plan = FaultPlan(
            [
                FaultEvent(at_batch=5, kind=CRASH_SERVER, server_id=0),
                FaultEvent(at_batch=1, kind=MIGRATION_CRASH),
            ]
        )
        assert [event.at_batch for event in plan.events] == [1, 5]
        assert len(plan.events_at(1)) == 1
        assert plan.events_at(2) == []

    def test_plan_requires_master(self):
        from repro.experiments.common import uniform_leader_indexer
        from repro.server.cluster import ServerCluster
        from repro.server.loadtest import LoadTest

        cluster = ServerCluster(uniform_leader_indexer(50, seed=1), num_servers=2)
        with pytest.raises(ConfigurationError):
            LoadTest(cluster, fault_plan=FaultPlan())
        with pytest.raises(ConfigurationError):
            LoadTest(cluster, rebalance_every=4)


class TestDeterminism:
    def test_identical_fault_plans_render_identical_reports(self):
        first = run_faulted_load_test().to_report()
        second = run_faulted_load_test().to_report()
        assert first == second

    def test_report_contains_control_plane_sections(self):
        result = run_faulted_load_test()
        report = result.to_report()
        assert report.startswith("load test report")
        assert "control plane:" in report
        assert "faults applied:" in report
        assert "timeline:" in report
        # The seeded plan fired something on this workload.
        assert result.faults_applied

    def test_different_seeds_render_different_reports(self):
        assert run_faulted_load_test(31).to_report() != run_faulted_load_test(
            32
        ).to_report()

"""Tests for the shared domain records."""

import pytest

from repro.errors import SchemaError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import (
    HistoryRecord,
    LocationRecord,
    NeighborResult,
    UpdateMessage,
    format_object_id,
)


class TestObjectIds:
    def test_format_is_zero_padded(self):
        assert format_object_id(7) == "obj0000000007"

    def test_formatted_ids_sort_numerically(self):
        ids = [format_object_id(n) for n in (2, 10, 1, 100)]
        assert sorted(ids) == [format_object_id(n) for n in (1, 2, 10, 100)]

    def test_negative_rejected(self):
        with pytest.raises(SchemaError):
            format_object_id(-1)


class TestLocationRecord:
    def test_requires_finite_coordinates(self):
        with pytest.raises(SchemaError):
            LocationRecord(Point(float("nan"), 0.0), Vector(0.0, 0.0), 0.0)
        with pytest.raises(SchemaError):
            LocationRecord(Point(0.0, 0.0), Vector(float("inf"), 0.0), 0.0)

    def test_extrapolation_moves_with_velocity(self):
        record = LocationRecord(Point(10.0, 10.0), Vector(1.0, -2.0), timestamp=5.0)
        extrapolated = record.extrapolated(8.0)
        assert extrapolated == Point(13.0, 4.0)

    def test_extrapolation_at_record_time_is_identity(self):
        record = LocationRecord(Point(10.0, 10.0), Vector(1.0, -2.0), timestamp=5.0)
        assert record.extrapolated(5.0) == record.location

    def test_extrapolation_backwards(self):
        record = LocationRecord(Point(10.0, 10.0), Vector(2.0, 0.0), timestamp=5.0)
        assert record.extrapolated(4.0) == Point(8.0, 10.0)


class TestUpdateMessage:
    def test_requires_object_id(self):
        with pytest.raises(SchemaError):
            UpdateMessage("", Point(0.0, 0.0), Vector(0.0, 0.0), 0.0)

    def test_requires_finite_values(self):
        with pytest.raises(SchemaError):
            UpdateMessage("x", Point(float("nan"), 0.0), Vector(0.0, 0.0), 0.0)

    def test_as_record_copies_fields(self):
        message = UpdateMessage("x", Point(1.0, 2.0), Vector(3.0, 4.0), 5.0)
        record = message.as_record()
        assert record.location == message.location
        assert record.velocity == message.velocity
        assert record.timestamp == message.timestamp

    def test_messages_are_hashable(self):
        a = UpdateMessage("x", Point(1.0, 2.0), Vector(0.0, 0.0), 0.0)
        b = UpdateMessage("x", Point(1.0, 2.0), Vector(0.0, 0.0), 0.0)
        assert len({a, b}) == 1


class TestResultRecords:
    def test_neighbor_result_fields(self):
        result = NeighborResult(
            object_id="a", location=Point(1.0, 1.0), distance=2.0, is_leader=False,
            leader_id="b",
        )
        assert result.leader_id == "b"
        assert not result.is_leader

    def test_history_record_fields(self):
        record = HistoryRecord(
            object_id="a", location=Point(1.0, 1.0), velocity=Vector(0.5, 0.5),
            timestamp=3.0,
        )
        assert record.timestamp == 3.0

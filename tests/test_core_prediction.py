"""Tests for trajectory prediction and Viterbi smoothing."""

import random

import pytest

from repro.core.prediction import LinearPredictor, ViterbiSmoother
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import LocationRecord

from helpers import make_update

WORLD = BoundingBox(0.0, 0.0, 100.0, 100.0)


def straight_records(steps=6, speed=2.0, noise=0.0, seed=3):
    rng = random.Random(seed)
    records = []
    for step in range(steps):
        records.append(
            LocationRecord(
                location=Point(
                    10.0 + speed * step + rng.gauss(0.0, noise),
                    50.0 + rng.gauss(0.0, noise),
                ),
                velocity=Vector(speed, 0.0),
                timestamp=float(step),
            )
        )
    return records


class TestLinearPredictor:
    def test_needs_records(self):
        with pytest.raises(QueryError):
            LinearPredictor([])

    def test_single_record_uses_reported_velocity(self):
        record = LocationRecord(Point(10.0, 10.0), Vector(3.0, 0.0), 0.0)
        predicted = LinearPredictor([record]).predict(2.0)
        assert predicted.location == Point(16.0, 10.0)
        assert predicted.velocity == Vector(3.0, 0.0)

    def test_fitted_velocity_matches_straight_motion(self):
        predictor = LinearPredictor(straight_records(speed=2.0))
        velocity = predictor.fitted_velocity()
        assert velocity.dx == pytest.approx(2.0, abs=1e-9)
        assert velocity.dy == pytest.approx(0.0, abs=1e-9)

    def test_prediction_extends_straight_motion(self):
        predictor = LinearPredictor(straight_records(steps=5, speed=2.0))
        predicted = predictor.predict(10.0)
        # Last record is at t=4, x=18; six more seconds at 2 u/s -> x=30.
        assert predicted.location.x == pytest.approx(30.0, abs=1e-9)
        assert predicted.location.y == pytest.approx(50.0, abs=1e-9)

    def test_noisy_fit_beats_last_reported_velocity(self):
        # The reported instantaneous velocities are wrong (zero); the fitted
        # velocity recovers the true drift from positions.
        records = [
            LocationRecord(Point(10.0 + 2.0 * t, 50.0), Vector(0.0, 0.0), float(t))
            for t in range(6)
        ]
        predicted = LinearPredictor(records).predict(6.0)
        assert predicted.location.x == pytest.approx(22.0, abs=1e-6)

    def test_records_sorted_internally(self):
        records = list(reversed(straight_records(steps=4, speed=1.0)))
        predictor = LinearPredictor(records)
        assert predictor.records[0].timestamp < predictor.records[-1].timestamp


class TestViterbiSmoother:
    def test_invalid_parameters(self):
        with pytest.raises(QueryError):
            ViterbiSmoother(candidate_radius=-1)
        with pytest.raises(QueryError):
            ViterbiSmoother(max_speed=0.0)

    def test_empty_input(self):
        assert ViterbiSmoother(world=WORLD).smooth([]) == []

    def test_output_length_matches_input(self):
        smoother = ViterbiSmoother(world=WORLD, cell_level=6)
        records = straight_records(steps=8, noise=1.0)
        assert len(smoother.smooth(records)) == 8

    def test_smoothing_reduces_noise(self):
        """The decoded path is closer to the true path than raw cell
        snapping of the noisy observations would suggest."""
        truth = [Point(10.0 + 2.0 * t, 50.0) for t in range(10)]
        noisy = [
            LocationRecord(
                Point(truth[t].x + (1.5 if t % 2 else -1.5), 50.0 + (1.5 if t % 3 else -1.5)),
                Vector(2.0, 0.0),
                float(t),
            )
            for t in range(10)
        ]
        smoother = ViterbiSmoother(world=WORLD, cell_level=6, max_speed=3.0)
        error = smoother.smoothed_error(noisy, truth)
        # Level-6 cells on a 100-unit world are ~1.56 units wide, so the
        # smoothed path should stay within about one cell of the truth.
        assert error < 2.5

    def test_smoothed_error_validates_lengths(self):
        smoother = ViterbiSmoother(world=WORLD, cell_level=6)
        with pytest.raises(QueryError):
            smoother.smoothed_error(straight_records(steps=3), [Point(0.0, 0.0)])

    def test_implausible_jumps_are_discouraged(self):
        """An outlier observation far off the path gets pulled back toward
        the trajectory rather than followed."""
        records = straight_records(steps=6, speed=1.0)
        outlier = LocationRecord(Point(90.0, 90.0), Vector(1.0, 0.0), 2.5)
        noisy = records[:3] + [outlier] + records[3:]
        smoother = ViterbiSmoother(world=WORLD, cell_level=5, max_speed=2.0)
        path = smoother.smooth(noisy)
        outlier_index = 3
        assert path[outlier_index].distance_to(Point(90.0, 90.0)) > 20.0


class TestIndexerIntegration:
    def test_predict_location_for_leader(self, indexer):
        for t in range(5):
            indexer.update(make_update(1, 10.0 + 2.0 * t, 50.0, vx=2.0, vy=0.0, t=float(t)))
        predicted = indexer.predict_location("obj0000000001", at_time=6.0)
        assert predicted.location.x == pytest.approx(22.0, abs=1e-6)

    def test_predict_location_for_follower(self, indexer):
        indexer.update(make_update(1, 10.0, 50.0, vx=1.0, vy=0.0, t=0.0))
        indexer.update(make_update(2, 12.0, 50.0, vx=1.0, vy=0.0, t=0.0))
        indexer.run_clustering(now=0.0)
        from repro.tables.affiliation_table import Role

        follower_id = next(
            oid
            for oid in ("obj0000000001", "obj0000000002")
            if indexer.affiliation_table.role_of(oid).role is Role.FOLLOWER
        )
        predicted = indexer.predict_location(follower_id, at_time=3.0)
        # The follower co-moves with its leader at 1 u/s.
        actual_start = 10.0 if follower_id == "obj0000000001" else 12.0
        assert predicted.location.x == pytest.approx(actual_start + 3.0, abs=1e-6)

    def test_predict_unknown_object(self, indexer):
        with pytest.raises(QueryError):
            indexer.predict_location("objMISSING", at_time=1.0)

    def test_smoothed_trajectory_via_facade(self, indexer):
        for t in range(6):
            indexer.update(make_update(1, 10.0 + t, 50.0, vx=1.0, vy=0.0, t=float(t)))
        path = indexer.smoothed_trajectory("obj0000000001")
        assert len(path) == 6
        assert indexer.smoothed_trajectory("objMISSING") == []

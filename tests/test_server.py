"""Tests for the front-end server, cluster, client simulators and load test."""

import pytest

from repro.core.config import MoistConfig
from repro.core.moist import MoistIndexer
from repro.errors import ConfigurationError, WorkloadError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.server.client import ClientSimulator, build_client_fleet
from repro.server.cluster import ServerCluster
from repro.server.frontend import FrontendServer
from repro.server.loadtest import LoadTest

from helpers import make_update

CONFIG = MoistConfig(
    world=BoundingBox(0.0, 0.0, 100.0, 100.0),
    storage_level=8,
    clustering_cell_level=2,
)


@pytest.fixture
def shared_indexer():
    return MoistIndexer(CONFIG)


class TestFrontendServer:
    def test_invalid_parameters(self, shared_indexer):
        with pytest.raises(ConfigurationError):
            FrontendServer(0, shared_indexer, request_overhead_s=-1.0)
        with pytest.raises(ConfigurationError):
            FrontendServer(0, shared_indexer, storage_contention_factor=0.5)

    def test_update_accumulates_busy_time(self, shared_indexer):
        server = FrontendServer(0, shared_indexer)
        server.handle_update(make_update(1, 10.0, 10.0))
        assert server.updates_handled == 1
        assert server.busy_seconds > 0
        assert server.mean_service_time() > 0

    def test_query_accumulates_busy_time(self, shared_indexer):
        server = FrontendServer(0, shared_indexer)
        server.handle_update(make_update(1, 10.0, 10.0))
        results = server.handle_nn_query(Point(10.0, 10.0), 1)
        assert len(results) == 1
        assert server.queries_handled == 1

    def test_contention_factor_inflates_service_time(self, shared_indexer):
        plain = FrontendServer(0, shared_indexer, storage_contention_factor=1.0)
        inflated = FrontendServer(1, shared_indexer, storage_contention_factor=2.0)
        plain.handle_update(make_update(1, 10.0, 10.0))
        inflated.handle_update(make_update(2, 20.0, 20.0))
        assert inflated.busy_seconds > plain.busy_seconds

    def test_reset_metrics(self, shared_indexer):
        server = FrontendServer(0, shared_indexer)
        server.handle_update(make_update(1, 10.0, 10.0))
        server.reset_metrics()
        assert server.busy_seconds == 0.0
        assert server.requests_handled == 0
        assert server.mean_service_time() == 0.0


class TestServerCluster:
    def test_needs_at_least_one_server(self, shared_indexer):
        with pytest.raises(ConfigurationError):
            ServerCluster(shared_indexer, num_servers=0)

    def test_round_robin_balances_requests(self, shared_indexer):
        cluster = ServerCluster(shared_indexer, num_servers=3)
        for index in range(9):
            cluster.submit_update(make_update(index, 10.0 + index, 10.0))
        assert [server.requests_handled for server in cluster.servers] == [3, 3, 3]

    def test_makespan_and_throughput(self, shared_indexer):
        cluster = ServerCluster(shared_indexer, num_servers=2)
        for index in range(10):
            cluster.submit_update(make_update(index, 10.0 + index, 10.0))
        assert cluster.total_requests() == 10
        assert cluster.makespan_seconds() > 0
        assert cluster.throughput_qps() > 0

    def test_more_servers_give_higher_throughput(self):
        # Two separate deployments processing the same stream.
        single_indexer = MoistIndexer(CONFIG)
        multi_indexer = MoistIndexer(CONFIG)
        single = ServerCluster(single_indexer, num_servers=1)
        multi = ServerCluster(multi_indexer, num_servers=5)
        for index in range(50):
            update = make_update(index, 10.0 + (index % 80), 10.0)
            single.submit_update(update)
            multi.submit_update(update)
        assert multi.throughput_qps() > 2 * single.throughput_qps()

    def test_contention_makes_speedup_sublinear(self):
        single = ServerCluster(MoistIndexer(CONFIG), num_servers=1)
        ten = ServerCluster(MoistIndexer(CONFIG), num_servers=10, contention_alpha=0.05)
        for index in range(100):
            update = make_update(index, 10.0 + (index % 80), 10.0)
            single.submit_update(update)
            ten.submit_update(update)
        speedup = ten.throughput_qps() / single.throughput_qps()
        assert 1.0 < speedup < 10.0

    def test_nn_query_dispatch(self, shared_indexer):
        cluster = ServerCluster(shared_indexer, num_servers=2)
        cluster.submit_update(make_update(1, 10.0, 10.0))
        results = cluster.submit_nn_query(Point(10.0, 10.0), 1)
        assert len(results) == 1


class TestClientSimulator:
    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ClientSimulator(0, 0, 0, CONFIG.world)
        with pytest.raises(WorkloadError):
            ClientSimulator(0, 0, 10, CONFIG.world, threads=0)

    def test_random_update_targets_own_slice(self):
        client = ClientSimulator(0, object_id_offset=100, num_objects=10, region=CONFIG.world)
        for _ in range(20):
            update = client.random_update(timestamp=0.0)
            number = int(update.object_id.replace("obj", ""))
            assert 100 <= number < 110
            assert CONFIG.world.contains_point(update.location)

    def test_burst_size(self):
        client = ClientSimulator(0, 0, 10, CONFIG.world)
        assert len(client.burst(0.0, 25)) == 25
        with pytest.raises(WorkloadError):
            client.burst(0.0, 0)

    def test_fleet_partitions_objects(self):
        fleet = build_client_fleet(num_clients=4, total_objects=103, region=CONFIG.world)
        assert len(fleet) == 4
        assert sum(client.num_objects for client in fleet) == 103
        with pytest.raises(WorkloadError):
            build_client_fleet(num_clients=10, total_objects=5, region=CONFIG.world)


class TestLoadTest:
    def test_invalid_failure_probability(self, shared_indexer):
        cluster = ServerCluster(shared_indexer, num_servers=1)
        with pytest.raises(ConfigurationError):
            LoadTest(cluster, failure_probability=1.5)

    def test_run_updates_produces_result(self, shared_indexer):
        cluster = ServerCluster(shared_indexer, num_servers=2)
        messages = [make_update(index, 10.0 + (index % 50), 10.0) for index in range(200)]
        result = LoadTest(cluster, failure_probability=0.0).run_updates(
            messages, bucket_requests=50
        )
        assert result.total_requests == 200
        assert result.failed_requests == 0
        assert result.qps > 0
        assert result.mean_latency_s > 0
        assert len(result.timeline) == 4
        assert len(result.per_server_qps) == 2

    def test_failures_excluded_from_qps_numerator(self, shared_indexer):
        cluster = ServerCluster(shared_indexer, num_servers=1)
        messages = [make_update(index, 10.0 + (index % 50), 10.0) for index in range(300)]
        result = LoadTest(cluster, failure_probability=0.2, seed=7).run_updates(messages)
        assert result.failed_requests > 0
        assert result.total_requests + result.failed_requests == 300

    def test_with_fleet_and_client_bursts(self, shared_indexer):
        cluster = ServerCluster(shared_indexer, num_servers=2)
        load_test = LoadTest.with_fleet(
            cluster, num_clients=4, total_objects=100, failure_probability=0.0
        )
        result = load_test.run_client_bursts(duration_s=2.0, requests_per_burst=10)
        assert result.total_requests == 2 * 4 * 10
        assert result.qps > 0

    def test_client_bursts_require_clients(self, shared_indexer):
        cluster = ServerCluster(shared_indexer, num_servers=1)
        with pytest.raises(ConfigurationError):
            LoadTest(cluster).run_client_bursts(duration_s=1.0)

    def test_invalid_bucket_requests(self, shared_indexer):
        cluster = ServerCluster(shared_indexer, num_servers=1)
        with pytest.raises(ConfigurationError):
            LoadTest(cluster).run_updates([], bucket_requests=0)

"""Tests for the B+-tree substrate of the Bx-tree baseline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.bplustree import BPlusTree, BPlusTreeError


class TestBasics:
    def test_minimum_order_enforced(self):
        with pytest.raises(BPlusTreeError):
            BPlusTree(order=2)

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(3, "b")
        assert tree.search(5) == ["a"]
        assert tree.search(3) == ["b"]
        assert tree.search(99) == []
        assert len(tree) == 2

    def test_duplicate_keys_keep_all_values(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert sorted(tree.search(1)) == ["a", "b"]
        assert len(tree) == 2

    def test_remove(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a")
        assert tree.search(1) == ["b"]
        assert not tree.remove(1, "a")
        assert not tree.remove(42, "zzz")
        assert len(tree) == 1

    def test_range_query(self):
        tree = BPlusTree(order=4)
        for key in range(20):
            tree.insert(key, key * 10)
        results = list(tree.range(5, 9))
        assert [key for key, _ in results] == [5, 6, 7, 8, 9]
        assert [value for _, value in results] == [50, 60, 70, 80, 90]

    def test_range_empty_interval(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert list(tree.range(5, 10)) == []

    def test_keys_sorted(self):
        tree = BPlusTree(order=4)
        for key in [9, 1, 7, 3, 5]:
            tree.insert(key, key)
        assert tree.keys() == [1, 3, 5, 7, 9]

    def test_height_grows_with_population(self):
        small = BPlusTree(order=4)
        large = BPlusTree(order=4)
        for key in range(4):
            small.insert(key, key)
        for key in range(500):
            large.insert(key, key)
        assert large.height() > small.height()

    def test_access_stats_accumulate(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        assert tree.stats.node_writes > 0
        before = tree.stats.node_reads
        tree.search(50)
        assert tree.stats.node_reads > before
        tree.stats.reset()
        assert tree.stats.total() == 0


class TestAgainstReference:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=300), max_size=300))
    def test_insertion_matches_sorted_reference(self, keys):
        tree = BPlusTree(order=8)
        for key in keys:
            tree.insert(key, key)
        assert tree.keys() == sorted(set(keys))
        assert len(tree) == len(keys)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    def test_range_matches_reference(self, keys, low, high):
        if low > high:
            low, high = high, low
        tree = BPlusTree(order=8)
        for key in keys:
            tree.insert(key, key)
        expected = sorted(k for k in keys if low <= k <= high)
        assert [key for key, _ in tree.range(low, high)] == expected

    def test_random_insert_delete_consistency(self):
        rng = random.Random(13)
        tree = BPlusTree(order=16)
        reference = {}
        for _ in range(2000):
            key = rng.randrange(200)
            if rng.random() < 0.6:
                tree.insert(key, key)
                reference[key] = reference.get(key, 0) + 1
            elif reference.get(key):
                assert tree.remove(key, key)
                reference[key] -= 1
                if reference[key] == 0:
                    del reference[key]
        assert tree.keys() == sorted(reference)
        assert len(tree) == sum(reference.values())

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.objects == 200
        assert args.duration == 60.0

    def test_figures_accepts_names(self):
        args = build_parser().parse_args(["figures", "fig12", "headline"])
        assert args.names == ["fig12", "headline"]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "MoistConfig" in output
        assert "storage_level" in output

    def test_demo_small(self, capsys):
        assert main(["demo", "--objects", "30", "--duration", "10"]) == 0
        output = capsys.readouterr().out
        assert "object schools" in output
        assert "shed ratio" in output

    def test_figures_rejects_unknown_name(self, capsys):
        assert main(["figures", "not-a-figure"]) == 1
        assert "unknown figure" in capsys.readouterr().out

    def test_figures_runs_one_figure(self, capsys):
        assert main(["figures", "fig10"]) == 0
        output = capsys.readouterr().out
        assert "fig10a" in output
        assert "read time" in output

"""Tests for the dead-reckoning (single-object shedding) baseline."""

import pytest

from repro.baselines.dead_reckoning import DeadReckoningIndex
from repro.core.config import MoistConfig
from repro.errors import ConfigurationError
from repro.experiments.ablations import run_shedding_ablation
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage

CONFIG = MoistConfig(
    world=BoundingBox(0.0, 0.0, 100.0, 100.0),
    storage_level=8,
    clustering_cell_level=2,
    deviation_threshold=5.0,
)


def message(object_id, x, y, vx=1.0, vy=0.0, t=0.0):
    return UpdateMessage(object_id, Point(x, y), Vector(vx, vy), t)


class TestDeadReckoning:
    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            DeadReckoningIndex(CONFIG, tolerance=-1.0)

    def test_first_update_always_stored(self):
        index = DeadReckoningIndex(CONFIG, tolerance=5.0)
        assert index.update(message("a", 10.0, 10.0)) is False
        assert index.stats.stored == 1
        assert index.indexed_objects == 1

    def test_predictable_motion_is_shed(self):
        index = DeadReckoningIndex(CONFIG, tolerance=5.0)
        index.update(message("a", 10.0, 10.0, vx=1.0, t=0.0))
        # The object keeps moving exactly as predicted.
        assert index.update(message("a", 12.0, 10.0, vx=1.0, t=2.0)) is True
        assert index.update(message("a", 14.0, 10.0, vx=1.0, t=4.0)) is True
        assert index.stats.shed == 2
        # The stored record is still the original one.
        assert index.stored_record("a").timestamp == 0.0

    def test_deviating_motion_is_stored(self):
        index = DeadReckoningIndex(CONFIG, tolerance=5.0)
        index.update(message("a", 10.0, 10.0, vx=1.0, t=0.0))
        # A turn: the object ends up far from the dead-reckoned position.
        assert index.update(message("a", 10.0, 30.0, vx=0.0, vy=1.0, t=2.0)) is False
        assert index.stats.stored == 2

    def test_zero_tolerance_never_sheds(self):
        index = DeadReckoningIndex(CONFIG, tolerance=0.0)
        index.update(message("a", 10.0, 10.0, vx=1.0, t=0.0))
        assert index.update(message("a", 11.0, 10.0, vx=1.0, t=1.0)) is False
        assert index.stats.shed == 0

    def test_every_object_stays_in_the_index(self):
        index = DeadReckoningIndex(CONFIG, tolerance=5.0)
        for i in range(6):
            index.update(message(f"obj{i}", 10.0 + i, 10.0))
        assert index.indexed_objects == 6

    def test_shed_ratio(self):
        index = DeadReckoningIndex(CONFIG, tolerance=5.0)
        index.update(message("a", 10.0, 10.0, vx=1.0, t=0.0))
        index.update(message("a", 11.0, 10.0, vx=1.0, t=1.0))
        assert index.stats.shed_ratio == pytest.approx(0.5)


class TestSheddingAblation:
    def test_schools_shrink_the_index_dead_reckoning_does_not(self):
        result = run_shedding_ablation(num_objects=80, duration_s=25.0)
        schools = result.get_series("object schools (MOIST)").ys
        dead_reckoning = result.get_series("dead reckoning").ys
        # Both shed a meaningful fraction of updates ...
        assert schools[0] > 0.2
        assert dead_reckoning[0] > 0.2
        # ... but only schools reduce the number of indexed rows.
        assert schools[1] < dead_reckoning[1]
        assert dead_reckoning[1] == 80

"""Property test: crash recovery is invisible.

A Hypothesis-style randomized loop over seeds: generate a random mutation
sequence (writes, overwrites, cell/row deletes, batches, group commits,
aging passes, explicit flushes and compactions), run it twice against
identically configured tables, crash-and-recover one of them at a random
point mid-sequence, and require the final states to be indistinguishable —
same tablet boundaries, same keys, same full row contents, same subsequent
read results.  The engine knobs are randomized per seed too, so the space
covered includes tiny memtables (flush/compaction-heavy), tight split
thresholds (runs sliced across tablets) and the default no-flush engine
(pure log replay)."""

import random

import pytest

from repro.bigtable.table import ColumnFamily, Table
from repro.bigtable.tablet import TabletOptions


def build_table(rng: random.Random) -> Table:
    options = TabletOptions(
        split_threshold=rng.choice([8, 16, 64]),
        merge_threshold=4,
        group_commit_size=rng.choice([4, 16, 256]),
        memtable_flush_rows=rng.choice([None, 4, 16, 64]),
        compaction_max_runs=rng.choice([2, 3, 8]),
    )
    return Table(
        "t",
        [ColumnFamily("mem", max_versions=3), ColumnFamily("disk", max_versions=5)],
        options=options,
    )


def random_ops(rng: random.Random, length: int):
    """A reproducible random mutation program (list of opcode tuples)."""
    ops = []
    key_space = [f"k{rng.randrange(40):03d}" for _ in range(length)]
    for step in range(length):
        key = rng.choice(key_space)
        roll = rng.random()
        if roll < 0.55:
            ops.append(("write", key, rng.randrange(1000), float(step)))
        elif roll < 0.65:
            ops.append(("delete_cell", key))
        elif roll < 0.75:
            ops.append(("delete_row", key))
        elif roll < 0.85:
            batch = [
                (rng.choice(key_space), rng.randrange(1000), float(step) + i / 10.0)
                for i in range(rng.randrange(1, 6))
            ]
            ops.append(("batch_write", batch))
        elif roll < 0.90:
            group = [
                (rng.choice(key_space), rng.randrange(1000), float(step) + i / 10.0)
                for i in range(rng.randrange(1, 8))
            ]
            ops.append(("group_commit", group))
        elif roll < 0.94:
            ops.append(("age_out", float(step) * 0.5))
        elif roll < 0.97:
            ops.append(("flush",))
        else:
            ops.append(("compact", rng.random() < 0.3))
    return ops


def apply_op(table: Table, op) -> None:
    kind = op[0]
    if kind == "write":
        _, key, value, ts = op
        table.write(key, "mem", "q", value, ts)
    elif kind == "delete_cell":
        table.delete_cell(op[1], "mem", "q")
    elif kind == "delete_row":
        table.delete_row(op[1])
    elif kind == "batch_write":
        table.batch_write([(key, "mem", "q", value, ts) for key, value, ts in op[1]])
    elif kind == "group_commit":
        with table.group_commit():
            for key, value, ts in op[1]:
                table.write(key, "mem", "q", value, ts)
    elif kind == "age_out":
        table.age_out("mem", "disk", op[1])
    elif kind == "flush":
        table.flush_memtables()
    elif kind == "compact":
        table.compact_runs(major=op[1])


def state_of(table: Table):
    """Everything observable about a table's contents and sharding."""
    boundaries = tuple(
        (tablet.tablet_id, tablet.start_key, tablet.row_count)
        for tablet in table.tablets()
    )
    keys = tuple(table.all_keys())
    rows = tuple(repr(table.read_row(key, _charge=False)) for key in keys)
    return boundaries, keys, rows


@pytest.mark.parametrize("seed", range(12))
def test_crash_recovery_equals_uncrashed_reference(seed):
    rng = random.Random(1000 + seed)
    ops = random_ops(rng, length=120)
    crash_at = rng.randrange(len(ops) + 1)

    knob_rng = random.Random(2000 + seed)
    reference = build_table(knob_rng)
    crashed = build_table(random.Random(2000 + seed))  # identical knobs

    for op in ops:
        apply_op(reference, op)
    for op in ops[:crash_at]:
        apply_op(crashed, op)
    report = crashed.recover()
    assert report.simulated_seconds >= 0.0
    for op in ops[crash_at:]:
        apply_op(crashed, op)

    assert state_of(crashed) == state_of(reference), (
        f"seed {seed}: state diverged after crash at op {crash_at}/{len(ops)}"
    )


def knob_dict(rng: random.Random) -> dict:
    """The same knob draws as :func:`build_table`, as a plain dict the
    cross-process variant can ship over the RPC wire (dict literals
    evaluate in order, so the rng consumption matches draw for draw)."""
    return {
        "split_threshold": rng.choice([8, 16, 64]),
        "merge_threshold": 4,
        "group_commit_size": rng.choice([4, 16, 256]),
        "memtable_flush_rows": rng.choice([None, 4, 16, 64]),
        "compaction_max_runs": rng.choice([2, 3, 8]),
    }


@pytest.mark.parametrize("backend", ["inprocess", "process", "disk"])
@pytest.mark.parametrize("seed", [0, 5])
def test_crash_recovery_property_holds_across_process_boundary(backend, seed):
    """The PR 4 property, with the crashed table living behind the shard
    RPC boundary: same ops, same knobs, same crash point — the remote
    table's recovered state must equal the local uncrashed reference.
    The ``disk`` backend runs the same program with the remote table
    additionally persisting every mutation to real files."""
    from repro.bigtable.process_backend import single_shard_client

    rng = random.Random(1000 + seed)
    ops = random_ops(rng, length=120)
    crash_at = rng.randrange(len(ops) + 1)
    knobs = knob_dict(random.Random(2000 + seed))

    reference = Table(
        "t",
        [ColumnFamily("mem", max_versions=3), ColumnFamily("disk", max_versions=5)],
        options=TabletOptions(**knobs),
    )
    for op in ops:
        apply_op(reference, op)

    with single_shard_client(backend) as client:
        client.call("build_table", knobs)
        client.call("table_apply", ops[:crash_at])
        assert client.call("table_recover") >= 0.0
        client.call("table_apply", ops[crash_at:])
        assert client.call("table_state") == state_of(reference), (
            f"seed {seed} ({backend}): state diverged after remote crash "
            f"at op {crash_at}/{len(ops)}"
        )


@pytest.mark.parametrize("seed", range(6))
def test_double_crash_recovery_is_idempotent(seed):
    rng = random.Random(5000 + seed)
    ops = random_ops(rng, length=80)
    table = build_table(random.Random(6000 + seed))
    for op in ops:
        apply_op(table, op)
    before = state_of(table)
    table.recover()
    assert state_of(table) == before
    table.recover()  # crashing immediately again replays the same tail
    assert state_of(table) == before

"""Tests for repro.geometry.point."""


import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point
from repro.geometry.vector import Vector

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestPointBasics:
    def test_as_tuple_round_trip(self):
        assert Point(1.5, -2.0).as_tuple() == (1.5, -2.0)

    def test_iteration_yields_coordinates(self):
        assert list(Point(3.0, 4.0)) == [3.0, 4.0]

    def test_origin_is_zero(self):
        assert Point.origin() == Point(0.0, 0.0)

    def test_points_are_hashable_and_comparable(self):
        assert len({Point(1.0, 2.0), Point(1.0, 2.0), Point(2.0, 1.0)}) == 2
        assert Point(1.0, 2.0) < Point(2.0, 0.0)

    def test_is_finite_rejects_nan(self):
        assert Point(1.0, 2.0).is_finite()
        assert not Point(float("nan"), 0.0).is_finite()
        assert not Point(0.0, float("inf")).is_finite()


class TestPointDistances:
    def test_345_triangle(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_squared_distance_matches_distance(self):
        a = Point(1.0, 2.0)
        b = Point(4.0, 6.0)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_distance_is_symmetric(self):
        a = Point(1.0, 7.0)
        b = Point(-3.0, 2.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite)
    def test_distance_non_negative(self, x1, y1, x2, y2):
        assert Point(x1, y1).distance_to(Point(x2, y2)) >= 0.0

    @given(finite, finite)
    def test_distance_to_self_is_zero(self, x, y):
        assert Point(x, y).distance_to(Point(x, y)) == 0.0


class TestPointDisplacement:
    def test_displacement_round_trip(self):
        a = Point(1.0, 2.0)
        b = Point(5.0, -3.0)
        assert a.displaced(a.displacement_to(b)) == b

    def test_displaced_adds_vector(self):
        assert Point(1.0, 1.0).displaced(Vector(2.0, 3.0)) == Point(3.0, 4.0)

    def test_midpoint(self):
        assert Point(0.0, 0.0).midpoint(Point(4.0, 6.0)) == Point(2.0, 3.0)

    def test_translated(self):
        assert Point(1.0, 1.0).translated(-1.0, 2.0) == Point(0.0, 3.0)

    @given(finite, finite, finite, finite)
    def test_displacement_magnitude_equals_distance(self, x1, y1, x2, y2):
        a = Point(x1, y1)
        b = Point(x2, y2)
        assert a.displacement_to(b).magnitude() == pytest.approx(
            a.distance_to(b), abs=1e-6, rel=1e-6
        )


class TestPointClamp:
    def test_clamp_inside_is_identity(self):
        assert Point(5.0, 5.0).clamped(0.0, 0.0, 10.0, 10.0) == Point(5.0, 5.0)

    def test_clamp_outside_moves_to_border(self):
        assert Point(-5.0, 20.0).clamped(0.0, 0.0, 10.0, 10.0) == Point(0.0, 10.0)

    def test_clamp_on_border_stays(self):
        assert Point(0.0, 10.0).clamped(0.0, 0.0, 10.0, 10.0) == Point(0.0, 10.0)

"""Tests for the tablet scale-out experiment and per-tablet reporting."""

from repro.experiments.report import tablet_load_report
from repro.experiments.scaleout import measure_batched_update_qps, run_scaleout


class TestMeasureBatchedUpdateQps:
    def test_shards_into_multiple_tablets_at_fig13_scale(self):
        outcome = measure_batched_update_qps(2000, num_servers=1, num_updates=1000)
        assert outcome.tablet_count >= 2
        assert 0.0 < outcome.hot_tablet_share < 1.0
        assert outcome.qps > 0

    def test_batched_qps_near_sequential_anchor(self):
        # The batched path charges the same simulated costs, so single-server
        # QPS must stay in the same band as the fig13 anchor.
        outcome = measure_batched_update_qps(2000, num_servers=1, num_updates=1500)
        assert 6000 < outcome.qps < 10000

    def test_more_servers_scale_out(self):
        single = measure_batched_update_qps(2000, num_servers=1, num_updates=1200)
        multi = measure_batched_update_qps(2000, num_servers=5, num_updates=1200)
        assert multi.qps > 1.5 * single.qps


class TestRunScaleout:
    def test_figure_structure(self):
        result = run_scaleout(
            server_counts=(1, 2), num_objects=1500, num_updates=800
        )
        labels = {series.label for series in result.series}
        assert {"batched update QPS", "tablets", "hot tablet share"} <= labels
        qps = result.get_series("batched update QPS").ys
        assert all(value > 0 for value in qps)
        tablets = result.get_series("tablets").ys
        assert all(value >= 2 for value in tablets)
        assert result.notes


class TestTabletLoadReport:
    def test_renders_per_tablet_rows(self):
        from repro.experiments.common import uniform_leader_indexer
        from repro.geometry.point import Point
        from repro.geometry.vector import Vector
        from repro.model import UpdateMessage, format_object_id

        indexer = uniform_leader_indexer(1500, seed=7)
        # Drive some load so shares are meaningful.
        indexer.update_many(
            [
                UpdateMessage(
                    format_object_id(index),
                    Point(float(index % 900) + 1.0, 500.0),
                    Vector(1.0, 0.0),
                    1.0,
                )
                for index in range(400)
            ]
        )
        report = tablet_load_report(indexer.tablet_stats())
        assert "per-tablet storage accounting" in report
        assert "skew: hottest tablet serves" in report
        assert "location" in report
        assert "tablet-0000" in report

    def test_empty_stats(self):
        assert tablet_load_report([]) == "(no tablets)\n"

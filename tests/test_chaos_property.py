"""Process-level chaos: supervised runs heal losslessly, byte for byte.

The headline property: a seeded :class:`ChaosPlan` that SIGKILLs every
worker at least once mid-workload — or freezes them with SIGSTOP, or
corrupts their frames — completes with a ``to_report()`` rendering
byte-identical to the fault-free run's.  The disk backend's journal + the
accounting checkpoints + the exactly-once retry protocol together make a
worker death invisible to every simulated number.
"""

import random

import pytest

from repro.errors import (
    ConfigurationError,
    StaleRequestError,
    WorkerCircuitOpenError,
    WorkerDiedError,
)
from repro.codec.wire import NeighborStreamDecoder
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.server import rpc
from repro.server.chaos import (
    CORRUPT_BITFLIP,
    KILL_WORKER,
    STOP_WORKER,
    ChaosEvent,
    ChaosPlan,
)
from repro.server.loadtest import ScaleOutLoadTest
from repro.server.scaleout import ScaleOutCluster
from repro.server.worker import ShardRecipe, dispatch_request
from repro.workload.queries import NNQuery

NUM_SHARDS = 4
NUM_OBJECTS = 200
NUM_ROUNDS = 4  # 400 messages / batch_size 128


def make_messages(count, num_objects, seed=99):
    rng = random.Random(seed)
    return [
        UpdateMessage(
            object_id=format_object_id(rng.randrange(num_objects)),
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            velocity=Vector(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)),
            timestamp=float(index),
        )
        for index in range(count)
    ]


def make_queries(count, seed=7, k=5):
    rng = random.Random(seed)
    return [
        NNQuery(
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            k=k,
        )
        for _ in range(count)
    ]


MESSAGES = make_messages(400, NUM_OBJECTS)
QUERIES = make_queries(80)


def _cluster(backend, workers, policy=None, retry=None, breaker=5, **kwargs):
    return ScaleOutCluster.build(
        NUM_SHARDS,
        backend=backend,
        num_workers=workers,
        supervision_policy=policy,
        retry_policy=retry,
        max_consecutive_failures=breaker,
        num_objects=NUM_OBJECTS,
        seed=17,
        num_servers=2,
        **kwargs,
    )


def _run(cluster, chaos_plan=None):
    test = ScaleOutLoadTest(
        cluster, failure_probability=0.01, seed=404, chaos_plan=chaos_plan
    )
    return test.run_mixed_batches(MESSAGES, QUERIES, batch_size=128)


@pytest.fixture(scope="module")
def reference_report():
    """The fault-free, unsupervised in-process rendering every chaos run
    must reproduce byte for byte."""
    cluster = _cluster("inprocess", 1)
    try:
        return _run(cluster).to_report()
    finally:
        cluster.close()


# --------------------------------------------------------------------------
# The acceptance property
# --------------------------------------------------------------------------
class TestChaosLossless:
    def test_supervised_fault_free_matches_unsupervised(self, reference_report):
        # Supervision is pure mechanism: with no chaos the supervised
        # dispatch path (pinned request ids, per-call deadlines, durable
        # accounting checkpoints) changes no simulated number.
        cluster = _cluster(
            "disk", 2, policy="respawn", retry=rpc.RetryPolicy(call_deadline_s=30.0)
        )
        try:
            assert _run(cluster).to_report() == reference_report
            assert cluster.recovery_snapshot()["recoveries"] == 0
        finally:
            cluster.close()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sigkill_every_worker_is_byte_invisible(
        self, workers, reference_report
    ):
        plan = ChaosPlan.seeded(
            29, num_batches=NUM_ROUNDS, num_workers=workers, kills=workers
        )
        assert plan.workers_hit() == tuple(range(workers))
        cluster = _cluster(
            "disk",
            workers,
            policy="respawn",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
        )
        try:
            result = _run(cluster, chaos_plan=plan)
            assert result.to_report() == reference_report
            snapshot = cluster.recovery_snapshot()
            assert snapshot["policy"] == "respawn"
            assert snapshot["recoveries"] == workers
            assert snapshot["lossless_recoveries"] == workers
            assert snapshot["lost_updates"] == 0
            assert snapshot["recovery_seconds_total"] > 0.0
            assert snapshot["recovery_seconds_max"] >= (
                snapshot["recovery_seconds_mean"]
            )
        finally:
            cluster.close()

    def test_sigstop_hung_workers_are_byte_invisible(self, reference_report):
        # Frozen workers are alive by waitpid; only the ping/response
        # deadline can catch them.  Keep it short so the test stays fast.
        plan = ChaosPlan.seeded(31, num_batches=NUM_ROUNDS, num_workers=2, stops=2)
        cluster = _cluster(
            "disk", 2, policy="respawn", retry=rpc.RetryPolicy(call_deadline_s=1.25)
        )
        try:
            result = _run(cluster, chaos_plan=plan)
            assert result.to_report() == reference_report
            snapshot = cluster.recovery_snapshot()
            assert snapshot["recoveries"] >= 1
            assert snapshot["lost_updates"] == 0
        finally:
            cluster.close()

    def test_corrupted_frames_are_byte_invisible(self, reference_report):
        # One bitflipped frame (worker exits on the crc mismatch) and one
        # truncated frame (worker blocks mid-frame until the deadline).
        plan = ChaosPlan.seeded(
            37, num_batches=NUM_ROUNDS, num_workers=2, corruptions=2
        )
        cluster = _cluster(
            "disk", 2, policy="respawn", retry=rpc.RetryPolicy(call_deadline_s=5.0)
        )
        try:
            result = _run(cluster, chaos_plan=plan)
            assert result.to_report() == reference_report
            snapshot = cluster.recovery_snapshot()
            assert snapshot["recoveries"] == 2
            assert all("injected" in reason for reason in snapshot["reasons"])
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Policies short of lossless
# --------------------------------------------------------------------------
class TestLossyAndFailFast:
    def test_respawn_lossy_counts_the_updates_it_forfeits(self):
        plan = ChaosPlan([ChaosEvent(2, 0, KILL_WORKER)])
        cluster = _cluster(
            "process",
            2,
            policy="respawn_lossy",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
        )
        try:
            result = _run(cluster, chaos_plan=plan)
            assert result.total_requests > 0
            snapshot = cluster.recovery_snapshot()
            assert snapshot["policy"] == "respawn_lossy"
            assert snapshot["recoveries"] == 1
            assert snapshot["lossless_recoveries"] == 0
            # Two rounds of acked updates on the killed worker's shards
            # were silently reset by the re-preload — the ledger says so.
            assert snapshot["lost_updates"] > 0
        finally:
            cluster.close()

    def test_repeated_lossy_respawns_do_not_double_count_lost_updates(self):
        # The loss ledger pops a shard's acked-update count on heal; a
        # second heal of the same worker with no acks in between must
        # forfeit zero, not re-charge what the first heal already counted.
        cluster = _cluster(
            "process",
            1,
            policy="respawn_lossy",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
        )
        try:
            acked = cluster.submit_update_batch(MESSAGES[:64])
            assert acked > 0
            supervisor = cluster.supervisor
            first = supervisor.handle_worker_failure(0, "first lossy heal")
            assert first.lost_updates == acked
            second = supervisor.handle_worker_failure(0, "second lossy heal")
            assert second.lost_updates == 0
            assert supervisor.metrics_snapshot()["lost_updates"] == acked
        finally:
            cluster.close()

    def test_fail_fast_propagates_the_first_worker_death(self):
        plan = ChaosPlan([ChaosEvent(1, 0, KILL_WORKER)])
        cluster = _cluster(
            "process",
            2,
            policy="fail_fast",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
        )
        try:
            with pytest.raises(WorkerDiedError, match="fail_fast"):
                _run(cluster, chaos_plan=plan)
        finally:
            cluster.close()

    def test_circuit_breaker_trips_after_consecutive_failures(self):
        cluster = _cluster("disk", 1, policy="respawn", breaker=1)
        try:
            supervisor = cluster.supervisor
            supervisor.handle_worker_failure(0, "first")
            with pytest.raises(WorkerCircuitOpenError):
                supervisor.handle_worker_failure(0, "second")
        finally:
            cluster.close()

    def test_success_closes_the_circuit(self):
        cluster = _cluster("disk", 1, policy="respawn", breaker=1)
        try:
            supervisor = cluster.supervisor
            supervisor.handle_worker_failure(0, "first")
            supervisor.notify_success(0)
            record = supervisor.handle_worker_failure(0, "after reset")
            assert record.lossless
            # The cluster still serves after two heals.
            assert cluster.submit_update_batch(MESSAGES[:32]) > 0
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Configuration guards
# --------------------------------------------------------------------------
class TestSupervisionGuards:
    def test_supervision_requires_the_process_backend(self):
        with pytest.raises(ConfigurationError, match="process backend"):
            _cluster("inprocess", 1, policy="respawn_lossy")

    def test_lossless_respawn_requires_durable_disk_state(self):
        with pytest.raises(ConfigurationError, match="respawn_lossy"):
            _cluster("process", 1, policy="respawn")

    def test_lossless_respawn_accepts_masters(self):
        # PR 10: master decision state rides the accounting checkpoint, so
        # the old refusal is gone — a master-bearing recipe builds under
        # lossless supervision (the property suite proves the healing in
        # tests/test_master_supervision_property.py).
        cluster = _cluster("disk", 1, policy="respawn", with_master=True)
        try:
            assert cluster.has_master
            assert cluster.supervisor is not None
            assert cluster.supervisor.policy == "respawn"
        finally:
            cluster.close()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            _cluster("process", 1, policy="reboot")

    def test_chaos_plan_needs_a_supervised_cluster(self):
        cluster = _cluster("inprocess", 1)
        try:
            with pytest.raises(ConfigurationError, match="supervised"):
                ScaleOutLoadTest(
                    cluster, chaos_plan=ChaosPlan([ChaosEvent(1, 0, KILL_WORKER)])
                )
        finally:
            cluster.close()

    def test_recovery_snapshot_requires_supervision(self):
        cluster = _cluster("inprocess", 1)
        try:
            with pytest.raises(ConfigurationError, match="supervision"):
                cluster.recovery_snapshot()
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# ChaosPlan mechanics
# --------------------------------------------------------------------------
class TestChaosPlan:
    def test_seeded_plans_are_reproducible(self):
        first = ChaosPlan.seeded(5, 10, 3, kills=4, stops=2, corruptions=2)
        second = ChaosPlan.seeded(5, 10, 3, kills=4, stops=2, corruptions=2)
        assert first.describe() == second.describe()
        assert len(first) == 8

    def test_kill_every_worker_guarantee(self):
        for seed in range(10):
            plan = ChaosPlan.seeded(seed, 6, 4, kills=4)
            assert plan.workers_hit() == (0, 1, 2, 3)

    def test_events_never_fire_at_batch_zero(self):
        plan = ChaosPlan.seeded(11, 5, 2, kills=3, stops=3, corruptions=3)
        assert all(event.at_batch >= 1 for event in plan.events)

    def test_events_at_groups_by_batch(self):
        plan = ChaosPlan(
            [
                ChaosEvent(2, 1, KILL_WORKER),
                ChaosEvent(2, 0, STOP_WORKER),
                ChaosEvent(4, 0, CORRUPT_BITFLIP),
            ]
        )
        assert [event.worker_index for event in plan.events_at(2)] == [0, 1]
        assert plan.events_at(3) == []
        assert len(plan.events_at(4)) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan([ChaosEvent(1, 0, "meteor")])
        with pytest.raises(ConfigurationError):
            ChaosPlan([ChaosEvent(-1, 0, KILL_WORKER)])
        with pytest.raises(ConfigurationError):
            ChaosPlan.seeded(1, num_batches=1, num_workers=2, kills=1)
        with pytest.raises(ConfigurationError):
            ChaosPlan.seeded(1, num_batches=4, num_workers=0)


# --------------------------------------------------------------------------
# The worker-side dedup window, driven directly through dispatch_request
# --------------------------------------------------------------------------
def _built_service():
    services = {}
    recipe = ShardRecipe(
        num_shards=1, shard_id=0, num_objects=50, seed=3, num_servers=1
    )
    dispatch_request(
        services, 0, rpc.OP_CALL, rpc.encode_call("build_indexer", (recipe,), {}), 1
    )
    return services


class TestDedupWindow:
    def test_update_replay_returns_recorded_result_without_reapplying(self):
        services = _built_service()
        body = rpc.encode_update_batch(make_messages(20, 50))
        first = dispatch_request(services, 0, rpc.OP_UPDATE_BATCH, body, 10)
        charged = services[0].simulated_seconds()
        replay = dispatch_request(services, 0, rpc.OP_UPDATE_BATCH, body, 10)
        assert replay == first
        assert services[0].simulated_seconds() == charged  # no double charge

    def test_stale_request_ids_are_rejected(self):
        services = _built_service()
        body = rpc.encode_update_batch(make_messages(10, 50))
        dispatch_request(services, 0, rpc.OP_UPDATE_BATCH, body, 10)
        with pytest.raises(StaleRequestError):
            dispatch_request(services, 0, rpc.OP_UPDATE_BATCH, body, 9)

    def test_replay_with_mismatched_opcode_is_rejected(self):
        services = _built_service()
        dispatch_request(
            services,
            0,
            rpc.OP_UPDATE_BATCH,
            rpc.encode_update_batch(make_messages(10, 50)),
            10,
        )
        with pytest.raises(StaleRequestError):
            dispatch_request(
                services,
                0,
                rpc.OP_QUERY_BATCH,
                rpc.encode_query_batch(make_queries(4)),
                10,
            )

    def test_query_replay_reencodes_identical_results(self):
        services = _built_service()
        queries = make_queries(6)
        body = rpc.encode_query_batch(queries)
        first = dispatch_request(services, 0, rpc.OP_QUERY_BATCH, body, 20)
        charged = services[0].simulated_seconds()
        replay = dispatch_request(services, 0, rpc.OP_QUERY_BATCH, body, 20)
        assert services[0].simulated_seconds() == charged
        # The replay is re-encoded through the stateful stream encoder, so
        # the bytes differ — but a decoder tracking the stream recovers the
        # exact same results.
        decoder = NeighborStreamDecoder()
        import struct

        makespan_size = struct.calcsize("!d")
        decoded_first = decoder.decode(memoryview(first)[makespan_size:], queries)
        decoded_replay = decoder.decode(memoryview(replay)[makespan_size:], queries)
        assert decoded_first == decoded_replay

"""Shared test helpers, imported explicitly (``from helpers import ...``).

These used to live in ``tests/conftest.py``, but ``from conftest import``
resolves through ``sys.path`` and could pick up ``benchmarks/conftest.py``
instead, depending on which directory pytest inserted first.  A dedicated
module keeps the import unambiguous.
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id


def make_update(
    index: int,
    x: float,
    y: float,
    vx: float = 1.0,
    vy: float = 0.0,
    t: float = 0.0,
) -> UpdateMessage:
    """Convenience constructor used across many tests."""
    return UpdateMessage(
        object_id=format_object_id(index),
        location=Point(x, y),
        velocity=Vector(vx, vy),
        timestamp=t,
    )

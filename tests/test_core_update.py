"""Tests for the update procedure (Algorithm 1)."""

import pytest

from repro.core.update import UpdateOutcome, UpdateStats, UpdateResult
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage
from repro.tables.affiliation_table import Role

from helpers import make_update


class TestNewObjects:
    def test_first_update_creates_leader(self, indexer):
        result = indexer.update(make_update(1, 10.0, 10.0))
        assert result.outcome is UpdateOutcome.NEW_LEADER
        assert indexer.affiliation_table.role_of(result.object_id).role is Role.LEADER
        assert indexer.location_table.latest(result.object_id) is not None

    def test_new_leader_is_spatially_indexed(self, indexer):
        message = make_update(1, 10.0, 10.0)
        indexer.update(message)
        cell = indexer.spatial_table.cell_for(message.location)
        assert message.object_id in indexer.spatial_table.objects_in_cell(cell)

    def test_object_and_school_counters(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0))
        indexer.update(make_update(2, 20.0, 20.0))
        assert indexer.object_count == 2
        assert indexer.school_count == 2


class TestLeaderUpdates:
    def test_leader_update_moves_spatial_entry(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, t=0.0))
        result = indexer.update(make_update(1, 90.0, 90.0, t=1.0))
        assert result.outcome is UpdateOutcome.LEADER_UPDATED
        old_cell = indexer.spatial_table.cell_for(Point(10.0, 10.0))
        new_cell = indexer.spatial_table.cell_for(Point(90.0, 90.0))
        assert "obj0000000001" not in indexer.spatial_table.objects_in_cell(old_cell)
        assert "obj0000000001" in indexer.spatial_table.objects_in_cell(new_cell)

    def test_leader_update_appends_location_history(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, t=0.0))
        indexer.update(make_update(1, 11.0, 10.0, t=1.0))
        history = indexer.location_table.recent_history("obj0000000001")
        assert len(history) == 2
        assert history[0].timestamp == 1.0

    def test_leader_count_unchanged_by_leader_update(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0, t=0.0))
        indexer.update(make_update(1, 11.0, 10.0, t=1.0))
        assert indexer.school_count == 1


def build_school(indexer, leader_pos=(10.0, 10.0), follower_offset=(2.0, 0.0)):
    """Create a two-member school: leader obj1, follower obj2."""
    leader = make_update(1, *leader_pos, vx=1.0, vy=0.0, t=0.0)
    follower_pos = (leader_pos[0] + follower_offset[0], leader_pos[1] + follower_offset[1])
    follower = make_update(2, *follower_pos, vx=1.0, vy=0.0, t=0.0)
    indexer.update(leader)
    indexer.update(follower)
    indexer.run_clustering(now=0.5)
    return leader, follower


class TestFollowerUpdates:
    def test_clustering_creates_follower(self, indexer):
        build_school(indexer)
        roles = {
            oid: indexer.affiliation_table.role_of(oid).role
            for oid in ("obj0000000001", "obj0000000002")
        }
        assert list(roles.values()).count(Role.LEADER) == 1
        assert list(roles.values()).count(Role.FOLLOWER) == 1
        assert indexer.school_count == 1

    def test_follower_update_within_threshold_is_shed(self, indexer):
        build_school(indexer)
        # Followers co-move with the leader: at t=2 the leader (v=1,0) is
        # expected at x+2, the follower reports exactly its displaced spot.
        follower_role = indexer.affiliation_table.role_of("obj0000000002")
        if follower_role.role is Role.LEADER:
            follower_id, leader_id = "obj0000000001", "obj0000000002"
        else:
            follower_id, leader_id = "obj0000000002", "obj0000000001"
        leader_record = indexer.location_table.latest(leader_id)
        displacement = indexer.affiliation_table.role_of(follower_id).displacement
        expected = leader_record.extrapolated(2.0).displaced(displacement)
        message = UpdateMessage(follower_id, expected, Vector(1.0, 0.0), 2.0)
        result = indexer.update(message)
        assert result.outcome is UpdateOutcome.SHED
        assert result.estimation_error == pytest.approx(0.0, abs=1e-9)

    def test_shed_update_writes_nothing(self, indexer):
        build_school(indexer)
        follower_role = indexer.affiliation_table.role_of("obj0000000002")
        follower_id = "obj0000000002" if follower_role.role is Role.FOLLOWER else "obj0000000001"
        leader_id = "obj0000000001" if follower_id == "obj0000000002" else "obj0000000002"
        history_before = len(indexer.location_table.recent_history(follower_id))
        leader_record = indexer.location_table.latest(leader_id)
        displacement = indexer.affiliation_table.role_of(follower_id).displacement
        expected = leader_record.extrapolated(2.0).displaced(displacement)
        indexer.update(UpdateMessage(follower_id, expected, Vector(1.0, 0.0), 2.0))
        assert len(indexer.location_table.recent_history(follower_id)) == history_before

    def test_follower_departing_is_promoted(self, indexer):
        build_school(indexer)
        follower_role = indexer.affiliation_table.role_of("obj0000000002")
        follower_id = "obj0000000002" if follower_role.role is Role.FOLLOWER else "obj0000000001"
        leader_id = "obj0000000001" if follower_id == "obj0000000002" else "obj0000000002"
        # Report a position far away from the estimate (beyond epsilon=5).
        result = indexer.update(
            UpdateMessage(follower_id, Point(80.0, 80.0), Vector(-1.0, 0.0), 2.0)
        )
        assert result.outcome is UpdateOutcome.PROMOTED
        assert indexer.affiliation_table.role_of(follower_id).role is Role.LEADER
        assert follower_id not in indexer.affiliation_table.followers_of(leader_id)
        assert indexer.school_count == 2

    def test_promoted_follower_is_spatially_indexed(self, indexer):
        build_school(indexer)
        follower_role = indexer.affiliation_table.role_of("obj0000000002")
        follower_id = "obj0000000002" if follower_role.role is Role.FOLLOWER else "obj0000000001"
        indexer.update(UpdateMessage(follower_id, Point(80.0, 80.0), Vector(0.0, 0.0), 2.0))
        cell = indexer.spatial_table.cell_for(Point(80.0, 80.0))
        assert follower_id in indexer.spatial_table.objects_in_cell(cell)

    def test_schools_disabled_never_sheds(self, small_config):
        from repro.baselines.no_school import build_no_school_indexer

        indexer = build_no_school_indexer(small_config)
        build_school(indexer)
        follower_role = indexer.affiliation_table.role_of("obj0000000002")
        # With schools disabled the update path still works, but a follower
        # created by an explicit clustering pass departs immediately.
        if follower_role.role is Role.FOLLOWER:
            result = indexer.update(
                UpdateMessage("obj0000000002", Point(12.0, 10.0), Vector(1.0, 0.0), 1.0)
            )
            assert result.outcome is UpdateOutcome.PROMOTED


class TestUpdateStats:
    def test_stats_accumulate(self, indexer):
        indexer.update(make_update(1, 10.0, 10.0))
        indexer.update(make_update(1, 11.0, 10.0, t=1.0))
        stats = indexer.update_stats
        assert stats.total == 2
        assert stats.new_leaders == 1
        assert stats.leader_updates == 1
        assert stats.shed_ratio == 0.0

    def test_shed_ratio_and_mean_error(self):
        stats = UpdateStats()
        stats.record(UpdateResult("a", UpdateOutcome.SHED, estimation_error=2.0))
        stats.record(UpdateResult("b", UpdateOutcome.LEADER_UPDATED))
        assert stats.shed_ratio == pytest.approx(0.5)
        assert stats.mean_estimation_error == pytest.approx(2.0)

    def test_empty_stats(self):
        stats = UpdateStats()
        assert stats.shed_ratio == 0.0
        assert stats.mean_estimation_error == 0.0

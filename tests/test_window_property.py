"""Pipelined windows: byte-identical reports at any in-flight depth.

The headline property of the windowed scatter-gather engine: the in-flight
window size ``W`` is a pure wall-clock knob.  Every simulated number — the
whole ``to_report()`` rendering — must stay byte-identical across
``W ∈ {1, 2, 8}``, worker counts, backends, and chaos, because per-shard
FIFO order is preserved and makespans are resolved against the round that
produced them.  The machine-independent overlap counters are pinned here
too: ``blocking_waits`` must equal ``ceil(rounds / W)``, which is what
makes the "waits per batch fall like 1/W" claim testable on any host.
"""

import random

import pytest

from repro.bigtable.tablet import TabletOptions
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.server import rpc
from repro.server.chaos import ChaosPlan
from repro.server.loadtest import ScaleOutLoadTest
from repro.server.scaleout import ScaleOutCluster
from repro.server.worker import ShardRecipe, dispatch_request
from repro.workload.queries import NNQuery

NUM_SHARDS = 4
NUM_OBJECTS = 200
BATCH_SIZE = 64
NUM_ROUNDS = 9  # 576 messages / batch 64 — W=8 leaves a 1-round tail


def make_messages(count, num_objects, seed=99):
    rng = random.Random(seed)
    return [
        UpdateMessage(
            object_id=format_object_id(rng.randrange(num_objects)),
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            velocity=Vector(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)),
            timestamp=float(index),
        )
        for index in range(count)
    ]


def make_queries(count, seed=7, k=5):
    rng = random.Random(seed)
    return [
        NNQuery(
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            k=k,
        )
        for _ in range(count)
    ]


MESSAGES = make_messages(NUM_ROUNDS * BATCH_SIZE, NUM_OBJECTS)
QUERIES = make_queries(60)


def _cluster(backend, workers, window=1, policy=None, retry=None, **kwargs):
    return ScaleOutCluster.build(
        NUM_SHARDS,
        backend=backend,
        num_workers=workers,
        window=window,
        supervision_policy=policy,
        retry_policy=retry,
        num_objects=NUM_OBJECTS,
        seed=17,
        num_servers=2,
        **kwargs,
    )


def _run_updates(cluster, chaos_plan=None):
    test = ScaleOutLoadTest(
        cluster, failure_probability=0.0, seed=404, chaos_plan=chaos_plan
    )
    return test.run_update_batches(MESSAGES, batch_size=BATCH_SIZE)


def _run_mixed(cluster, chaos_plan=None):
    test = ScaleOutLoadTest(
        cluster, failure_probability=0.01, seed=404, chaos_plan=chaos_plan
    )
    return test.run_mixed_batches(MESSAGES, QUERIES, batch_size=BATCH_SIZE)


@pytest.fixture(scope="module")
def update_reference():
    """Unpipelined, unsupervised, in-process update-only rendering."""
    cluster = _cluster("inprocess", 1, window=1)
    try:
        return _run_updates(cluster).to_report()
    finally:
        cluster.close()


@pytest.fixture(scope="module")
def mixed_reference():
    """Unpipelined mixed rendering (query rounds barrier the window)."""
    cluster = _cluster("inprocess", 1, window=1)
    try:
        return _run_mixed(cluster).to_report()
    finally:
        cluster.close()


# --------------------------------------------------------------------------
# The acceptance property: W is invisible to every simulated number
# --------------------------------------------------------------------------
class TestWindowByteIdentical:
    @pytest.mark.parametrize("window", [2, 8])
    @pytest.mark.parametrize(
        "backend,workers",
        [("inprocess", 1), ("process", 1), ("process", 2), ("process", 4)],
    )
    def test_update_stream_matches_window1(
        self, backend, workers, window, update_reference
    ):
        cluster = _cluster(backend, workers, window=window)
        try:
            assert _run_updates(cluster).to_report() == update_reference
        finally:
            cluster.close()

    @pytest.mark.parametrize("window", [2, 8])
    def test_disk_backend_matches_window1(self, window, update_reference):
        cluster = _cluster("disk", 2, window=window)
        try:
            assert _run_updates(cluster).to_report() == update_reference
        finally:
            cluster.close()

    @pytest.mark.parametrize("window", [2, 8])
    def test_mixed_stream_matches_window1(self, window, mixed_reference):
        cluster = _cluster("process", 2, window=window)
        try:
            assert _run_mixed(cluster).to_report() == mixed_reference
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Machine-independent overlap counters
# --------------------------------------------------------------------------
class TestOverlapCounters:
    @pytest.mark.parametrize(
        "window,expected_waits", [(1, 9), (2, 5), (8, 2)]
    )
    def test_blocking_waits_are_ceil_rounds_over_window(
        self, window, expected_waits
    ):
        # ceil(9 / W): the drain count is a pure function of the batch
        # stream and W, so this asserts identically on any host.
        cluster = _cluster("process", 2, window=window)
        try:
            _run_updates(cluster)
            pipeline = cluster.metrics_snapshot()
            assert pipeline["rounds_enqueued"] == NUM_ROUNDS
            assert pipeline["blocking_waits"] == expected_waits
            assert pipeline["inflight_rounds"] == 0
        finally:
            cluster.close()

    def test_query_broadcasts_barrier_the_window(self):
        cluster = _cluster("process", 2, window=8)
        try:
            cluster.enqueue_update_batch(MESSAGES[:BATCH_SIZE], round_index=0)
            assert cluster.metrics_snapshot()["inflight_rounds"] == 1
            cluster.submit_query_batch(QUERIES[:8])
            pipeline = cluster.metrics_snapshot()
            assert pipeline["inflight_rounds"] == 0
            assert pipeline["barrier_drains"] == 1
        finally:
            cluster.close()

    def test_window_snapshot_reports_configured_depth(self):
        cluster = _cluster("process", 1, window=2)
        try:
            assert cluster.metrics_snapshot()["window"] == 2
            cluster.set_window(1)
            assert cluster.metrics_snapshot()["window"] == 1
        finally:
            cluster.close()

    def test_set_window_validates_against_dedup_depth(self):
        from repro.errors import ConfigurationError

        cluster = _cluster("process", 1, window=1)
        try:
            with pytest.raises(ConfigurationError):
                cluster.set_window(0)
            with pytest.raises(ConfigurationError):
                # The worker-side dedup window (depth 8 by default) must be
                # able to replay a full in-flight window.
                cluster.set_window(64)
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Chaos × window: SIGKILL mid-window replays the whole window exactly once
# --------------------------------------------------------------------------
class TestWindowChaos:
    @pytest.mark.parametrize("window", [1, 2, 8])
    def test_sigkill_every_worker_is_byte_invisible_at_any_window(
        self, window, mixed_reference
    ):
        workers = 2
        num_batches = max(
            -(-len(MESSAGES) // BATCH_SIZE), -(-len(QUERIES) // BATCH_SIZE), 2
        )
        plan = ChaosPlan.seeded(
            29, num_batches=num_batches, num_workers=workers, kills=workers
        )
        cluster = _cluster(
            "disk",
            workers,
            window=window,
            policy="respawn",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
        )
        try:
            result = _run_mixed(cluster, chaos_plan=plan)
            assert result.to_report() == mixed_reference
            snapshot = cluster.recovery_snapshot()
            assert snapshot["recoveries"] == workers
            assert snapshot["lost_updates"] == 0
            # Regression: the raise site wraps OS errors once; recovery
            # reasons must never read "send failed: send failed: ...".
            for reason in snapshot["reasons"]:
                assert "send failed: send failed" not in reason
                assert "receive failed: receive failed" not in reason
        finally:
            cluster.close()

    def test_kill_with_full_window_in_flight_replays_exactly_once(self):
        # SIGKILL the worker while four rounds are genuinely in flight (no
        # barrier first), then keep enqueueing and drain: the supervisor
        # heals the worker and the engine resends the *whole* uncollected
        # window with the original pinned request ids, so the replay is
        # exactly-once — every update lands, none twice.
        cluster = _cluster(
            "disk",
            1,
            window=8,
            policy="respawn",
            retry=rpc.RetryPolicy(call_deadline_s=15.0),
        )
        try:
            batches = [
                MESSAGES[start : start + BATCH_SIZE]
                for start in range(0, len(MESSAGES), BATCH_SIZE)
            ]
            for index, batch in enumerate(batches):
                cluster.enqueue_update_batch(batch, round_index=index)
                if index == 3:
                    assert cluster.metrics_snapshot()["inflight_rounds"] == 4
                    cluster.backend.pool.kill_worker(0)
            cluster.drain_update_window()
            snapshot = cluster.recovery_snapshot()
            assert snapshot["recoveries"] == 1
            assert snapshot["lost_updates"] == 0
            assert cluster.pipeline_processed == len(MESSAGES)
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Worker-side dedup depth: sized to replay a whole window
# --------------------------------------------------------------------------
def _built_service(**recipe_kwargs):
    services = {}
    recipe = ShardRecipe(
        num_shards=1,
        shard_id=0,
        num_objects=50,
        seed=3,
        num_servers=1,
        **recipe_kwargs,
    )
    dispatch_request(
        services, 0, rpc.OP_CALL, rpc.encode_call("build_indexer", (recipe,), {}), 1
    )
    return services


class TestDedupDepth:
    def test_window_deep_replay_returns_recorded_results(self):
        # Apply eight batches (a full default window), then replay every
        # one of them — each must come back recorded, none re-applied.
        services = _built_service()
        bodies = [
            rpc.encode_update_batch(make_messages(10, 50, seed=index))
            for index in range(8)
        ]
        firsts = [
            dispatch_request(services, 0, rpc.OP_UPDATE_BATCH, body, 10 + index)
            for index, body in enumerate(bodies)
        ]
        charged = services[0].simulated_seconds()
        for index, body in enumerate(bodies):
            replay = dispatch_request(
                services, 0, rpc.OP_UPDATE_BATCH, body, 10 + index
            )
            assert replay == firsts[index]
        assert services[0].simulated_seconds() == charged

    def test_requests_fall_out_of_a_bounded_window(self):
        from repro.errors import StaleRequestError

        services = _built_service(dedup_window=2)
        for index in range(4):
            dispatch_request(
                services,
                0,
                rpc.OP_UPDATE_BATCH,
                rpc.encode_update_batch(make_messages(5, 50, seed=index)),
                10 + index,
            )
        # Ids 12 and 13 are still in the depth-2 window; 10 fell out.
        dispatch_request(
            services,
            0,
            rpc.OP_UPDATE_BATCH,
            rpc.encode_update_batch(make_messages(5, 50, seed=2)),
            12,
        )
        with pytest.raises(StaleRequestError):
            dispatch_request(
                services,
                0,
                rpc.OP_UPDATE_BATCH,
                rpc.encode_update_batch(make_messages(5, 50, seed=0)),
                10,
            )

    def test_build_sizes_dedup_to_the_window(self):
        cluster = _cluster("inprocess", 1, window=16)
        try:
            assert all(
                recipe.dedup_window >= 16 for recipe in cluster.recipes
            )
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Idle flush hints: deterministic maintenance between applies
# --------------------------------------------------------------------------
class TestIdleFlushHint:
    OPTIONS = TabletOptions(memtable_flush_rows=512)

    def test_hint_flushes_memtables_near_threshold(self):
        services = _built_service(
            tablet_options=self.OPTIONS, idle_flush_fraction=0.1
        )
        baseline_runs = services[0].indexer.emulator.run_count()
        # 40 updates leave ~90-130 log records per tablet: above the hint
        # threshold (51) but far below the flush threshold (512) — only
        # the idle hint can have flushed these.
        dispatch_request(
            services,
            0,
            rpc.OP_UPDATE_BATCH,
            rpc.encode_update_batch(make_messages(40, 50)),
            10,
        )
        assert services[0].indexer.emulator.run_count() > baseline_runs

    def test_hint_is_off_by_default(self):
        services = _built_service(tablet_options=self.OPTIONS)
        dispatch_request(
            services,
            0,
            rpc.OP_UPDATE_BATCH,
            rpc.encode_update_batch(make_messages(40, 50)),
            10,
        )
        assert services[0].indexer.emulator.run_count() == 0

    @pytest.mark.parametrize("window", [1, 8])
    def test_hinted_reports_stay_byte_identical_across_windows(self, window):
        reference = None
        cluster = _cluster(
            "inprocess",
            1,
            window=1,
            tablet_options=self.OPTIONS,
            idle_flush_fraction=0.5,
        )
        try:
            reference = _run_updates(cluster).to_report()
        finally:
            cluster.close()
        cluster = _cluster(
            "process",
            2,
            window=window,
            tablet_options=self.OPTIONS,
            idle_flush_fraction=0.5,
        )
        try:
            assert _run_updates(cluster).to_report() == reference
        finally:
            cluster.close()

    def test_fraction_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ShardRecipe(num_objects=10, idle_flush_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ShardRecipe(num_objects=10, idle_flush_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ShardRecipe(num_objects=10, dedup_window=0)

"""The Spatial Index Table (Section 3.2.1).

Row key: the Hilbert-curve key of the storage-level cell containing an
object.  Columns: one qualifier per object id stored under a category family
(the paper's Figure 5 shows "Bus" and "User" columns; we default everything
to the ``id`` family but allow a category).  Only *leaders* are stored here
once object schools are active (Section 3.1.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.bigtable.backend import StorageBackend
from repro.bigtable.scan import ScanPlan
from repro.bigtable.table import ColumnFamily, Table
from repro.bigtable.tablet import Tablet
from repro.errors import SchemaError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.model import ObjectId
from repro.spatial.cell import CellId, WORLD_UNIT_BOX

#: Default column family for object-id columns.
ID_FAMILY = "id"

#: Bound on the per-table location -> storage-cell memo.  8k entries cover a
#: whole client batch of repeated object locations many times over; when the
#: memo fills it is simply dropped (re-deriving a cell is cheap, keeping an
#: LRU order is not).
_CELL_MEMO_MAX = 8192


class SpatialIndexTable:
    """Wrapper around the BigTable table keyed by spatial index."""

    def __init__(
        self,
        emulator: StorageBackend,
        name: str = "spatial_index",
        storage_level: int = 16,
        world: BoundingBox = WORLD_UNIT_BOX,
        extra_families: Sequence[str] = (),
    ) -> None:
        if storage_level <= 0:
            raise SchemaError("storage_level must be positive")
        self.storage_level = storage_level
        self.world = world
        families = [ColumnFamily(ID_FAMILY, in_memory=True, max_versions=1)]
        families.extend(
            ColumnFamily(extra, in_memory=True, max_versions=1)
            for extra in extra_families
        )
        self._table = emulator.create_table(name, families)
        #: Memo of ``(x, y) -> CellId`` for the fixed storage level/world of
        #: this table.  One update message derives its storage cell several
        #: times on the way down (server routing, the spatial-index write,
        #: the move's old-cell lookup), and every derivation inside a commit
        #: buffer or a :class:`~repro.core.nn_search.QueryBatchContext`
        #: repeats locations across messages; the memo collapses them all to
        #: a dict hit.  Entries never go stale — the mapping is a pure
        #: function of the location.
        self._cell_memo: Dict[Tuple[float, float], CellId] = {}

    @property
    def table(self) -> Table:
        """The backing BigTable table (tablet routing / group commits)."""
        return self._table

    # ------------------------------------------------------------------
    # Key helpers
    # ------------------------------------------------------------------
    def cell_for(self, location: Point) -> CellId:
        """Storage-level cell containing ``location`` (memoized)."""
        memo = self._cell_memo
        memo_key = (location.x, location.y)
        cell = memo.get(memo_key)
        if cell is None:
            cell = CellId.from_point(location, self.storage_level, self.world)
            if len(memo) >= _CELL_MEMO_MAX:
                memo.clear()
            memo[memo_key] = cell
        return cell

    def row_key_for(self, location: Point) -> str:
        """Row key of the storage-level cell containing ``location``.

        Both hops are cached: the cell through the table's location memo and
        the key token through the cell codec cache (interned strings).
        """
        return self.cell_for(location).key()

    def scan_plan_for_cell(self, cell: CellId) -> ScanPlan:
        """Compile the key-range scan a probe of ``cell`` will execute.

        Routing only — nothing is charged until the plan runs.
        """
        start, end = cell.key_range()
        return self._table.plan_scan(start, end)

    def tablet_for_location(self, location: Point) -> Tablet:
        """The spatial-index tablet owning ``location``'s storage row.

        The server layer pins query batches to the front-end that owns
        this tablet (``ServerCluster.submit_query_batch``).
        """
        return self._table.tablet_for_key(self.row_key_for(location))

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add(
        self,
        object_id: ObjectId,
        location: Point,
        timestamp: float,
        family: str = ID_FAMILY,
    ) -> CellId:
        """Insert (or move within the same cell) an object at ``location``."""
        cell = self.cell_for(location)
        self._table.write(cell.key(), family, object_id, location, timestamp)
        return cell

    def remove(
        self, object_id: ObjectId, location: Point, family: str = ID_FAMILY
    ) -> bool:
        """Remove an object from the cell containing ``location``."""
        cell = self.cell_for(location)
        return self._table.delete_cell(cell.key(), family, object_id)

    def remove_from_cell(
        self, object_id: ObjectId, cell: CellId, family: str = ID_FAMILY
    ) -> bool:
        """Remove an object from an explicitly known cell."""
        return self._table.delete_cell(cell.key(), family, object_id)

    def move(
        self,
        object_id: ObjectId,
        old_location: Optional[Point],
        new_location: Point,
        timestamp: float,
        family: str = ID_FAMILY,
    ) -> Tuple[Optional[CellId], CellId]:
        """Algorithm 1 line 3: delete the old spatial-index entry, add the new.

        When the object stays inside the same storage cell the delete is
        skipped and the existing column value is simply overwritten.
        Returns ``(old_cell, new_cell)``.
        """
        new_cell = self.cell_for(new_location)
        old_cell = None
        if old_location is not None:
            old_cell = self.cell_for(old_location)
            if old_cell != new_cell:
                self._table.delete_cell(old_cell.key(), family, object_id)
        self._table.write(new_cell.key(), family, object_id, new_location, timestamp)
        return old_cell, new_cell

    def batch_remove(
        self, entries: Sequence[Tuple[ObjectId, Point]], family: str = ID_FAMILY
    ) -> None:
        """Batch-delete several objects (used by the clustering pass)."""
        deletes = [
            (self.cell_for(location).key(), family, object_id)
            for object_id, location in entries
        ]
        if deletes:
            self._table.batch_delete(deletes)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def objects_in_cell(
        self, cell: CellId, family: str = ID_FAMILY
    ) -> Dict[ObjectId, Point]:
        """Objects stored under any storage-level row inside ``cell``.

        ``cell`` may be at the storage level (single row) or coarser (range
        scan over the cell's contiguous key range) — the access path behind
        both NN cells (Section 3.4.1) and clustering cells (Section 3.3.2).
        The key-range scan executes through the tablet scanner, so repeated
        probes of a quiet cell are priced through the block cache.
        """
        start, end = cell.key_range()
        rows = self._table.scan(start, end)
        results: Dict[ObjectId, Point] = {}
        for _, families in rows:
            for object_id, cells in families.get(family, {}).items():
                if cells:
                    results[object_id] = cells[0].value
        return results

    def count_in_cell(self, cell: CellId, family: str = ID_FAMILY) -> int:
        """Number of objects indexed inside ``cell``.

        Used by FLAG to probe local density (Algorithm 3, line 6).  Counts
        rows' columns via a metadata-priced scan.
        """
        start, end = cell.key_range()
        rows = self._table.scan(start, end)
        return sum(len(families.get(family, {})) for _, families in rows)

    def approximate_count_in_cell(self, cell: CellId) -> int:
        """Cheap density probe: number of non-empty storage rows in ``cell``.

        FLAG only needs an order-of-magnitude estimate; counting rows avoids
        streaming the row contents.
        """
        start, end = cell.key_range()
        return self._table.count_range(start, end)

    def total_objects(self, family: str = ID_FAMILY) -> int:
        """Total number of indexed objects (administrative helper)."""
        rows = self._table.scan(None, None)
        return sum(len(families.get(family, {})) for _, families in rows)

    def row_count(self) -> int:
        """Number of non-empty storage cells."""
        return self._table.row_count()

"""The Affiliation Table (Section 3.1.1).

Row key: object id.  Two column families:

* ``lf`` — the L/F record.  A leader stores ``("L", chosen_timestamp)``;
  a follower stores ``("F", leader_id, displacement)`` where the displacement
  is the vector from the leader to the follower at the time it joined the
  school.  Fresh L/F records live in memory; an aged disk family exists for
  completeness.
* ``followers`` — present only on leader rows: one column per follower id
  whose value is the leader->follower displacement ("Follower Info").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bigtable.backend import StorageBackend
from repro.bigtable.table import ColumnFamily, Table
from repro.errors import RowNotFoundError, SchemaError
from repro.geometry.vector import Vector
from repro.model import ObjectId

LF_FAMILY = "lf"
LF_AGED_FAMILY = "lf-aged"
FOLLOWERS_FAMILY = "followers"
LF_QUALIFIER = "record"


class Role(enum.Enum):
    """Whether an object currently leads or follows a school."""

    LEADER = "leader"
    FOLLOWER = "follower"


@dataclass(frozen=True)
class LFRecord:
    """Decoded L/F record of one object."""

    role: Role
    timestamp: float
    leader_id: Optional[ObjectId] = None
    displacement: Optional[Vector] = None

    def __post_init__(self) -> None:
        if self.role is Role.FOLLOWER:
            if self.leader_id is None or self.displacement is None:
                raise SchemaError("follower L/F records need a leader and displacement")
        elif self.leader_id is not None or self.displacement is not None:
            raise SchemaError("leader L/F records must not carry follower fields")


class AffiliationTable:
    """Wrapper around the BigTable table that tracks schools."""

    def __init__(self, emulator: StorageBackend, name: str = "affiliation") -> None:
        families = [
            ColumnFamily(LF_FAMILY, in_memory=True, max_versions=1),
            ColumnFamily(LF_AGED_FAMILY, in_memory=False, max_versions=16),
            ColumnFamily(FOLLOWERS_FAMILY, in_memory=True, max_versions=1),
        ]
        self._table = emulator.create_table(name, families)

    @property
    def table(self) -> Table:
        """The backing BigTable table (tablet routing / group commits)."""
        return self._table

    # ------------------------------------------------------------------
    # L/F records
    # ------------------------------------------------------------------
    def set_leader(self, object_id: ObjectId, timestamp: float) -> None:
        """Label ``object_id`` as a leader (Algorithm 1, line 11)."""
        record = LFRecord(role=Role.LEADER, timestamp=timestamp)
        self._table.write(object_id, LF_FAMILY, LF_QUALIFIER, record, timestamp)

    def set_follower(
        self,
        object_id: ObjectId,
        leader_id: ObjectId,
        displacement: Vector,
        timestamp: float,
    ) -> None:
        """Label ``object_id`` as a follower of ``leader_id``."""
        if object_id == leader_id:
            raise SchemaError(f"object {object_id!r} cannot follow itself")
        record = LFRecord(
            role=Role.FOLLOWER,
            timestamp=timestamp,
            leader_id=leader_id,
            displacement=displacement,
        )
        self._table.write(object_id, LF_FAMILY, LF_QUALIFIER, record, timestamp)

    def role_of(self, object_id: ObjectId) -> Optional[LFRecord]:
        """L/F record of an object, or ``None`` for never-seen objects.

        This is the first storage access of every update (Algorithm 1,
        line 1).
        """
        cell = self._table.read_latest(object_id, LF_FAMILY, LF_QUALIFIER)
        if cell is None:
            return None
        return cell.value

    def batch_roles(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, LFRecord]:
        """L/F records of several objects in one batch read."""
        rows = self._table.batch_read(list(object_ids))
        results: Dict[ObjectId, LFRecord] = {}
        for object_id, families in rows.items():
            cells = families.get(LF_FAMILY, {}).get(LF_QUALIFIER, [])
            if cells:
                results[object_id] = cells[0].value
        return results

    def age_lf_records(self, cutoff_timestamp: float) -> int:
        """Move aged L/F records from the in-memory family to the disk family."""
        return self._table.age_out(LF_FAMILY, LF_AGED_FAMILY, cutoff_timestamp)

    # ------------------------------------------------------------------
    # Follower Info
    # ------------------------------------------------------------------
    def add_follower(
        self,
        leader_id: ObjectId,
        follower_id: ObjectId,
        displacement: Vector,
        timestamp: float,
    ) -> None:
        """Record ``follower_id`` (with its displacement) under ``leader_id``."""
        if leader_id == follower_id:
            raise SchemaError(f"object {leader_id!r} cannot follow itself")
        self._table.write(
            leader_id, FOLLOWERS_FAMILY, follower_id, displacement, timestamp
        )

    def remove_follower(self, leader_id: ObjectId, follower_id: ObjectId) -> bool:
        """Drop ``follower_id`` from the leader's Follower Info (line 10)."""
        return self._table.delete_cell(leader_id, FOLLOWERS_FAMILY, follower_id)

    def followers_of(self, leader_id: ObjectId) -> Dict[ObjectId, Vector]:
        """Follower id -> displacement map of one leader.

        Leaders with no followers (and unknown objects) return an empty map.
        """
        try:
            row = self._table.read_row(leader_id)
        except RowNotFoundError:
            return {}
        followers = row.get(FOLLOWERS_FAMILY, {})
        return {
            follower_id: cells[0].value
            for follower_id, cells in followers.items()
            if cells
        }

    def batch_followers(
        self, leader_ids: Sequence[ObjectId]
    ) -> Dict[ObjectId, Dict[ObjectId, Vector]]:
        """Follower Info of several leaders in one batch read."""
        rows = self._table.batch_read(list(leader_ids))
        results: Dict[ObjectId, Dict[ObjectId, Vector]] = {}
        for leader_id, families in rows.items():
            followers = families.get(FOLLOWERS_FAMILY, {})
            results[leader_id] = {
                follower_id: cells[0].value
                for follower_id, cells in followers.items()
                if cells
            }
        return results

    def clear_followers(self, leader_id: ObjectId) -> int:
        """Remove every Follower Info column of a leader.

        Used when a leader is merged into another school and stops being a
        leader itself (Section 3.3.2).  Returns the number of followers
        removed; charged as one batch write.
        """
        followers = self.followers_of(leader_id)
        if not followers:
            return 0
        deletes = [
            (leader_id, FOLLOWERS_FAMILY, follower_id) for follower_id in followers
        ]
        self._table.batch_delete(deletes)
        return len(deletes)

    # ------------------------------------------------------------------
    # Batch rewrites used by the clustering pass
    # ------------------------------------------------------------------
    def batch_apply(
        self,
        lf_updates: Sequence[Tuple[ObjectId, LFRecord]],
        follower_updates: Sequence[Tuple[ObjectId, ObjectId, Vector]],
        follower_deletes: Sequence[Tuple[ObjectId, ObjectId]],
        timestamp: float,
    ) -> None:
        """Apply the clustering pass's affiliation rewrites in batched RPCs.

        ``lf_updates`` rewrites L/F records, ``follower_updates`` adds
        ``(leader, follower, displacement)`` columns and ``follower_deletes``
        drops ``(leader, follower)`` columns.
        """
        mutations = [
            (object_id, LF_FAMILY, LF_QUALIFIER, record, timestamp)
            for object_id, record in lf_updates
        ]
        mutations.extend(
            (leader_id, FOLLOWERS_FAMILY, follower_id, displacement, timestamp)
            for leader_id, follower_id, displacement in follower_updates
        )
        if mutations:
            self._table.batch_write(mutations)
        deletes = [
            (leader_id, FOLLOWERS_FAMILY, follower_id)
            for leader_id, follower_id in follower_deletes
        ]
        if deletes:
            self._table.batch_delete(deletes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def leader_ids(self) -> List[ObjectId]:
        """Ids of every object currently labelled a leader (test helper)."""
        leaders = []
        for object_id in self._table.all_keys():
            cell = self._table.read_latest(
                object_id, LF_FAMILY, LF_QUALIFIER, _charge=False
            )
            if cell is not None and cell.value.role is Role.LEADER:
                leaders.append(object_id)
        return leaders

    def object_count(self) -> int:
        """Number of objects with an affiliation row."""
        return self._table.row_count()

"""MOIST's three BigTable schemas (Section 3.1).

* :class:`LocationTable` — per-object timestamped location records, freshest
  versions in an in-memory column, aged versions in disk columns.
* :class:`SpatialIndexTable` — spatial cell key -> ids of the *leaders*
  located in that cell.
* :class:`AffiliationTable` — leader/follower (L/F) records plus, for each
  leader, its Follower Info (follower id -> displacement vector).
"""

from repro.tables.location_table import LocationTable
from repro.tables.spatial_index_table import SpatialIndexTable
from repro.tables.affiliation_table import AffiliationTable, LFRecord, Role

__all__ = [
    "LocationTable",
    "SpatialIndexTable",
    "AffiliationTable",
    "LFRecord",
    "Role",
]

"""The Location Table (Section 3.1.2).

Row key: object id.  One in-memory column family holds the ``m`` most recent
location records; aged records are periodically compressed into a chain of
disk column families (``aged-0``, ``aged-1``, ...) by :meth:`age_out`, and the
oldest disk column is drained to the PPP archiver.
"""

from __future__ import annotations

from sys import intern as _intern
from typing import Dict, List, Optional, Sequence

from repro.bigtable.backend import StorageBackend
from repro.bigtable.cost import OpKind
from repro.bigtable.table import ColumnFamily, Table
from repro.errors import RowNotFoundError, SchemaError
from repro.model import LocationRecord, ObjectId

#: Column family holding fresh (in-memory) location records.
FRESH_FAMILY = "loc"
#: Qualifier under which the record versions are stored.
RECORD_QUALIFIER = "record"


class LocationTable:
    """Wrapper around the BigTable table that stores location records."""

    def __init__(
        self,
        emulator: StorageBackend,
        name: str = "location",
        memory_records: int = 8,
        disk_columns: int = 2,
        disk_column_versions: int = 64,
    ) -> None:
        if memory_records <= 0:
            raise SchemaError("memory_records must be positive")
        if disk_columns < 1:
            raise SchemaError("the Location Table needs at least one disk column")
        self.memory_records = memory_records
        self.disk_columns = disk_columns
        families = [
            ColumnFamily(FRESH_FAMILY, in_memory=True, max_versions=memory_records)
        ]
        for index in range(disk_columns):
            families.append(
                ColumnFamily(
                    self.disk_family(index),
                    in_memory=False,
                    max_versions=disk_column_versions,
                )
            )
        self._table = emulator.create_table(name, families)

    @staticmethod
    def disk_family(index: int) -> str:
        """Name of the ``index``-th aged disk column family."""
        return f"aged-{index}"

    @property
    def table(self) -> Table:
        """The backing BigTable table (tablet routing / group commits)."""
        return self._table

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_record(self, object_id: ObjectId, record: LocationRecord) -> None:
        """Append a location record for ``object_id`` (Algorithm 1, line 2).

        The row key is interned: every update of an object re-presents the
        same id string, and interning lets the row dictionaries compare the
        repeats by pointer instead of by characters.
        """
        self._table.write(
            _intern(object_id), FRESH_FAMILY, RECORD_QUALIFIER, record, record.timestamp
        )

    def batch_add(self, entries: Sequence[tuple]) -> None:
        """Batch-append ``(object_id, record)`` pairs in one RPC."""
        mutations = [
            (_intern(object_id), FRESH_FAMILY, RECORD_QUALIFIER, record, record.timestamp)
            for object_id, record in entries
        ]
        if mutations:
            self._table.batch_write(mutations)

    def delete_object(self, object_id: ObjectId) -> bool:
        """Remove every record of an object."""
        return self._table.delete_row(object_id)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def latest(self, object_id: ObjectId) -> Optional[LocationRecord]:
        """Most recent record of ``object_id`` or ``None`` when unknown."""
        cell = self._table.read_latest(object_id, FRESH_FAMILY, RECORD_QUALIFIER)
        if cell is None:
            return None
        return cell.value

    def recent_history(self, object_id: ObjectId) -> List[LocationRecord]:
        """All in-memory records of ``object_id``, newest first."""
        cells = self._table.read_versions(object_id, FRESH_FAMILY, RECORD_QUALIFIER)
        return [cell.value for cell in cells]

    def batch_latest(
        self, object_ids: Sequence[ObjectId]
    ) -> Dict[ObjectId, LocationRecord]:
        """Latest records of several objects in one batch read."""
        rows = self._table.batch_read(list(object_ids))
        results: Dict[ObjectId, LocationRecord] = {}
        for object_id, families in rows.items():
            cells = families.get(FRESH_FAMILY, {}).get(RECORD_QUALIFIER, [])
            if cells:
                results[object_id] = cells[0].value
        return results

    def aged_history(self, object_id: ObjectId) -> List[LocationRecord]:
        """Records of ``object_id`` living in the disk columns, newest first."""
        records: List[LocationRecord] = []
        try:
            row = self._table.read_row(object_id)
        except RowNotFoundError:
            return records
        for index in range(self.disk_columns):
            cells = row.get(self.disk_family(index), {}).get(RECORD_QUALIFIER, [])
            records.extend(cell.value for cell in cells)
        records.sort(key=lambda record: record.timestamp, reverse=True)
        return records

    def full_history(self, object_id: ObjectId) -> List[LocationRecord]:
        """In-memory plus on-disk records of ``object_id``, newest first."""
        records = self.recent_history(object_id) + self.aged_history(object_id)
        records.sort(key=lambda record: record.timestamp, reverse=True)
        return records

    # ------------------------------------------------------------------
    # Aging
    # ------------------------------------------------------------------
    def age_out(self, cutoff_timestamp: float) -> int:
        """Move fresh records older than the cutoff into the first disk column.

        Returns the number of records moved.  The PPP archiver drains disk
        columns separately (Section 3.5).
        """
        return self._table.age_out(
            FRESH_FAMILY, self.disk_family(0), cutoff_timestamp
        )

    def drain_aged(
        self, disk_index: int, cutoff_timestamp: float
    ) -> List[tuple]:
        """Remove records older than the cutoff from a disk column and return
        them as ``(object_id, record)`` pairs.

        This is the hand-off point to the PPP archiver: once a record leaves
        the last disk column it only exists in the archive (Section 3.5).
        Charged as one scan plus one batch write over the affected rows.
        """
        family = self.disk_family(disk_index)
        drained: List[tuple] = []
        rewrites: List[tuple] = []
        for object_id, families in self._table.scan(None, None):
            cells = families.get(family, {}).get(RECORD_QUALIFIER, [])
            aged = [cell for cell in cells if cell.timestamp < cutoff_timestamp]
            if not aged:
                continue
            for cell in aged:
                drained.append((object_id, cell.value))
            rewrites.append((object_id, cutoff_timestamp))
        # The rewrite loop manages its own storage charging (one batch write
        # below); batch its commit-log fsync accounting the same way —
        # without this every rewritten cell would bill an individual fsync.
        with self._table.deferred_log_syncs():
            for object_id, cutoff in rewrites:
                kept = [
                    cell
                    for cell in self._table.read_versions(
                        object_id, family, RECORD_QUALIFIER, _charge=False
                    )
                    if cell.timestamp >= cutoff
                ]
                self._table.delete_cell(
                    object_id, family, RECORD_QUALIFIER, _charge=False
                )
                for cell in reversed(kept):
                    self._table.write(
                        object_id,
                        family,
                        RECORD_QUALIFIER,
                        cell.value,
                        cell.timestamp,
                        _charge=False,
                    )
        if rewrites:
            self._table.counter.record(OpKind.BATCH_WRITE, rows=len(rewrites))
        return drained

    def demote_disk_column(self, index: int, cutoff_timestamp: float) -> int:
        """Move records older than the cutoff from disk column ``index`` to
        ``index + 1`` (the chain of progressively older disk columns in
        Figure 3)."""
        if index < 0 or index + 1 >= self.disk_columns:
            raise SchemaError(
                f"cannot demote from disk column {index}: only {self.disk_columns} exist"
            )
        return self._table.age_out(
            self.disk_family(index), self.disk_family(index + 1), cutoff_timestamp
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def object_count(self) -> int:
        """Number of objects with at least one record."""
        return self._table.row_count()

    def memory_record_count(self) -> int:
        """Number of records currently held in the in-memory column."""
        return self._table.memory_cell_count()

    def disk_record_count(self) -> int:
        """Number of records currently held in disk columns."""
        return self._table.disk_cell_count()

    def all_object_ids(self) -> List[ObjectId]:
        """Every object id present (test helper)."""
        return self._table.all_keys()

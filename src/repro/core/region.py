"""Region (range) queries over the Spatial Index Table.

The paper's applications need more than k-NN: the realtime-coupon scenario
("customers within 1,000 meters", Section 5) and location-based history
analysis are range queries over an arbitrary region.  A region query
approximates the region by a union of cells (Section 3.2.1), coalesces
curve-adjacent cells into contiguous key ranges, scans each range once, and
finally filters the retrieved leaders/followers against the exact region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MoistConfig
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.model import NeighborResult
from repro.spatial.covering import cover_box, cover_circle
from repro.tables.affiliation_table import AffiliationTable
from repro.tables.location_table import LocationTable
from repro.tables.spatial_index_table import SpatialIndexTable


@dataclass
class RegionQueryStats:
    """Work accounting of one region query."""

    cells_covered: int = 0
    leaders_scanned: int = 0
    followers_considered: int = 0
    results: int = 0


class RegionSearcher:
    """Executes rectangular and circular range queries."""

    def __init__(
        self,
        config: MoistConfig,
        spatial_table: SpatialIndexTable,
        affiliation_table: AffiliationTable,
        location_table: LocationTable,
    ) -> None:
        self.config = config
        self.spatial_table = spatial_table
        self.affiliation_table = affiliation_table
        self.location_table = location_table

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def objects_in_box(
        self,
        region: BoundingBox,
        at_time: Optional[float] = None,
        include_followers: bool = True,
        cover_level: Optional[int] = None,
        stats: Optional[RegionQueryStats] = None,
    ) -> List[NeighborResult]:
        """Every indexed object currently inside ``region``.

        ``at_time`` enables dead-reckoning of leaders to the query time;
        distances in the returned results are measured from the region
        centre so callers can rank hits without recomputing.  Note that the
        predictive variant extrapolates the objects found in the covered
        cells — an object far outside the region that *would* enter it by
        ``at_time`` is not discovered (callers who need that expand the
        region by the maximum expected displacement first).
        """
        if region.area < 0:
            raise QueryError("region must be a valid bounding box")
        level = self._cover_level(region, cover_level)
        cells = cover_box(region, level, self.config.world)
        return self._collect(cells, region, None, at_time, include_followers, stats)

    def objects_in_circle(
        self,
        center: Point,
        radius: float,
        at_time: Optional[float] = None,
        include_followers: bool = True,
        cover_level: Optional[int] = None,
        stats: Optional[RegionQueryStats] = None,
    ) -> List[NeighborResult]:
        """Every indexed object within ``radius`` of ``center``."""
        if radius <= 0:
            raise QueryError("radius must be positive")
        box = BoundingBox.from_center(center, radius, radius)
        level = self._cover_level(box, cover_level)
        cells = cover_circle(center, radius, level, self.config.world)
        return self._collect(
            cells, box, (center, radius), at_time, include_followers, stats
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cover_level(self, region: BoundingBox, cover_level: Optional[int]) -> int:
        if cover_level is not None:
            if not 1 <= cover_level <= self.config.storage_level:
                raise QueryError(
                    f"cover_level must be in [1, {self.config.storage_level}]"
                )
            return cover_level
        # Pick a level whose cells are comparable to the region size so the
        # covering stays small (a handful of range scans) without scanning
        # far beyond the region.
        extent = max(region.width, region.height, 1e-9)
        level = self.config.default_nn_level
        world_extent = max(self.config.world.width, self.config.world.height)
        while level > 1 and world_extent / (1 << level) < extent / 2:
            level -= 1
        return level

    def _collect(
        self,
        cells,
        box: BoundingBox,
        circle,
        at_time: Optional[float],
        include_followers: bool,
        stats: Optional[RegionQueryStats],
    ) -> List[NeighborResult]:
        if stats is None:
            stats = RegionQueryStats()
        stats.cells_covered = len(cells)
        center = box.center()
        results: List[NeighborResult] = []
        seen = set()
        for cell in cells:
            leaders = self.spatial_table.objects_in_cell(cell)
            stats.leaders_scanned += len(leaders)
            positions = dict(leaders)
            if at_time is not None and leaders:
                records = self.location_table.batch_latest(list(leaders))
                for object_id, stored in leaders.items():
                    record = records.get(object_id)
                    if record is not None:
                        positions[object_id] = record.extrapolated(at_time)
            candidates = [
                NeighborResult(
                    object_id=object_id,
                    location=position,
                    distance=position.distance_to(center),
                    is_leader=True,
                )
                for object_id, position in positions.items()
            ]
            if include_followers and leaders:
                follower_info = self.affiliation_table.batch_followers(list(leaders))
                for leader_id, followers in follower_info.items():
                    leader_position = positions[leader_id]
                    for follower_id, displacement in followers.items():
                        stats.followers_considered += 1
                        position = leader_position.displaced(displacement)
                        candidates.append(
                            NeighborResult(
                                object_id=follower_id,
                                location=position,
                                distance=position.distance_to(center),
                                is_leader=False,
                                leader_id=leader_id,
                            )
                        )
            for candidate in candidates:
                if candidate.object_id in seen:
                    continue
                if not self._inside(candidate.location, box, circle):
                    continue
                seen.add(candidate.object_id)
                results.append(candidate)
        results.sort(key=lambda item: (item.distance, item.object_id))
        stats.results = len(results)
        return results

    @staticmethod
    def _inside(location: Point, box: BoundingBox, circle) -> bool:
        if circle is not None:
            center, radius = circle
            return location.distance_to(center) <= radius
        return box.contains_point(location)

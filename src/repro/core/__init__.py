"""MOIST core: the paper's primary contribution.

The public entry point is :class:`~repro.core.moist.MoistIndexer`, which wires
together the three BigTable schemas, the update procedure (Algorithm 1),
school clustering (Section 3.3), nearest-neighbour search with FLAG level
adaptation (Section 3.4) and aged-data archiving through the PPP archiver
(Sections 3.5-3.6).
"""

from repro.core.config import MoistConfig
from repro.core.update import UpdateOutcome, UpdateResult, UpdateStats, UpdateProcessor
from repro.core.hexgrid import HexGrid
from repro.core.clustering import ClusteringReport, SchoolClusterer
from repro.core.nn_search import NNQueryStats, NearestNeighborSearcher
from repro.core.flag import FlagTuner, LevelCacheRecord
from repro.core.history import HistoryQueryEngine
from repro.core.region import RegionQueryStats, RegionSearcher
from repro.core.prediction import LinearPredictor, PredictedState, ViterbiSmoother
from repro.core.moist import MoistIndexer

__all__ = [
    "MoistConfig",
    "UpdateOutcome",
    "UpdateResult",
    "UpdateStats",
    "UpdateProcessor",
    "HexGrid",
    "ClusteringReport",
    "SchoolClusterer",
    "NNQueryStats",
    "NearestNeighborSearcher",
    "FlagTuner",
    "LevelCacheRecord",
    "HistoryQueryEngine",
    "RegionQueryStats",
    "RegionSearcher",
    "LinearPredictor",
    "PredictedState",
    "ViterbiSmoother",
    "MoistIndexer",
]

"""Configuration of a MOIST indexer instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geometry.bbox import BoundingBox
from repro.spatial.cell import MAX_LEVEL

#: The synthetic map used throughout the paper's school experiments: a square
#: of 1,000 x 1,000 units (Section 4.1).
DEFAULT_WORLD = BoundingBox(0.0, 0.0, 1000.0, 1000.0)


@dataclass(frozen=True)
class MoistConfig:
    """Tunable parameters of MOIST.

    The defaults follow the paper's experimental setup where one is stated
    and otherwise pick values that keep the three levels (storage <
    clustering < NN) consistent on the 1,000 x 1,000-unit map.
    """

    #: The indexed world rectangle.
    world: BoundingBox = field(default_factory=lambda: DEFAULT_WORLD)
    #: Level ``ls`` of the Spatial Index Table rows (Section 3.4.1).
    storage_level: int = 14
    #: ``d``: an NN cell spans ``2^d x 2^d`` storage cells, i.e. the default
    #: NN level is ``storage_level - nn_level_delta``.
    nn_level_delta: int = 3
    #: Deviation threshold ε: a follower whose reported location is within ε
    #: of its estimated location has its update shed (Algorithm 1, line 7).
    deviation_threshold: float = 20.0
    #: Δm: maximum velocity deviation within an object school; the hexagonal
    #: velocity partition guarantees intra-cell deviation below this bound
    #: (Section 3.3.2).
    velocity_threshold: float = 1.0
    #: Level of a clustering cell (coarser than the storage level so its
    #: spatial cells form one contiguous key range).
    clustering_cell_level: int = 3
    #: ``Tc``: seconds between two clustering passes over a clustering cell.
    clustering_interval_s: float = 10.0
    #: σ: the target number of objects per NN cell used by FLAG
    #: (Algorithm 3).  The value depends on how the Spatial Index Table is
    #: laid out in BigTable; with one leader per storage row, ~8 rows per
    #: range scan balances RPC overhead against wasted rows.
    sigma: int = 8
    #: Seconds a cached FLAG level stays valid (Algorithm 4's "too old").
    flag_cache_ttl_s: float = 60.0
    #: ``m``: number of in-memory location records kept per object
    #: (Section 3.5).
    memory_records: int = 8
    #: Seconds after which a location record is considered aged and moved to
    #: the disk columns / PPP archive.
    aging_interval_s: float = 300.0
    #: Master switch for object schooling; with schools disabled every object
    #: is treated as a leader (the paper's "worst case" BigTable experiments,
    #: Section 4).
    enable_schools: bool = True
    #: Simulated CPU seconds per leader spent by the clustering computation
    #: phase (the paper reports computation time as the small middle slice of
    #: Figure 10).
    compute_seconds_per_leader: float = 2e-6
    #: Safety bound on the number of NN cells a single query may visit.
    max_nn_cells_per_query: int = 4096

    def __post_init__(self) -> None:
        if not 1 <= self.storage_level <= MAX_LEVEL:
            raise ConfigurationError(
                f"storage_level must be in [1, {MAX_LEVEL}], got {self.storage_level}"
            )
        if self.nn_level_delta < 0 or self.nn_level_delta >= self.storage_level:
            raise ConfigurationError(
                "nn_level_delta must be non-negative and smaller than storage_level"
            )
        if self.clustering_cell_level <= 0:
            raise ConfigurationError("clustering_cell_level must be positive")
        if self.clustering_cell_level >= self.storage_level:
            raise ConfigurationError(
                "clustering cells must be coarser than storage cells "
                f"(clustering_cell_level={self.clustering_cell_level} >= "
                f"storage_level={self.storage_level})"
            )
        if self.deviation_threshold < 0:
            raise ConfigurationError("deviation_threshold must be non-negative")
        if self.velocity_threshold <= 0:
            raise ConfigurationError("velocity_threshold must be positive")
        if self.clustering_interval_s <= 0:
            raise ConfigurationError("clustering_interval_s must be positive")
        if self.sigma <= 0:
            raise ConfigurationError("sigma must be positive")
        if self.flag_cache_ttl_s <= 0:
            raise ConfigurationError("flag_cache_ttl_s must be positive")
        if self.memory_records <= 0:
            raise ConfigurationError("memory_records must be positive")
        if self.aging_interval_s <= 0:
            raise ConfigurationError("aging_interval_s must be positive")
        if self.compute_seconds_per_leader < 0:
            raise ConfigurationError("compute_seconds_per_leader must be non-negative")
        if self.max_nn_cells_per_query <= 0:
            raise ConfigurationError("max_nn_cells_per_query must be positive")
        if self.world.width <= 0 or self.world.height <= 0:
            raise ConfigurationError("the world box must have positive area")

    @property
    def default_nn_level(self) -> int:
        """NN cell level when FLAG is not consulted: ``ls - d``."""
        return self.storage_level - self.nn_level_delta

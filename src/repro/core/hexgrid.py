"""Hexagonal partition of the velocity space (Section 3.3.2).

Clustering projects every leader's velocity into a 2-D velocity space and
partitions that space into identical regular hexagons sized so that "the
maximum distance between two internal points is less than Δm".  For a regular
hexagon the diameter equals twice the circumradius, so the circumradius is
``Δm / 2``.  Mapping a velocity to its hexagon is O(1), which is what makes
the per-cell clustering pass O(n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ClusteringError
from repro.geometry.vector import Vector


@dataclass(frozen=True)
class HexGrid:
    """Pointy-top hexagonal grid over the velocity plane."""

    #: Maximum allowed deviation Δm between two velocities in one hexagon.
    max_deviation: float

    def __post_init__(self) -> None:
        if self.max_deviation <= 0:
            raise ClusteringError("the hex grid needs a positive max deviation")

    @property
    def circumradius(self) -> float:
        """Circumradius R of each hexagon (diameter = 2R = Δm)."""
        return self.max_deviation / 2.0

    def bin_of(self, velocity: Vector) -> Tuple[int, int]:
        """Axial coordinates of the hexagon containing ``velocity``.

        Velocities that fall in the same bin differ by at most Δm, the
        paper's criterion for merging their schools.
        """
        size = self.circumradius
        # Pixel -> fractional axial coordinates (pointy-top orientation).
        q = (math.sqrt(3.0) / 3.0 * velocity.dx - velocity.dy / 3.0) / size
        r = (2.0 / 3.0 * velocity.dy) / size
        return _cube_round(q, r)

    def bin_center(self, axial: Tuple[int, int]) -> Vector:
        """Velocity at the centre of the hexagon with the given axial coords."""
        q, r = axial
        size = self.circumradius
        dx = size * (math.sqrt(3.0) * q + math.sqrt(3.0) / 2.0 * r)
        dy = size * (1.5 * r)
        return Vector(dx, dy)

    def same_bin(self, first: Vector, second: Vector) -> bool:
        """True when the two velocities fall into the same hexagon."""
        return self.bin_of(first) == self.bin_of(second)


def _cube_round(q: float, r: float) -> Tuple[int, int]:
    """Round fractional axial coordinates to the nearest hexagon."""
    s = -q - r
    rq = round(q)
    rr = round(r)
    rs = round(s)
    dq = abs(rq - q)
    dr = abs(rr - r)
    ds = abs(rs - s)
    if dq > dr and dq > ds:
        rq = -rr - rs
    elif dr > ds:
        rr = -rq - rs
    return int(rq), int(rr)

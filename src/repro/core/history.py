"""History queries over in-memory, on-disk-column and archived records.

Section 3.5 motivates keeping ``m`` recent records per object in memory (for
travel-path rendering, Viterbi smoothing, prediction) while aged data goes to
the disk columns and eventually to the PPP archive.  The engine here answers
the two query shapes the paper calls out — *by object* and *by location* —
against all three tiers and also offers the "points of interest" aggregation
mentioned as the motivating mining application.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.archive.ppp import PPPArchiver
from repro.core.config import MoistConfig
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.model import HistoryRecord, LocationRecord, ObjectId
from repro.spatial.cell import CellId
from repro.tables.location_table import LocationTable


class HistoryQueryEngine:
    """Answers object-based and location-based history queries."""

    def __init__(
        self,
        config: MoistConfig,
        location_table: LocationTable,
        archiver: Optional[PPPArchiver] = None,
    ) -> None:
        self.config = config
        self.location_table = location_table
        self.archiver = archiver

    # ------------------------------------------------------------------
    # Object-based history
    # ------------------------------------------------------------------
    def object_history(
        self,
        object_id: ObjectId,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
    ) -> List[HistoryRecord]:
        """Every known observation of one object, oldest first."""
        if start_time is not None and end_time is not None and start_time > end_time:
            raise QueryError("start_time must not exceed end_time")
        records = [
            _to_history(object_id, record)
            for record in self.location_table.full_history(object_id)
        ]
        if self.archiver is not None:
            records.extend(self.archiver.object_history(object_id, start_time, end_time))
        filtered = [
            record
            for record in records
            if _in_window(record.timestamp, start_time, end_time)
        ]
        filtered.sort(key=lambda record: record.timestamp)
        return _dedupe(filtered)

    def recent_trajectory(self, object_id: ObjectId) -> List[HistoryRecord]:
        """The in-memory trajectory (the ``m`` freshest records), oldest first."""
        records = [
            _to_history(object_id, record)
            for record in self.location_table.recent_history(object_id)
        ]
        records.sort(key=lambda record: record.timestamp)
        return records

    # ------------------------------------------------------------------
    # Location-based history
    # ------------------------------------------------------------------
    def region_history(
        self,
        region: BoundingBox,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
    ) -> List[HistoryRecord]:
        """Archived observations that fall inside ``region``."""
        if self.archiver is None:
            return []
        return self.archiver.region_history(region, start_time, end_time)

    def popular_cells(
        self,
        level: int,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
        top_n: int = 10,
    ) -> List[Dict[str, object]]:
        """Most-visited level-``level`` cells (the "points of interest" miner).

        Returns at most ``top_n`` entries of the form
        ``{"cell": CellId, "visits": int}`` ordered by decreasing visits.
        """
        if top_n <= 0:
            raise QueryError("top_n must be positive")
        if self.archiver is None:
            return []
        counter: Counter = Counter()
        records = self.archiver.region_history(self.config.world, start_time, end_time)
        for record in records:
            cell = CellId.from_point(record.location, level, self.config.world)
            counter[cell] += 1
        return [
            {"cell": cell, "visits": visits}
            for cell, visits in counter.most_common(top_n)
        ]


def _to_history(object_id: ObjectId, record: LocationRecord) -> HistoryRecord:
    return HistoryRecord(
        object_id=object_id,
        location=record.location,
        velocity=record.velocity,
        timestamp=record.timestamp,
    )


def _in_window(
    timestamp: float, start_time: Optional[float], end_time: Optional[float]
) -> bool:
    if start_time is not None and timestamp < start_time:
        return False
    if end_time is not None and timestamp > end_time:
        return False
    return True


def _dedupe(records: List[HistoryRecord]) -> List[HistoryRecord]:
    """Collapse duplicate (object, timestamp) observations across tiers."""
    seen = set()
    unique: List[HistoryRecord] = []
    for record in records:
        key = (record.object_id, record.timestamp)
        if key in seen:
            continue
        seen.add(key)
        unique.append(record)
    return unique

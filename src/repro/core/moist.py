"""The MOIST indexer facade.

:class:`MoistIndexer` is the public entry point of the library.  It owns the
three BigTable schemas, the update processor (Algorithm 1), the school
clusterer, the NN searcher with FLAG, the history engine and the PPP
archiver, and exposes the operations an LBS front-end server needs:

* ``update`` — ingest one location update;
* ``nearest_neighbors`` — k-NN around a location (optionally predictive);
* ``location_of`` — current (possibly estimated) position of one object;
* ``run_clustering`` / ``run_due_clustering`` — the periodic school pass;
* ``archive_aged`` — age fresh records to disk columns and the PPP archive;
* ``object_history`` / ``region_history`` — history queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.archive.ppp import PPPArchiver
from repro.bigtable.backend import ShardedBackend, StorageBackend
from repro.bigtable.cost import CostModel
from repro.bigtable.emulator import BigtableEmulator
from repro.bigtable.lsm import RecoveryReport
from repro.bigtable.scan import BlockCacheOptions, TabletCacheStats
from repro.bigtable.tablet import TabletOptions, TabletStats
from repro.core.clustering import ClusteringReport, SchoolClusterer
from repro.core.config import MoistConfig
from repro.core.flag import FlagTuner
from repro.core.history import HistoryQueryEngine
from repro.core.nn_search import (
    NearestNeighborSearcher,
    NNQueryStats,
    QueryBatchContext,
)
from repro.core.prediction import LinearPredictor, PredictedState, ViterbiSmoother
from repro.core.region import RegionQueryStats, RegionSearcher
from repro.core.update import UpdateOutcome, UpdateProcessor, UpdateResult, UpdateStats
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.model import HistoryRecord, NeighborResult, ObjectId, UpdateMessage
from repro.tables.affiliation_table import AffiliationTable, Role
from repro.tables.location_table import LocationTable
from repro.tables.spatial_index_table import SpatialIndexTable


@dataclass
class IndexerCounters:
    """In-memory bookkeeping the facade maintains alongside the tables."""

    known_objects: int = 0
    leaders: int = 0

    @property
    def followers(self) -> int:
        return max(self.known_objects - self.leaders, 0)


class MoistIndexer:
    """A complete MOIST instance on top of one BigTable emulator."""

    def __init__(
        self,
        config: Optional[MoistConfig] = None,
        emulator: Optional[StorageBackend] = None,
        cost_model: Optional[CostModel] = None,
        archiver: Optional[PPPArchiver] = None,
        table_prefix: str = "",
        enable_flag: bool = True,
        tablet_options: Optional[TabletOptions] = None,
        cache_options: Optional[BlockCacheOptions] = None,
        storage_dir: Optional[str] = None,
        restore_seq_bounds: Optional[Dict[str, int]] = None,
    ) -> None:
        self.config = config or MoistConfig()
        self.emulator: StorageBackend = emulator or BigtableEmulator(
            cost_model=cost_model,
            tablet_options=tablet_options,
            cache_options=cache_options,
            storage_dir=storage_dir,
            restore_seq_bounds=restore_seq_bounds,
        )
        self.location_table = LocationTable(
            self.emulator,
            name=f"{table_prefix}location",
            memory_records=self.config.memory_records,
        )
        self.spatial_table = SpatialIndexTable(
            self.emulator,
            name=f"{table_prefix}spatial_index",
            storage_level=self.config.storage_level,
            world=self.config.world,
        )
        self.affiliation_table = AffiliationTable(
            self.emulator, name=f"{table_prefix}affiliation"
        )
        self.update_stats = UpdateStats()
        self._processor = UpdateProcessor(
            config=self.config,
            location_table=self.location_table,
            spatial_table=self.spatial_table,
            affiliation_table=self.affiliation_table,
            stats=self.update_stats,
        )
        self.flag = (
            FlagTuner(self.config, self.spatial_table) if enable_flag else None
        )
        self.searcher = NearestNeighborSearcher(
            config=self.config,
            spatial_table=self.spatial_table,
            affiliation_table=self.affiliation_table,
            location_table=self.location_table,
            flag_tuner=self.flag,
        )
        self.region_searcher = RegionSearcher(
            config=self.config,
            spatial_table=self.spatial_table,
            affiliation_table=self.affiliation_table,
            location_table=self.location_table,
        )
        self.clusterer = SchoolClusterer(
            config=self.config,
            location_table=self.location_table,
            spatial_table=self.spatial_table,
            affiliation_table=self.affiliation_table,
            counter=self.emulator.counter,
        )
        self.archiver = archiver if archiver is not None else PPPArchiver(
            world=self.config.world
        )
        self.history = HistoryQueryEngine(
            self.config, self.location_table, self.archiver
        )
        self.counters = IndexerCounters()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, message: UpdateMessage) -> UpdateResult:
        """Ingest one location update (Algorithm 1)."""
        result = self._processor.process(message)
        self._absorb_outcome(message, result)
        if self.flag is not None:
            self.flag.total_objects_hint = max(self.counters.known_objects, 1)
        return result

    def restore_facade_state(self) -> int:
        """Rebuild the in-memory facade tallies after the emulator restored
        its tables from a disk store (a real process restart).

        The tables themselves came back bit-identical; what a new process
        lacks is the state that never lived in a table: the known-object and
        leader counters and the FLAG tuner's object-count hint.  Both are
        derivable by an uncharged scan of the affiliation table.  Two pieces
        are deliberately *not* restored — the PPP archiver's ping-pong
        buffers (history-query staging, outside the restart-survival
        signatures) and :class:`UpdateStats` (a per-process tally, not
        state) — and the FLAG cache restarts cold, which affects simulated
        cost of *future* queries only, never their results.  Returns the
        number of known objects."""
        known = self.affiliation_table.object_count()
        leaders = len(self.affiliation_table.leader_ids())
        self.counters.known_objects = known
        self.counters.leaders = leaders
        if self.flag is not None:
            self.flag.total_objects_hint = max(known, 1)
        return known

    def _absorb_outcome(self, message: UpdateMessage, result: UpdateResult) -> None:
        """Fold one update outcome into the facade's counters and archiver.

        Shared by the single-message and batched paths so their bookkeeping
        cannot drift (the batched path's state equivalence depends on it).
        """
        if result.outcome is UpdateOutcome.NEW_LEADER:
            self.counters.known_objects += 1
            self.counters.leaders += 1
            self.archiver.register_object(message.object_id, message.location)
        elif result.outcome is UpdateOutcome.PROMOTED:
            self.counters.leaders += 1

    def update_many(self, messages: List[UpdateMessage]) -> UpdateStats:
        """Ingest a batch of updates; returns the cumulative statistics.

        The batch routes through :meth:`UpdateProcessor.process_batch`, i.e.
        the per-tablet group-commit write path: the resulting table state and
        simulated storage cost are identical to calling :meth:`update` per
        message, but the Python-level accounting work is amortised across
        the whole batch.
        """
        results = self._processor.process_batch(messages)
        for message, result in zip(messages, results):
            self._absorb_outcome(message, result)
        if self.flag is not None and messages:
            self.flag.total_objects_hint = max(self.counters.known_objects, 1)
        return self.update_stats

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest_neighbors(
        self,
        location: Point,
        k: int,
        nn_level: Optional[int] = None,
        range_limit: Optional[float] = None,
        include_followers: bool = True,
        at_time: Optional[float] = None,
        use_flag: bool = True,
        stats: Optional[NNQueryStats] = None,
    ) -> List[NeighborResult]:
        """k-NN query around ``location`` (Algorithm 2 + FLAG)."""
        return self.searcher.query(
            location,
            k,
            nn_level=nn_level,
            range_limit=range_limit,
            include_followers=include_followers,
            at_time=at_time,
            use_flag=use_flag,
            stats=stats,
        )

    def nearest_neighbors_batch(
        self,
        queries: Sequence[object],
        include_followers: bool = True,
        at_time: Optional[float] = None,
        use_flag: bool = True,
        context: Optional[QueryBatchContext] = None,
    ) -> List[List[NeighborResult]]:
        """Execute a batch of NN queries with batch-scoped read sharing.

        ``queries`` carry ``location``/``k``/``range_limit`` attributes
        (:class:`repro.workload.queries.NNQuery` fits).  Results are in
        request order and identical to per-request :meth:`nearest_neighbors`
        calls; overlapping queries share cell scans and batch reads, so the
        batch issues strictly fewer storage RPCs than sequential execution
        whenever any two queries touch the same cells or leaders.
        """
        return self.searcher.query_many(
            queries,
            include_followers=include_followers,
            at_time=at_time,
            use_flag=use_flag,
            context=context,
        )

    def objects_in_region(
        self,
        region: BoundingBox,
        at_time: Optional[float] = None,
        include_followers: bool = True,
        stats: Optional[RegionQueryStats] = None,
    ) -> List[NeighborResult]:
        """Range query: every object currently inside ``region``."""
        return self.region_searcher.objects_in_box(
            region,
            at_time=at_time,
            include_followers=include_followers,
            stats=stats,
        )

    def objects_near(
        self,
        center: Point,
        radius: float,
        at_time: Optional[float] = None,
        include_followers: bool = True,
        stats: Optional[RegionQueryStats] = None,
    ) -> List[NeighborResult]:
        """Range query: every object within ``radius`` of ``center``.

        This is the query shape behind the realtime-coupon application
        ("customers within 1,000 meters", Section 5).
        """
        return self.region_searcher.objects_in_circle(
            center,
            radius,
            at_time=at_time,
            include_followers=include_followers,
            stats=stats,
        )

    def predict_location(self, object_id: ObjectId, at_time: float) -> PredictedState:
        """Short-horizon prediction from the object's in-memory records.

        Followers are predicted through their leader's records plus the
        stored displacement, mirroring :meth:`location_of`.
        """
        lf_record = self.affiliation_table.role_of(object_id)
        if lf_record is None:
            raise QueryError(f"unknown object {object_id!r}")
        source_id = (
            object_id if lf_record.role is Role.LEADER else lf_record.leader_id
        )
        records = self.location_table.recent_history(source_id)
        if not records:
            raise QueryError(f"object {source_id!r} has no location records")
        predicted = LinearPredictor(records).predict(at_time)
        if lf_record.role is Role.LEADER:
            return predicted
        return PredictedState(
            location=predicted.location.displaced(lf_record.displacement),
            velocity=predicted.velocity,
            at_time=at_time,
        )

    def smoothed_trajectory(
        self, object_id: ObjectId, smoother: Optional[ViterbiSmoother] = None
    ) -> List[Point]:
        """Viterbi-smoothed recent trajectory of one object (Section 3.5)."""
        records = self.location_table.recent_history(object_id)
        if not records:
            return []
        if smoother is None:
            smoother = ViterbiSmoother(
                world=self.config.world, cell_level=self.config.storage_level - 2
            )
        return smoother.smooth(records)

    def location_of(
        self, object_id: ObjectId, at_time: Optional[float] = None
    ) -> Point:
        """Best known (possibly estimated) position of one object.

        Leaders come straight from the Location Table; followers are
        estimated from their leader's record plus the stored displacement,
        exactly the read path the Affiliation Table exists to serve.
        """
        lf_record = self.affiliation_table.role_of(object_id)
        if lf_record is None:
            raise QueryError(f"unknown object {object_id!r}")
        if lf_record.role is Role.LEADER:
            record = self.location_table.latest(object_id)
            if record is None:
                raise QueryError(f"leader {object_id!r} has no location record")
            return record.extrapolated(at_time) if at_time is not None else record.location
        leader_record = self.location_table.latest(lf_record.leader_id)
        if leader_record is None:
            raise QueryError(
                f"follower {object_id!r} references missing leader {lf_record.leader_id!r}"
            )
        base = (
            leader_record.extrapolated(at_time)
            if at_time is not None
            else leader_record.location
        )
        return base.displaced(lf_record.displacement)

    def object_history(
        self,
        object_id: ObjectId,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
    ) -> List[HistoryRecord]:
        """Full history of one object across memory, disk columns and archive."""
        return self.history.object_history(object_id, start_time, end_time)

    def region_history(
        self,
        region: BoundingBox,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
    ) -> List[HistoryRecord]:
        """Archived history inside a region."""
        return self.history.region_history(region, start_time, end_time)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def run_clustering(self, now: float) -> ClusteringReport:
        """Cluster every occupied clustering cell (ignoring the interval)."""
        report = self.clusterer.cluster_all(now)
        self._absorb_clustering(report)
        return report

    def run_due_clustering(self, now: float) -> ClusteringReport:
        """Cluster only the cells whose interval Tc has elapsed."""
        report = self.clusterer.cluster_due(now)
        self._absorb_clustering(report)
        return report

    def _absorb_clustering(self, report: ClusteringReport) -> None:
        self.counters.leaders = max(self.counters.leaders - report.merges, 0)
        if self.flag is not None and report.merges > 0:
            # Leader density changed materially; cached NN levels may now be
            # wrong in the affected areas.
            self.flag.invalidate()

    def archive_aged(self, now: float) -> Dict[str, int]:
        """Age fresh records to the disk column and drain old ones to PPP.

        Records older than ``aging_interval_s`` move from the in-memory
        column to the first disk column; records older than twice that move
        from the disk column into the PPP archive.  Returns counts of both
        movements.
        """
        aged_to_disk = self.location_table.age_out(now - self.config.aging_interval_s)
        drained = self.location_table.drain_aged(
            0, now - 2 * self.config.aging_interval_s
        )
        for object_id, record in drained:
            self.archiver.archive(
                HistoryRecord(
                    object_id=object_id,
                    location=record.location,
                    velocity=record.velocity,
                    timestamp=record.timestamp,
                ),
                now,
            )
        return {"aged_to_disk": aged_to_disk, "archived": len(drained)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def school_count(self) -> int:
        """Current number of object schools (== number of leaders)."""
        return self.counters.leaders

    @property
    def object_count(self) -> int:
        """Number of distinct objects ever seen."""
        return self.counters.known_objects

    @property
    def simulated_seconds(self) -> float:
        """Total simulated storage time spent by this indexer so far."""
        return self.emulator.simulated_seconds

    def shed_ratio(self) -> float:
        """Fraction of updates shed by object schooling so far."""
        return self.update_stats.shed_ratio

    def tablet_stats(self) -> List[TabletStats]:
        """Per-tablet accounting of the backend (empty for backends that do
        not shard)."""
        if isinstance(self.emulator, ShardedBackend):
            return self.emulator.tablet_stats()
        return []

    def tablet_count(self) -> int:
        """Total tablets across the three MOIST tables (0 when the backend
        does not shard)."""
        if isinstance(self.emulator, ShardedBackend):
            return self.emulator.tablet_count()
        return 0

    def hot_tablet_share(self) -> float:
        """Fraction of storage time served by the hottest tablet (1.0 for
        non-sharding backends: all load on one shard by definition)."""
        if isinstance(self.emulator, ShardedBackend):
            return self.emulator.hot_tablet_share()
        return 1.0

    def cache_stats(self) -> List[TabletCacheStats]:
        """Per-tablet block-cache hit/miss accounting (empty for backends
        without a block cache)."""
        stats = getattr(self.emulator, "block_cache_stats", None)
        return stats() if callable(stats) else []

    def cache_hit_rate(self) -> float:
        """Overall block-cache hit rate of the backend's scans (0.0 for
        backends without a block cache)."""
        rate = getattr(self.emulator, "cache_hit_rate", None)
        return rate() if callable(rate) else 0.0

    # ------------------------------------------------------------------
    # Storage durability (the LSM plane)
    # ------------------------------------------------------------------
    def flush_storage(self) -> int:
        """Flush every memtable into SSTable runs (minor compaction); 0 for
        backends without an LSM plane."""
        flush = getattr(self.emulator, "flush", None)
        return flush() if callable(flush) else 0

    def compact_storage(self, major: bool = False) -> int:
        """Compact SSTable runs across the backend; 0 for backends without
        an LSM plane."""
        compact = getattr(self.emulator, "compact", None)
        return compact(major=major) if callable(compact) else 0

    def recover_storage(self) -> RecoveryReport:
        """Crash-and-recover the storage layer (see
        :meth:`BigtableEmulator.recover`)."""
        recover = getattr(self.emulator, "recover", None)
        if not callable(recover):
            return RecoveryReport()
        return recover()

    def durability_seconds(self) -> float:
        """Simulated durability time (log fsyncs, flushes, compactions)
        accumulated by the backend, additive to :attr:`simulated_seconds`."""
        counter = getattr(self.emulator, "counter", None)
        return getattr(counter, "durability_seconds", 0.0)

    def write_amplification(self) -> float:
        """Physical rows written per logical row across the backend."""
        amp = getattr(self.emulator, "write_amplification", None)
        return amp() if callable(amp) else 1.0

"""Trajectory smoothing and short-horizon prediction (Section 3.5).

The Location Table keeps ``m`` recent records per object in memory precisely
so that applications can run "travel-path rendering, current location
positioning (via algorithms such as Viterbi), and future location
prediction".  This module provides both:

* :class:`ViterbiSmoother` — snaps a noisy trajectory onto a grid of
  candidate cells with the classic Viterbi dynamic program (emission cost =
  distance from the observation to the candidate cell centre, transition
  cost = distance between consecutive candidates scaled by the plausible
  speed), returning the most likely clean path;
* :class:`LinearPredictor` — least-squares constant-velocity fit over the
  recent records, used for "where will this object be in t seconds" queries
  and for smarter follower-location estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import LocationRecord
from repro.spatial.cell import CellId
from repro.spatial.cell import WORLD_UNIT_BOX


@dataclass(frozen=True)
class PredictedState:
    """A predicted position with the velocity estimate that produced it."""

    location: Point
    velocity: Vector
    at_time: float


class LinearPredictor:
    """Constant-velocity model fitted to an object's recent records."""

    def __init__(self, records: Sequence[LocationRecord]) -> None:
        if not records:
            raise QueryError("prediction needs at least one location record")
        #: Records sorted oldest -> newest.
        self.records = sorted(records, key=lambda record: record.timestamp)

    def fitted_velocity(self) -> Vector:
        """Least-squares velocity over the record window.

        Falls back to the newest record's reported velocity when the window
        holds a single observation or spans zero time.  The fit runs in two
        fused passes over the records with scalar accumulators — no
        intermediate lists, and each sum accumulates in the same order as
        the original per-quantity passes, so results are bit-identical.
        """
        records = self.records
        count = len(records)
        if count < 2:
            return records[-1].velocity
        t0 = records[0].timestamp
        span = records[-1].timestamp - t0
        if span <= 0:
            return records[-1].velocity
        sum_t = 0.0
        sum_x = 0.0
        sum_y = 0.0
        for record in records:
            sum_t += record.timestamp - t0
            location = record.location
            sum_x += location.x
            sum_y += location.y
        mean_t = sum_t / count
        mean_x = sum_x / count
        mean_y = sum_y / count
        denominator = 0.0
        num_x = 0.0
        num_y = 0.0
        for record in records:
            t_centred = (record.timestamp - t0) - mean_t
            denominator += t_centred ** 2
            location = record.location
            num_x += t_centred * (location.x - mean_x)
            num_y += t_centred * (location.y - mean_y)
        if denominator <= 0:
            return records[-1].velocity
        return Vector(num_x / denominator, num_y / denominator)

    def predict(self, at_time: float) -> PredictedState:
        """Dead-reckon the newest record forward (or backward) to ``at_time``."""
        newest = self.records[-1]
        velocity = self.fitted_velocity()
        dt = at_time - newest.timestamp
        location = Point(
            newest.location.x + velocity.dx * dt,
            newest.location.y + velocity.dy * dt,
        )
        return PredictedState(location=location, velocity=velocity, at_time=at_time)


class ViterbiSmoother:
    """Snap a noisy trajectory onto grid-cell centres with Viterbi decoding."""

    def __init__(
        self,
        world: BoundingBox = WORLD_UNIT_BOX,
        cell_level: int = 10,
        candidate_radius: int = 1,
        max_speed: float = 3.0,
        transition_weight: float = 1.0,
    ) -> None:
        if candidate_radius < 0:
            raise QueryError("candidate_radius must be non-negative")
        if max_speed <= 0:
            raise QueryError("max_speed must be positive")
        self.world = world
        self.cell_level = cell_level
        self.candidate_radius = candidate_radius
        self.max_speed = max_speed
        self.transition_weight = transition_weight

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def smooth(self, records: Sequence[LocationRecord]) -> List[Point]:
        """Most likely clean path (one point per input record)."""
        ordered = sorted(records, key=lambda record: record.timestamp)
        if not ordered:
            return []
        # Candidates for step i come from the neighbourhood of observation i
        # *and* of observation i-1: an outlier fix can then be "ignored" by
        # keeping the path near where the object previously was, instead of
        # being forced to jump to the outlier's neighbourhood.
        candidate_sets: List[List[Point]] = []
        for index, record in enumerate(ordered):
            candidates = self._candidates(record.location)
            if index > 0:
                seen = set(candidates)
                for carried in self._candidates(ordered[index - 1].location):
                    if carried not in seen:
                        seen.add(carried)
                        candidates.append(carried)
            candidate_sets.append(candidates)
        # Viterbi forward pass over (observation index, candidate index).
        costs = [
            [self._emission(ordered[0].location, candidate) for candidate in candidate_sets[0]]
        ]
        backpointers: List[List[int]] = [[0] * len(candidate_sets[0])]
        for index in range(1, len(ordered)):
            dt = max(ordered[index].timestamp - ordered[index - 1].timestamp, 1e-9)
            previous_costs = costs[-1]
            row_costs = []
            row_back = []
            for candidate in candidate_sets[index]:
                emission = self._emission(ordered[index].location, candidate)
                best_cost = math.inf
                best_prev = 0
                for prev_index, previous in enumerate(candidate_sets[index - 1]):
                    transition = self._transition(previous, candidate, dt)
                    total = previous_costs[prev_index] + transition + emission
                    if total < best_cost:
                        best_cost = total
                        best_prev = prev_index
                row_costs.append(best_cost)
                row_back.append(best_prev)
            costs.append(row_costs)
            backpointers.append(row_back)
        # Backtrack.
        path_indexes = [min(range(len(costs[-1])), key=costs[-1].__getitem__)]
        for index in range(len(ordered) - 1, 0, -1):
            path_indexes.append(backpointers[index][path_indexes[-1]])
        path_indexes.reverse()
        return [
            candidate_sets[step][candidate_index]
            for step, candidate_index in enumerate(path_indexes)
        ]

    def smoothed_error(
        self, records: Sequence[LocationRecord], truth: Sequence[Point]
    ) -> float:
        """Mean distance between the smoothed path and a ground-truth path."""
        smoothed = self.smooth(records)
        if len(smoothed) != len(truth):
            raise QueryError("truth must have one point per record")
        if not smoothed:
            return 0.0
        return sum(a.distance_to(b) for a, b in zip(smoothed, truth)) / len(smoothed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _candidates(self, observation: Point) -> List[Point]:
        """Centres of the observation's cell and its neighbourhood."""
        cell = CellId.from_point(observation, self.cell_level, self.world)
        candidates = [cell.center(self.world)]
        if self.candidate_radius > 0:
            for neighbor in cell.all_neighbors():
                candidates.append(neighbor.center(self.world))
        return candidates

    def _emission(self, observation: Point, candidate: Point) -> float:
        return observation.distance_to(candidate)

    def _transition(self, previous: Point, candidate: Point, dt: float) -> float:
        distance = previous.distance_to(candidate)
        allowed = self.max_speed * dt
        if distance <= allowed:
            return self.transition_weight * distance / max(allowed, 1e-9)
        # Implausibly fast transitions are penalised sharply but remain
        # finite so a path always exists.
        return self.transition_weight * (1.0 + (distance - allowed))

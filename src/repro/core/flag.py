"""FLAG — Fast Level Adaptive Grid (Section 3.4.2, Algorithms 3 and 4).

FLAG picks the NN cell level so that a visited NN cell holds roughly σ
objects.  Algorithm 3 starts from the level a *uniform* distribution would
imply (``ln = 1/2 · log2(n/σ)``), probes the actual object count in the cell
containing the query location, and moves the level by ``δ = 1/2 · log2(m/σ)``
until the bracket closes.  Algorithm 4 caches the chosen level per spatial
key range with a timestamp so repeated queries in the same area skip the
probing entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MoistConfig
from repro.geometry.point import Point
from repro.spatial.cell import CellId
from repro.tables.spatial_index_table import SpatialIndexTable


@dataclass(frozen=True)
class LevelCacheRecord:
    """One cached NN level, valid over a spatial key range (Algorithm 4)."""

    __slots__ = ("level", "left_key", "right_key", "created_time")

    level: int
    left_key: str
    right_key: str
    created_time: float

    def covers(self, key: str) -> bool:
        """True when ``key`` falls inside the cached range."""
        return self.left_key <= key <= self.right_key


@dataclass
class FlagStats:
    """Counters describing how often FLAG had to recompute levels."""

    lookups: int = 0
    cache_hits: int = 0
    recomputations: int = 0
    probe_reads: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered from the cache."""
        if self.lookups == 0:
            return 0.0
        return self.cache_hits / self.lookups


class FlagTuner:
    """Adaptive NN-level selection with caching."""

    def __init__(
        self,
        config: MoistConfig,
        spatial_table: SpatialIndexTable,
        total_objects_hint: Optional[int] = None,
    ) -> None:
        self.config = config
        self.spatial_table = spatial_table
        #: ``n`` in Algorithm 3 — the number of moving objects in the whole
        #: space.  The MOIST facade keeps this up to date; tests may pass a
        #: fixed hint.
        self.total_objects_hint = total_objects_hint
        self.stats = FlagStats()
        self._cache: List[LevelCacheRecord] = []

    # ------------------------------------------------------------------
    # Algorithm 4: cache
    # ------------------------------------------------------------------
    def best_level(self, location: Point, now: float) -> int:
        """Cached NN level for ``location``, recomputing when stale/missing."""
        self.stats.lookups += 1
        key = CellId.from_point(
            location, self.config.storage_level, self.config.world
        ).key()
        record = self._find_cached(key, now)
        if record is not None:
            self.stats.cache_hits += 1
            return record.level
        level = self.compute_level(location)
        cell = CellId.from_point(location, level, self.config.world)
        left, right = cell.key_range()
        self._cache.append(
            LevelCacheRecord(
                level=level, left_key=left, right_key=right, created_time=now
            )
        )
        return level

    def _find_cached(self, key: str, now: float) -> Optional[LevelCacheRecord]:
        ttl = self.config.flag_cache_ttl_s
        found: Optional[LevelCacheRecord] = None
        stale = False
        # One pass: find the first fresh covering record and note whether any
        # record aged out.  The pass always runs to the end (entries are not
        # appended in created_time order — predictive queries move ``now``
        # around), but the common no-stale lookup no longer rebuilds the
        # cache list the way the seed did on every call.
        for record in self._cache:
            if now - record.created_time > ttl:
                stale = True
            elif found is None and record.left_key <= key <= record.right_key:
                found = record
        if stale:
            self._cache = [
                record
                for record in self._cache
                if now - record.created_time <= ttl
            ]
        return found

    def invalidate(self) -> None:
        """Drop every cached level (e.g. after a clustering pass changed
        leader density substantially)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Accounting checkpoints (supervised respawn)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Plain-data snapshot of the tuner: stats, cached level ranges and
        the object-count hint.  Cached ranges matter beyond reporting — a
        cold cache re-probes, charging reads the warm run never paid."""
        return {
            "stats": (
                self.stats.lookups,
                self.stats.cache_hits,
                self.stats.recomputations,
                self.stats.probe_reads,
            ),
            "cache": [
                (r.level, r.left_key, r.right_key, r.created_time)
                for r in self._cache
            ],
            "total_objects_hint": self.total_objects_hint,
        }

    def install_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        lookups, cache_hits, recomputations, probe_reads = state["stats"]
        self.stats = FlagStats(
            lookups=lookups,
            cache_hits=cache_hits,
            recomputations=recomputations,
            probe_reads=probe_reads,
        )
        self._cache = [
            LevelCacheRecord(
                level=level,
                left_key=left_key,
                right_key=right_key,
                created_time=created_time,
            )
            for level, left_key, right_key, created_time in state["cache"]
        ]
        self.total_objects_hint = state["total_objects_hint"]

    def cache_size(self) -> int:
        """Number of cached ranges currently held."""
        return len(self._cache)

    # ------------------------------------------------------------------
    # Algorithm 3: level computation
    # ------------------------------------------------------------------
    def compute_level(self, location: Point) -> int:
        """Probe local density and return the best NN level for ``location``."""
        self.stats.recomputations += 1
        total = self._total_objects()
        sigma = self.config.sigma
        level = self._initial_level(total, sigma)
        min_level = -math.inf
        max_level = math.inf
        for _ in range(self.config.storage_level):
            cell = CellId.from_point(location, level, self.config.world)
            # Probe the local density through the cheap row-count path: a
            # BigTable can answer "how many rows in this key range" from
            # tablet metadata, and at the storage level a row holds only a
            # handful of leaders, so the row count is a good object-count
            # estimate.  This keeps Algorithm 3's tuning loop from competing
            # with the queries it is trying to speed up.
            count = self.spatial_table.approximate_count_in_cell(cell)
            self.stats.probe_reads += 1
            delta = self._level_delta(count, sigma)
            if delta == 0:
                # The current level already yields ~sigma objects per cell.
                break
            if delta > 0:
                min_level = level
            else:
                max_level = level
            candidate = level + delta
            if candidate <= min_level or candidate >= max_level:
                break
            level = self._clamp(candidate)
        return self._clamp(level)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _total_objects(self) -> int:
        if self.total_objects_hint is not None and self.total_objects_hint > 0:
            return self.total_objects_hint
        # Fall back to the number of indexed leaders; correct when schools
        # are disabled and a safe underestimate otherwise.
        total = self.spatial_table.total_objects()
        return max(total, 1)

    def _initial_level(self, total_objects: int, sigma: int) -> int:
        """Line 1 of Algorithm 3: assume a uniform distribution."""
        if total_objects <= sigma:
            return 1
        return self._clamp(int(round(0.5 * math.log2(total_objects / sigma))))

    @staticmethod
    def _level_delta(count: int, sigma: int) -> int:
        """``δ = 1/2 · log2(m/σ)`` rounded to the nearest whole level."""
        if count <= 0:
            # An empty cell: coarsen aggressively by one level.
            return -1
        return int(round(0.5 * math.log2(count / sigma)))

    def _clamp(self, level: float) -> int:
        upper = self.config.storage_level
        return int(min(max(level, 1), upper))

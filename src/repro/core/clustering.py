"""Lazy, periodic school clustering (Section 3.3.2).

Clustering runs per *clustering cell* — a cell several levels coarser than
the storage cells, whose storage rows form one contiguous key range and can
therefore be fetched with a single batch/range read.  Within a cell the pass
is O(n): every leader is hashed into a hexagonal velocity bin (O(1)), leaders
sharing a bin are merged into one school, and the resulting Affiliation /
Spatial-Index rewrites are applied in batched RPCs.

The pass records three latency components — read, computation and write —
matching the breakdown of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.bigtable.cost import OpCounter
from repro.core.config import MoistConfig
from repro.core.hexgrid import HexGrid
from repro.errors import ClusteringError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import ObjectId
from repro.spatial.cell import CellId, MAX_LEVEL
from repro.tables.affiliation_table import AffiliationTable, LFRecord, Role
from repro.tables.location_table import LocationTable
from repro.tables.spatial_index_table import SpatialIndexTable


@dataclass
class ClusteringReport:
    """Latency breakdown and merge statistics of one clustering pass."""

    cells_processed: int = 0
    leaders_before: int = 0
    leaders_after: int = 0
    followers_reassigned: int = 0
    read_seconds: float = 0.0
    compute_seconds: float = 0.0
    write_seconds: float = 0.0

    @property
    def merges(self) -> int:
        """Number of leaders absorbed into other schools."""
        return self.leaders_before - self.leaders_after

    @property
    def total_seconds(self) -> float:
        """Total simulated per-clustering latency."""
        return self.read_seconds + self.compute_seconds + self.write_seconds

    def merge_in(self, other: "ClusteringReport") -> None:
        """Accumulate another report (used when clustering many cells)."""
        self.cells_processed += other.cells_processed
        self.leaders_before += other.leaders_before
        self.leaders_after += other.leaders_after
        self.followers_reassigned += other.followers_reassigned
        self.read_seconds += other.read_seconds
        self.compute_seconds += other.compute_seconds
        self.write_seconds += other.write_seconds


@dataclass(frozen=True)
class _MergePlan:
    """One absorbed leader and the rewrites it entails."""

    survivor_id: ObjectId
    absorbed_id: ObjectId
    survivor_location: Point
    absorbed_location: Point
    absorbed_followers: Dict[ObjectId, Vector]


class SchoolClusterer:
    """Runs the periodic clustering pass over clustering cells."""

    def __init__(
        self,
        config: MoistConfig,
        location_table: LocationTable,
        spatial_table: SpatialIndexTable,
        affiliation_table: AffiliationTable,
        counter: OpCounter,
    ) -> None:
        self.config = config
        self.location_table = location_table
        self.spatial_table = spatial_table
        self.affiliation_table = affiliation_table
        self.counter = counter
        self.hexgrid = HexGrid(max_deviation=config.velocity_threshold)
        #: Per-clustering-cell timestamp of the last pass, used by
        #: :meth:`due_cells` to honour the clustering interval Tc.
        self._last_run: Dict[CellId, float] = {}

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def occupied_clustering_cells(self) -> List[CellId]:
        """Clustering cells that currently contain at least one leader.

        Derived from a keys-only scan of the Spatial Index Table: each
        storage row key is lifted to its ancestor at the clustering level.
        The lift works on raw curve positions — parsing the hex token and
        shifting straight to the clustering level skips the two
        intermediate ``CellId`` constructions per row that
        ``from_token(...).parent(...)`` would pay (the table wrote these
        keys itself, so per-key alignment re-validation buys nothing).
        """
        keys = self.spatial_table._table.scan_keys()
        level = self.config.clustering_cell_level
        shift = 2 * (MAX_LEVEL - level)
        positions: Set[int] = {int(key, 16) >> shift for key in keys}
        return [CellId(level, pos) for pos in sorted(positions)]

    def due_cells(self, now: float) -> List[CellId]:
        """Occupied clustering cells whose interval Tc has elapsed."""
        due = []
        for cell in self.occupied_clustering_cells():
            last = self._last_run.get(cell)
            if last is None or now - last >= self.config.clustering_interval_s:
                due.append(cell)
        return due

    # ------------------------------------------------------------------
    # Clustering
    # ------------------------------------------------------------------
    def cluster_cell(self, clustering_cell: CellId, now: float) -> ClusteringReport:
        """Cluster the leaders of one clustering cell.

        The three phases (read / computation / write) are measured
        separately by snapshotting the shared operation counter.
        """
        if clustering_cell.level != self.config.clustering_cell_level:
            raise ClusteringError(
                f"expected a level-{self.config.clustering_cell_level} clustering "
                f"cell, got level {clustering_cell.level}"
            )
        report = ClusteringReport(cells_processed=1)
        self._last_run[clustering_cell] = now

        # Phase 1: batch reads (Spatial Index, Location and Affiliation).
        before_read = self.counter.snapshot()
        leaders = self.spatial_table.objects_in_cell(clustering_cell)
        leader_ids = sorted(leaders)
        records = self.location_table.batch_latest(leader_ids)
        follower_info = self.affiliation_table.batch_followers(leader_ids)
        report.read_seconds = (
            self.counter.snapshot().delta(before_read).simulated_seconds
        )
        report.leaders_before = len(leader_ids)
        if len(leader_ids) <= 1:
            report.leaders_after = report.leaders_before
            return report

        # Phase 2: in-memory computation — hexagonal velocity binning.
        plans = self._plan_merges(leader_ids, leaders, records, follower_info)
        report.compute_seconds = (
            self.config.compute_seconds_per_leader * len(leader_ids)
        )

        # Phase 3: batched writes.
        before_write = self.counter.snapshot()
        reassigned = self._apply_merges(plans, now)
        report.write_seconds = (
            self.counter.snapshot().delta(before_write).simulated_seconds
        )
        report.followers_reassigned = reassigned
        report.leaders_after = report.leaders_before - len(plans)
        return report

    def cluster_due(self, now: float) -> ClusteringReport:
        """Cluster every clustering cell whose interval has elapsed.

        Cells are processed sequentially, as the paper does to keep only a
        small number of clustering cells in flight at any time.
        """
        total = ClusteringReport()
        for cell in self.due_cells(now):
            total.merge_in(self.cluster_cell(cell, now))
        return total

    def cluster_all(self, now: float) -> ClusteringReport:
        """Cluster every occupied clustering cell regardless of Tc."""
        total = ClusteringReport()
        for cell in self.occupied_clustering_cells():
            total.merge_in(self.cluster_cell(cell, now))
        return total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _plan_merges(
        self,
        leader_ids: Sequence[ObjectId],
        leader_locations: Dict[ObjectId, Point],
        records: Dict[ObjectId, object],
        follower_info: Dict[ObjectId, Dict[ObjectId, Vector]],
    ) -> List[_MergePlan]:
        """Group leaders by velocity hexagon and plan the merges.

        Within each hexagon the leader with the most followers survives
        (ties broken by id), so the rewrites touch the fewest rows.
        """
        bins: Dict[Tuple[int, int], List[ObjectId]] = {}
        for leader_id in leader_ids:
            record = records.get(leader_id)
            if record is None:
                # A leader without a Location record cannot be compared; it
                # keeps its own school.
                continue
            bins.setdefault(self.hexgrid.bin_of(record.velocity), []).append(leader_id)

        plans: List[_MergePlan] = []
        for members in bins.values():
            if len(members) <= 1:
                continue
            members_sorted = sorted(
                members,
                key=lambda oid: (-len(follower_info.get(oid, {})), oid),
            )
            survivor = members_sorted[0]
            for absorbed in members_sorted[1:]:
                plans.append(
                    _MergePlan(
                        survivor_id=survivor,
                        absorbed_id=absorbed,
                        survivor_location=leader_locations[survivor],
                        absorbed_location=leader_locations[absorbed],
                        absorbed_followers=follower_info.get(absorbed, {}),
                    )
                )
        return plans

    def _apply_merges(self, plans: List[_MergePlan], now: float) -> int:
        """Apply merge plans with batched table writes.

        Merging leader ``j`` into leader ``i`` performs the three operations
        of Section 3.3.2: transfer j's Follower Info to i, rewrite the L/F
        entries of j and of all its followers, and delete j from the Spatial
        Index Table.
        Returns the number of follower objects reassigned (including the
        absorbed leaders themselves).
        """
        if not plans:
            return 0
        lf_updates: List[Tuple[ObjectId, LFRecord]] = []
        follower_updates: List[Tuple[ObjectId, ObjectId, Vector]] = []
        follower_deletes: List[Tuple[ObjectId, ObjectId]] = []
        spatial_removals: List[Tuple[ObjectId, Point]] = []
        reassigned = 0

        for plan in plans:
            displacement_to_absorbed = plan.survivor_location.displacement_to(
                plan.absorbed_location
            )
            # The absorbed leader becomes a follower of the survivor.
            lf_updates.append(
                (
                    plan.absorbed_id,
                    LFRecord(
                        role=Role.FOLLOWER,
                        timestamp=now,
                        leader_id=plan.survivor_id,
                        displacement=displacement_to_absorbed,
                    ),
                )
            )
            follower_updates.append(
                (plan.survivor_id, plan.absorbed_id, displacement_to_absorbed)
            )
            spatial_removals.append((plan.absorbed_id, plan.absorbed_location))
            reassigned += 1
            # Its followers transfer to the survivor with composed
            # displacements: i->f = (i->j) + (j->f).
            for follower_id, displacement in plan.absorbed_followers.items():
                composed = displacement_to_absorbed + displacement
                lf_updates.append(
                    (
                        follower_id,
                        LFRecord(
                            role=Role.FOLLOWER,
                            timestamp=now,
                            leader_id=plan.survivor_id,
                            displacement=composed,
                        ),
                    )
                )
                follower_updates.append((plan.survivor_id, follower_id, composed))
                follower_deletes.append((plan.absorbed_id, follower_id))
                reassigned += 1

        self.affiliation_table.batch_apply(
            lf_updates, follower_updates, follower_deletes, timestamp=now
        )
        self.spatial_table.batch_remove(spatial_removals)
        return reassigned

"""Nearest-neighbour search (Section 3.4, Algorithm 2).

The search keeps two priority queues: ``Qcell`` pops the unexplored NN cell
closest to the query location, ``Qobj`` keeps the ``k`` closest objects seen
so far.  A cell's distance to the query lower-bounds the distance of every
object it contains, so the search stops as soon as the closest unexplored
cell is farther than the current ``k``-th neighbour.

Each NN cell spans a contiguous range of Spatial Index Table rows (storage
cells), so fetching a cell's objects is one range scan.  Only leaders are
stored in the table; when ``include_followers`` is set, the Affiliation Table
is batch-read for the candidate leaders and follower locations are derived
from the leader location plus the stored displacement (Section 3.4, step
iii-iv).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import MoistConfig
from repro.core.flag import FlagTuner
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import NeighborResult, ObjectId
from repro.spatial.cell import CellId
from repro.tables.affiliation_table import AffiliationTable
from repro.tables.location_table import LocationTable
from repro.tables.spatial_index_table import SpatialIndexTable


@dataclass
class NNQueryStats:
    """Work accounting of a single NN query."""

    cells_visited: int = 0
    leaders_scanned: int = 0
    followers_considered: int = 0
    nn_level: int = 0


class NearestNeighborSearcher:
    """Executes NN queries against the Spatial Index / Affiliation tables."""

    def __init__(
        self,
        config: MoistConfig,
        spatial_table: SpatialIndexTable,
        affiliation_table: AffiliationTable,
        location_table: LocationTable,
        flag_tuner: Optional[FlagTuner] = None,
    ) -> None:
        self.config = config
        self.spatial_table = spatial_table
        self.affiliation_table = affiliation_table
        self.location_table = location_table
        self.flag_tuner = flag_tuner

    def query(
        self,
        location: Point,
        k: int,
        nn_level: Optional[int] = None,
        range_limit: Optional[float] = None,
        include_followers: bool = True,
        at_time: Optional[float] = None,
        use_flag: bool = True,
        stats: Optional[NNQueryStats] = None,
    ) -> List[NeighborResult]:
        """Return up to ``k`` nearest objects around ``location``.

        ``nn_level`` fixes the NN cell level explicitly (the paper's
        fixed-level baselines of Figure 12); otherwise FLAG picks it when a
        tuner is attached and ``use_flag`` is true, falling back to the
        configured default level.  ``range_limit`` bounds the search radius
        (the paper's "search range limit"); ``at_time`` enables the
        predictive variant, dead-reckoning leaders to the query time.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if range_limit is not None and range_limit < 0:
            raise QueryError("range_limit must be non-negative")
        level = self._resolve_level(location, nn_level, use_flag, at_time)
        if stats is None:
            stats = NNQueryStats()
        stats.nn_level = level

        world = self.config.world
        start_cell = CellId.from_point(location, level, world)
        counter = itertools.count()
        cell_queue: List[Tuple[float, int, CellId]] = [
            (start_cell.distance_to_point(location, world), next(counter), start_cell)
        ]
        seen_cells: Set[CellId] = {start_cell}
        # Max-heap of the best k candidates: (-distance, tiebreak, result).
        best: List[Tuple[float, int, NeighborResult]] = []
        dist_max = range_limit if range_limit is not None else float("inf")

        while cell_queue and stats.cells_visited < self.config.max_nn_cells_per_query:
            cell_distance, _, cell = heapq.heappop(cell_queue)
            if cell_distance > dist_max:
                break
            stats.cells_visited += 1
            for candidate in self._candidates_in_cell(cell, at_time, include_followers, stats):
                distance = candidate.location.distance_to(location)
                if range_limit is not None and distance > range_limit:
                    continue
                entry = NeighborResult(
                    object_id=candidate.object_id,
                    location=candidate.location,
                    distance=distance,
                    is_leader=candidate.is_leader,
                    leader_id=candidate.leader_id,
                )
                heapq.heappush(best, (-distance, next(counter), entry))
                if len(best) > k:
                    heapq.heappop(best)
                if len(best) == k:
                    kth_distance = -best[0][0]
                    dist_max = (
                        min(kth_distance, range_limit)
                        if range_limit is not None
                        else kth_distance
                    )
            for neighbor in cell.edge_neighbors():
                if neighbor in seen_cells:
                    continue
                seen_cells.add(neighbor)
                neighbor_distance = neighbor.distance_to_point(location, world)
                if neighbor_distance <= dist_max:
                    heapq.heappush(
                        cell_queue, (neighbor_distance, next(counter), neighbor)
                    )

        results = [entry for _, _, entry in best]
        results.sort(key=lambda item: (item.distance, item.object_id))
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_level(
        self,
        location: Point,
        nn_level: Optional[int],
        use_flag: bool,
        at_time: Optional[float],
    ) -> int:
        if nn_level is not None:
            if not 1 <= nn_level <= self.config.storage_level:
                raise QueryError(
                    f"nn_level must be in [1, {self.config.storage_level}], got {nn_level}"
                )
            return nn_level
        if use_flag and self.flag_tuner is not None:
            now = at_time if at_time is not None else 0.0
            return self.flag_tuner.best_level(location, now)
        return self.config.default_nn_level

    def _candidates_in_cell(
        self,
        cell: CellId,
        at_time: Optional[float],
        include_followers: bool,
        stats: NNQueryStats,
    ) -> List[NeighborResult]:
        """Leaders (and optionally their followers) located in ``cell``."""
        leaders = self.spatial_table.objects_in_cell(cell)
        stats.leaders_scanned += len(leaders)
        candidates: List[NeighborResult] = []
        leader_positions: Dict[ObjectId, Point] = {}
        if at_time is not None and leaders:
            # Predictive variant: dead-reckon each leader to the query time
            # from its latest Location record.
            records = self.location_table.batch_latest(list(leaders))
            for object_id, stored in leaders.items():
                record = records.get(object_id)
                leader_positions[object_id] = (
                    record.extrapolated(at_time) if record is not None else stored
                )
        else:
            leader_positions = dict(leaders)

        for object_id, position in leader_positions.items():
            candidates.append(
                NeighborResult(
                    object_id=object_id,
                    location=position,
                    distance=0.0,
                    is_leader=True,
                )
            )
        if include_followers and leaders:
            follower_info = self.affiliation_table.batch_followers(list(leaders))
            for leader_id, followers in follower_info.items():
                leader_position = leader_positions[leader_id]
                for follower_id, displacement in followers.items():
                    stats.followers_considered += 1
                    candidates.append(
                        NeighborResult(
                            object_id=follower_id,
                            location=leader_position.displaced(displacement),
                            distance=0.0,
                            is_leader=False,
                            leader_id=leader_id,
                        )
                    )
        return candidates

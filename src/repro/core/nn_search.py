"""Nearest-neighbour search (Section 3.4, Algorithm 2).

The search keeps two priority queues: ``Qcell`` pops the unexplored NN cell
closest to the query location, ``Qobj`` keeps the ``k`` closest objects seen
so far.  A cell's distance to the query lower-bounds the distance of every
object it contains, so the search stops as soon as the closest unexplored
cell is farther than the current ``k``-th neighbour.

Each NN cell spans a contiguous range of Spatial Index Table rows (storage
cells), so fetching a cell's objects is one key-range scan compiled to a
:class:`~repro.bigtable.scan.ScanPlan` and executed tablet by tablet.  Only
leaders are stored in the table; when ``include_followers`` is set, the
Affiliation Table is batch-read for the candidate leaders and follower
locations are derived from the leader location plus the stored displacement
(Section 3.4, step iii-iv).

Queries executed together can share their reads: a
:class:`QueryBatchContext` memoises cell scans, Follower Info batch reads
and (for predictive queries) Location Table batch reads across the batch.
Queries are read-only, so sharing never changes a result — it only removes
the repeat RPCs two overlapping queries would otherwise both issue, which
is what makes the server's ``handle_query_batch`` strictly cheaper than
sequential execution on overlapping workloads.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import MoistConfig
from repro.core.flag import FlagTuner
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import LocationRecord, NeighborResult, ObjectId
from repro.spatial.cell import CellId
from repro.tables.affiliation_table import AffiliationTable
from repro.tables.location_table import LocationTable
from repro.tables.spatial_index_table import SpatialIndexTable


@dataclass
class NNQueryStats:
    """Work accounting of a single NN query."""

    cells_visited: int = 0
    leaders_scanned: int = 0
    followers_considered: int = 0
    nn_level: int = 0


#: One NN candidate before ranking: ``(object_id, location, is_leader,
#: leader_id)``.  Plain tuples keep the per-candidate inner loop free of
#: dataclass construction; :class:`~repro.model.NeighborResult` objects are
#: only built for the ``k`` survivors.
_Candidate = Tuple[ObjectId, Point, bool, Optional[ObjectId]]


@dataclass
class QueryBatchContext:
    """Read-sharing scope for a batch of NN queries.

    Everything memoised here is immutable for the duration of a read-only
    batch, so two queries probing the same NN cell (or the same leaders'
    followers) share one storage access instead of issuing it twice.  The
    ``*_shared`` counters report how many RPCs the sharing saved.

    ``cell_candidates`` additionally memoises the fully assembled candidate
    list of a cell (non-predictive queries only): the second query probing
    the same cell skips rebuilding candidates from the raw leader/follower
    maps while tallying exactly the ``scans_shared``/``rows_shared`` the
    underlying memo hits would have produced.
    """

    cell_objects: Dict[CellId, Dict[ObjectId, Point]] = field(default_factory=dict)
    followers: Dict[ObjectId, Dict[ObjectId, Vector]] = field(default_factory=dict)
    latest_records: Dict[ObjectId, Optional[LocationRecord]] = field(
        default_factory=dict
    )
    #: ``(cell, include_followers) -> (candidates, n_leaders, n_followers)``.
    cell_candidates: Dict[
        Tuple[CellId, bool], Tuple[List[_Candidate], int, int]
    ] = field(default_factory=dict)
    scans_shared: int = 0
    rows_shared: int = 0


class NearestNeighborSearcher:
    """Executes NN queries against the Spatial Index / Affiliation tables."""

    def __init__(
        self,
        config: MoistConfig,
        spatial_table: SpatialIndexTable,
        affiliation_table: AffiliationTable,
        location_table: LocationTable,
        flag_tuner: Optional[FlagTuner] = None,
    ) -> None:
        self.config = config
        self.spatial_table = spatial_table
        self.affiliation_table = affiliation_table
        self.location_table = location_table
        self.flag_tuner = flag_tuner

    def query(
        self,
        location: Point,
        k: int,
        nn_level: Optional[int] = None,
        range_limit: Optional[float] = None,
        include_followers: bool = True,
        at_time: Optional[float] = None,
        use_flag: bool = True,
        stats: Optional[NNQueryStats] = None,
        context: Optional[QueryBatchContext] = None,
    ) -> List[NeighborResult]:
        """Return up to ``k`` nearest objects around ``location``.

        ``nn_level`` fixes the NN cell level explicitly (the paper's
        fixed-level baselines of Figure 12); otherwise FLAG picks it when a
        tuner is attached and ``use_flag`` is true, falling back to the
        configured default level.  ``range_limit`` bounds the search radius
        (the paper's "search range limit"); ``at_time`` enables the
        predictive variant, dead-reckoning leaders to the query time.
        ``context`` shares cell scans and batch reads with the other
        queries of one batch (see :class:`QueryBatchContext`).
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if range_limit is not None and range_limit < 0:
            raise QueryError("range_limit must be non-negative")
        level = self._resolve_level(location, nn_level, use_flag, at_time)
        if stats is None:
            stats = NNQueryStats()
        stats.nn_level = level

        world = self.config.world
        start_cell = CellId.from_point(location, level, world)
        counter = itertools.count()
        tiebreak = counter.__next__
        heappush = heapq.heappush
        heappop = heapq.heappop
        cell_queue: List[Tuple[float, int, CellId]] = [
            (start_cell.distance_to_point(location, world), tiebreak(), start_cell)
        ]
        seen_cells: Set[CellId] = {start_cell}
        # Max-heap of the best k candidates, as flat tuples:
        # (-distance, tiebreak, object_id, location, is_leader, leader_id).
        # NeighborResult objects are only materialised for the k survivors.
        best: List[Tuple[float, int, ObjectId, Point, bool, Optional[ObjectId]]] = []
        dist_max = range_limit if range_limit is not None else float("inf")
        max_cells = self.config.max_nn_cells_per_query

        while cell_queue and stats.cells_visited < max_cells:
            cell_distance, _, cell = heappop(cell_queue)
            if cell_distance > dist_max:
                break
            stats.cells_visited += 1
            for object_id, position, is_leader, leader_id in self._candidates_in_cell(
                cell, at_time, include_followers, stats, context
            ):
                distance = position.distance_to(location)
                if range_limit is not None and distance > range_limit:
                    continue
                heappush(
                    best,
                    (-distance, tiebreak(), object_id, position, is_leader, leader_id),
                )
                if len(best) > k:
                    heappop(best)
                if len(best) == k:
                    kth_distance = -best[0][0]
                    dist_max = (
                        min(kth_distance, range_limit)
                        if range_limit is not None
                        else kth_distance
                    )
            for neighbor in cell.edge_neighbors():
                if neighbor in seen_cells:
                    continue
                seen_cells.add(neighbor)
                neighbor_distance = neighbor.distance_to_point(location, world)
                if neighbor_distance <= dist_max:
                    heappush(cell_queue, (neighbor_distance, tiebreak(), neighbor))

        results = [
            NeighborResult(
                object_id=object_id,
                location=position,
                distance=-neg_distance,
                is_leader=is_leader,
                leader_id=leader_id,
            )
            for neg_distance, _, object_id, position, is_leader, leader_id in best
        ]
        results.sort(key=lambda item: (item.distance, item.object_id))
        return results

    def query_many(
        self,
        queries: Sequence[object],
        include_followers: bool = True,
        at_time: Optional[float] = None,
        use_flag: bool = True,
        stats_list: Optional[List[NNQueryStats]] = None,
        context: Optional[QueryBatchContext] = None,
    ) -> List[List[NeighborResult]]:
        """Execute several NN queries with batch-scoped read sharing.

        ``queries`` are request objects carrying ``location``, ``k`` and
        ``range_limit`` attributes (:class:`repro.workload.queries.NNQuery`
        fits).  Results are returned in request order and are identical to
        running :meth:`query` per request — the shared
        :class:`QueryBatchContext` only dedupes the storage accesses, it
        never changes what a query observes.
        """
        if context is None:
            context = QueryBatchContext()
        results: List[List[NeighborResult]] = []
        for index, request in enumerate(queries):
            stats = stats_list[index] if stats_list is not None else None
            results.append(
                self.query(
                    request.location,
                    request.k,
                    range_limit=getattr(request, "range_limit", None),
                    include_followers=include_followers,
                    at_time=at_time,
                    use_flag=use_flag,
                    stats=stats,
                    context=context,
                )
            )
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_level(
        self,
        location: Point,
        nn_level: Optional[int],
        use_flag: bool,
        at_time: Optional[float],
    ) -> int:
        if nn_level is not None:
            if not 1 <= nn_level <= self.config.storage_level:
                raise QueryError(
                    f"nn_level must be in [1, {self.config.storage_level}], got {nn_level}"
                )
            return nn_level
        if use_flag and self.flag_tuner is not None:
            now = at_time if at_time is not None else 0.0
            return self.flag_tuner.best_level(location, now)
        return self.config.default_nn_level

    def _scan_cell(
        self, cell: CellId, context: Optional[QueryBatchContext]
    ) -> Dict[ObjectId, Point]:
        """Key-range scan of one NN cell's spatial-index rows, shared
        across the batch when a context is present."""
        if context is not None:
            cached = context.cell_objects.get(cell)
            if cached is not None:
                context.scans_shared += 1
                return cached
        leaders = self.spatial_table.objects_in_cell(cell)
        if context is not None:
            context.cell_objects[cell] = leaders
        return leaders

    @staticmethod
    def _shared_batch_read(object_ids, fetch, context, cache, absent):
        """Batch-read ``object_ids`` through a batch-scoped memo.

        ``fetch`` maps a list of ids to a dict of found rows; ids absent
        from the store map to ``absent``.  With a context, only ids missing
        from ``cache`` (the context dict backing this read kind) are
        fetched and the saved rows are tallied on ``rows_shared``.  The
        returned mapping always covers every requested id, in request
        order — identical to an unshared fetch.
        """
        if context is None:
            fetched = fetch(object_ids)
            return {
                object_id: fetched.get(object_id, absent)
                for object_id in object_ids
            }
        missing = [object_id for object_id in object_ids if object_id not in cache]
        if missing:
            fetched = fetch(missing)
            for object_id in missing:
                cache[object_id] = fetched.get(object_id, absent)
        context.rows_shared += len(object_ids) - len(missing)
        return {object_id: cache[object_id] for object_id in object_ids}

    def _latest_records(
        self,
        object_ids: List[ObjectId],
        context: Optional[QueryBatchContext],
    ) -> Dict[ObjectId, Optional[LocationRecord]]:
        """Latest Location records of ``object_ids``, batch-read once per
        batch (objects without a record map to ``None``)."""
        return self._shared_batch_read(
            object_ids,
            self.location_table.batch_latest,
            context,
            context.latest_records if context is not None else None,
            None,
        )

    def _followers_of(
        self,
        leader_ids: List[ObjectId],
        context: Optional[QueryBatchContext],
    ) -> Dict[ObjectId, Dict[ObjectId, Vector]]:
        """Follower Info of ``leader_ids``, batch-read once per batch
        (leaders without an affiliation row map to an empty dict; the
        shared empty default is never mutated by readers)."""
        return self._shared_batch_read(
            leader_ids,
            self.affiliation_table.batch_followers,
            context,
            context.followers if context is not None else None,
            {},
        )

    def _candidates_in_cell(
        self,
        cell: CellId,
        at_time: Optional[float],
        include_followers: bool,
        stats: NNQueryStats,
        context: Optional[QueryBatchContext] = None,
    ) -> List[_Candidate]:
        """Leaders (and optionally their followers) located in ``cell``.

        Every storage access is a key-range scan or a batch read — never a
        per-row point read — and all of them share through ``context`` when
        the query runs as part of a batch.  Non-predictive probes memoise
        the assembled candidate list per ``(cell, include_followers)`` in
        the context, so overlapping queries of one batch skip rebuilding it;
        the memo hit tallies the same ``scans_shared``/``rows_shared`` the
        underlying leader/follower memo hits would have recorded, keeping
        the sharing report independent of this shortcut.
        """
        cache_key = None
        if context is not None and at_time is None:
            cache_key = (cell, include_followers)
            cached = context.cell_candidates.get(cache_key)
            if cached is not None:
                candidates, n_leaders, n_followers = cached
                stats.leaders_scanned += n_leaders
                stats.followers_considered += n_followers
                context.scans_shared += 1
                if include_followers and n_leaders:
                    context.rows_shared += n_leaders
                return candidates

        leaders = self._scan_cell(cell, context)
        stats.leaders_scanned += len(leaders)
        candidates: List[_Candidate] = []
        append = candidates.append
        leader_positions: Dict[ObjectId, Point]
        if at_time is not None and leaders:
            # Predictive variant: dead-reckon each leader to the query time
            # from its latest Location record.
            leader_positions = {}
            records = self._latest_records(list(leaders), context)
            for object_id, stored in leaders.items():
                record = records.get(object_id)
                leader_positions[object_id] = (
                    record.extrapolated(at_time) if record is not None else stored
                )
        else:
            leader_positions = leaders

        for object_id, position in leader_positions.items():
            append((object_id, position, True, None))
        n_followers = 0
        if include_followers and leaders:
            follower_info = self._followers_of(list(leaders), context)
            for leader_id, followers in follower_info.items():
                leader_position = leader_positions[leader_id]
                for follower_id, displacement in followers.items():
                    n_followers += 1
                    append(
                        (
                            follower_id,
                            leader_position.displaced(displacement),
                            False,
                            leader_id,
                        )
                    )
            stats.followers_considered += n_followers
        if cache_key is not None:
            context.cell_candidates[cache_key] = (
                candidates,
                len(leaders),
                n_followers,
            )
        return candidates

"""The MOIST update procedure (Algorithm 1).

An update ``(ID, Loc, V, t)`` is routed to one of four branches:

* the object has never been seen -> it becomes the leader of a new
  single-member school;
* the object is a **leader** -> its Location Table row gains a record and its
  Spatial Index Table entry moves to the new cell;
* the object is a **follower** whose reported location stays within ε of the
  location estimated from its leader -> the update is **shed** (no writes);
* the object is a follower that drifted beyond ε -> it departs its school
  and is promoted to the leader of a new school.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import MoistConfig
from repro.model import ObjectId, UpdateMessage
from repro.tables.affiliation_table import AffiliationTable, Role
from repro.tables.location_table import LocationTable
from repro.tables.spatial_index_table import SpatialIndexTable


class UpdateOutcome(enum.Enum):
    """How an update was handled."""

    NEW_LEADER = "new_leader"
    LEADER_UPDATED = "leader_updated"
    SHED = "shed"
    PROMOTED = "promoted"


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one update."""

    object_id: ObjectId
    outcome: UpdateOutcome
    #: Distance between the reported and the estimated location (followers
    #: only; ``None`` for leader paths).
    estimation_error: Optional[float] = None


@dataclass
class UpdateStats:
    """Running counters over every processed update."""

    total: int = 0
    new_leaders: int = 0
    leader_updates: int = 0
    shed: int = 0
    promotions: int = 0
    #: Sum of follower estimation errors, for mean-error reporting.
    error_sum: float = 0.0
    error_samples: int = 0

    def record(self, result: UpdateResult) -> None:
        """Fold one result into the counters."""
        self.total += 1
        if result.outcome is UpdateOutcome.NEW_LEADER:
            self.new_leaders += 1
        elif result.outcome is UpdateOutcome.LEADER_UPDATED:
            self.leader_updates += 1
        elif result.outcome is UpdateOutcome.SHED:
            self.shed += 1
        elif result.outcome is UpdateOutcome.PROMOTED:
            self.promotions += 1
        if result.estimation_error is not None:
            self.error_sum += result.estimation_error
            self.error_samples += 1

    @property
    def shed_ratio(self) -> float:
        """Fraction of updates that required no storage writes."""
        if self.total == 0:
            return 0.0
        return self.shed / self.total

    @property
    def mean_estimation_error(self) -> float:
        """Mean follower estimation error over updates that measured one."""
        if self.error_samples == 0:
            return 0.0
        return self.error_sum / self.error_samples


@dataclass
class UpdateProcessor:
    """Executes Algorithm 1 against the three MOIST tables."""

    config: MoistConfig
    location_table: LocationTable
    spatial_table: SpatialIndexTable
    affiliation_table: AffiliationTable
    stats: UpdateStats = field(default_factory=UpdateStats)

    def process(self, message: UpdateMessage) -> UpdateResult:
        """Handle one update message and return what happened."""
        result = self._dispatch(message)
        self.stats.record(result)
        return result

    def process_batch(self, messages: Sequence[UpdateMessage]) -> List[UpdateResult]:
        """Handle a batch of update messages through the group-commit path.

        Each message runs the exact same Algorithm 1 branches as
        :meth:`process` — reads observe every earlier write of the batch and
        the simulated storage cost is identical to processing the messages
        one at a time.  What the batch amortises is the Python-level
        bookkeeping: all three MOIST tables stay in group-commit mode for
        the whole batch, so per-mutation counter updates and tablet
        split/merge checks are flushed in bulk instead of paid per message,
        and every row insert of the batch lands in the tablet memtable's
        unsorted write buffer — the sorted runs are rebuilt at most once per
        touched tablet when the deferred split/merge checks run at flush,
        instead of once per insert.
        """
        results: List[UpdateResult] = []
        if not messages:
            return results
        append = results.append
        record = self.stats.record
        dispatch = self._dispatch
        with self.location_table.table.group_commit(), \
                self.spatial_table.table.group_commit(), \
                self.affiliation_table.table.group_commit():
            for message in messages:
                result = dispatch(message)
                record(result)
                append(result)
        return results

    def _dispatch(self, message: UpdateMessage) -> UpdateResult:
        """Route one message to its Algorithm 1 branch."""
        lf_record = self.affiliation_table.role_of(message.object_id)
        if lf_record is None:
            return self._register_new_leader(message)
        if lf_record.role is Role.LEADER:
            return self._update_leader(message)
        return self._update_follower(message, lf_record)

    # ------------------------------------------------------------------
    # Branches
    # ------------------------------------------------------------------
    def _register_new_leader(self, message: UpdateMessage) -> UpdateResult:
        """First sighting of an object: it leads a new single-member school."""
        self.affiliation_table.set_leader(message.object_id, message.timestamp)
        self.location_table.add_record(message.object_id, message.as_record())
        self.spatial_table.add(message.object_id, message.location, message.timestamp)
        return UpdateResult(message.object_id, UpdateOutcome.NEW_LEADER)

    def _update_leader(self, message: UpdateMessage) -> UpdateResult:
        """Algorithm 1, lines 2-3."""
        previous = self.location_table.latest(message.object_id)
        self.location_table.add_record(message.object_id, message.as_record())
        previous_location = previous.location if previous is not None else None
        self.spatial_table.move(
            message.object_id,
            previous_location,
            message.location,
            message.timestamp,
        )
        return UpdateResult(message.object_id, UpdateOutcome.LEADER_UPDATED)

    def _update_follower(self, message: UpdateMessage, lf_record) -> UpdateResult:
        """Algorithm 1, lines 5-14."""
        leader_record = self.location_table.latest(lf_record.leader_id)
        estimation_error: Optional[float] = None
        if leader_record is not None:
            estimated = leader_record.extrapolated(message.timestamp).displaced(
                lf_record.displacement
            )
            estimation_error = estimated.distance_to(message.location)
            within_school = (
                self.config.enable_schools
                and estimation_error <= self.config.deviation_threshold
            )
            if within_school:
                return UpdateResult(
                    message.object_id, UpdateOutcome.SHED, estimation_error
                )
        # The follower departed its school (or the leader vanished): promote
        # it to the leader of a new school.
        self.affiliation_table.remove_follower(lf_record.leader_id, message.object_id)
        self.affiliation_table.set_leader(message.object_id, message.timestamp)
        self.location_table.add_record(message.object_id, message.as_record())
        self.spatial_table.add(message.object_id, message.location, message.timestamp)
        return UpdateResult(message.object_id, UpdateOutcome.PROMOTED, estimation_error)

"""repro — a reproduction of MOIST (VLDB 2012).

MOIST (Moving Object Indexer with School Tracking) is a spatial indexer for
moving objects built on a BigTable-style key-value store.  It cuts update
latency by grouping co-moving nearby objects into *object schools* and
indexing only each school's leader, adapts nearest-neighbour search
granularity to local density (FLAG), and archives aged location history onto
parallel disks with a locality-preserving parallel ping-pong scheme (PPP).

Quickstart::

    from repro import MoistIndexer, MoistConfig, UpdateMessage, Point, Vector

    indexer = MoistIndexer(MoistConfig())
    indexer.update(UpdateMessage("bus-42", Point(500.0, 500.0), Vector(1.0, 0.0), 0.0))
    nearest = indexer.nearest_neighbors(Point(500.0, 500.0), k=5)

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured results of every reproduced figure.
"""

from repro.core.config import MoistConfig
from repro.core.moist import MoistIndexer
from repro.core.update import UpdateOutcome, UpdateResult, UpdateStats
from repro.core.clustering import ClusteringReport
from repro.core.nn_search import NNQueryStats
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import (
    HistoryRecord,
    LocationRecord,
    NeighborResult,
    ObjectId,
    UpdateMessage,
    format_object_id,
)

__version__ = "1.0.0"

__all__ = [
    "MoistConfig",
    "MoistIndexer",
    "UpdateOutcome",
    "UpdateResult",
    "UpdateStats",
    "ClusteringReport",
    "NNQueryStats",
    "BoundingBox",
    "Point",
    "Vector",
    "HistoryRecord",
    "LocationRecord",
    "NeighborResult",
    "ObjectId",
    "UpdateMessage",
    "format_object_id",
    "__version__",
]

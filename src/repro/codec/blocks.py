"""On-disk block formats: journal records, run blocks, manifest blobs.

Three self-describing artifacts, all built from the same columnar
vocabulary as the wire (:mod:`repro.codec.columns` /
:mod:`repro.codec.values`) and all checksummed:

* **journal records** — one framed record per logical commit-log entry
  (``length | crc32 | payload``).  The journal is append-only and synced
  by the caller; :func:`iter_journal_records` replays a file and stops
  cleanly at the first truncated or corrupt frame, which is exactly the
  crash-consistency contract an fsynced append log provides.
* **run blocks** — one immutable block file per flushed SSTable run:
  front-coded sorted row keys, delta-encoded cell timestamps and tagged
  cell values, with tombstones as a one-byte marker.
* **manifest blobs** — a tagged-value dictionary (table metadata, tablet
  boundaries, run references, journal watermark) behind a magic number and
  a checksum, atomically replaced at every checkpoint.

Nothing here knows about file descriptors or fsync ordering — that policy
lives in :mod:`repro.disk.store`.  This module is pure bytes-in/bytes-out,
which keeps it property-testable without touching a filesystem.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.bigtable.lsm import TOMBSTONE
from repro.bigtable.table import Cell, _Row
from repro.codec.columns import (
    read_f64_delta_column,
    read_key_column,
    read_str,
    read_uvarint,
    write_f64_delta_column,
    write_key_column,
    write_str,
    write_uvarint,
)
from repro.codec.values import decode_value, encode_value

_U32 = struct.Struct("<I")

_JOURNAL_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

RUN_MAGIC = b"MOR1"
MANIFEST_MAGIC = b"MOM1"

_OPCODES = ("w", "dc", "dr", "age")
_OPCODE_INDEX = {opcode: index for index, opcode in enumerate(_OPCODES)}
_OP_OTHER = 255

_VALUE_TOMBSTONE = 0
_VALUE_ROW = 1


# --------------------------------------------------------------------------
# Journal records
# --------------------------------------------------------------------------


def encode_journal_record(record: tuple) -> bytes:
    """Frame one commit-log record ``(seq, opcode, *fields)``.

    The known opcodes get a one-byte tag; anything else (a future opcode)
    ships its string.  Fields ride the tagged value codec, so the journal
    never restricts what a mutation may carry."""
    seq, opcode = record[0], record[1]
    body = bytearray()
    write_uvarint(body, seq)
    index = _OPCODE_INDEX.get(opcode, _OP_OTHER)
    body.append(index)
    if index == _OP_OTHER:
        write_str(body, opcode)
    write_uvarint(body, len(record) - 2)
    for field in record[2:]:
        encode_value(body, field)
    return _JOURNAL_HEADER.pack(len(body), zlib.crc32(bytes(body))) + bytes(body)


def iter_journal_records(data) -> Iterator[tuple]:
    """Replay a journal byte string, stopping at the first truncated or
    corrupt frame (a torn tail write after a crash is expected, not an
    error)."""
    view = memoryview(data)
    pos = 0
    total = len(view)
    header_size = _JOURNAL_HEADER.size
    while pos + header_size <= total:
        length, crc = _JOURNAL_HEADER.unpack_from(view, pos)
        start = pos + header_size
        end = start + length
        if end > total:
            return
        payload = bytes(view[start:end])
        if zlib.crc32(payload) != crc:
            return
        seq, body_pos = read_uvarint(payload, 0)
        index = payload[body_pos]
        body_pos += 1
        if index == _OP_OTHER:
            opcode, body_pos = read_str(payload, body_pos)
        else:
            opcode = _OPCODES[index]
        nfields, body_pos = read_uvarint(payload, body_pos)
        fields = []
        for _ in range(nfields):
            field, body_pos = decode_value(payload, body_pos)
            fields.append(field)
        yield (seq, opcode, *fields)
        pos = end


# --------------------------------------------------------------------------
# Run blocks
# --------------------------------------------------------------------------


def _encode_row(out: bytearray, row: _Row) -> None:
    families = row.families
    write_uvarint(out, len(families))
    for family, qualifiers in families.items():
        write_str(out, family)
        write_uvarint(out, len(qualifiers))
        for qualifier, cells in qualifiers.items():
            write_str(out, qualifier)
            write_uvarint(out, len(cells))
            write_f64_delta_column(out, [cell.timestamp for cell in cells])
            for cell in cells:
                encode_value(out, cell.value)


def _decode_row(buf, pos: int) -> Tuple[_Row, int]:
    row = _Row()
    nfamilies, pos = read_uvarint(buf, pos)
    for _ in range(nfamilies):
        family, pos = read_str(buf, pos)
        qualifiers = {}
        nquals, pos = read_uvarint(buf, pos)
        for _ in range(nquals):
            qualifier, pos = read_str(buf, pos)
            ncells, pos = read_uvarint(buf, pos)
            timestamps, pos = read_f64_delta_column(buf, pos, ncells)
            cells = []
            for timestamp in timestamps:
                value, pos = decode_value(buf, pos)
                cells.append(Cell(timestamp=timestamp, value=value))
            qualifiers[qualifier] = cells
        row.families[family] = qualifiers
    return row, pos


def encode_run_block(
    keys: Sequence[str], values: Sequence[object], max_seqno: int
) -> bytes:
    """One immutable run file: sorted keys front-coded, each value either a
    tombstone marker or a full row."""
    body = bytearray()
    write_uvarint(body, len(keys))
    write_uvarint(body, max_seqno)
    write_key_column(body, keys)
    for value in values:
        if value is TOMBSTONE:
            body.append(_VALUE_TOMBSTONE)
        else:
            body.append(_VALUE_ROW)
            _encode_row(body, value)
    payload = bytes(body)
    return RUN_MAGIC + payload + _U32.pack(zlib.crc32(payload))


def decode_run_block(data) -> Tuple[List[str], List[object], int]:
    view = memoryview(data)
    if bytes(view[:4]) != RUN_MAGIC:
        raise ValueError("not a run block file")
    payload = bytes(view[4:-4])
    (crc,) = _U32.unpack_from(view, len(view) - 4)
    if zlib.crc32(payload) != crc:
        raise ValueError("run block checksum mismatch")
    count, pos = read_uvarint(payload, 0)
    max_seqno, pos = read_uvarint(payload, pos)
    keys, pos = read_key_column(payload, pos, count)
    values: List[object] = []
    for _ in range(count):
        marker = payload[pos]
        pos += 1
        if marker == _VALUE_TOMBSTONE:
            values.append(TOMBSTONE)
        else:
            row, pos = _decode_row(payload, pos)
            values.append(row)
    return keys, values, max_seqno


# --------------------------------------------------------------------------
# Manifest blobs
# --------------------------------------------------------------------------


def encode_manifest(manifest: dict) -> bytes:
    body = bytearray()
    encode_value(body, manifest)
    payload = bytes(body)
    return MANIFEST_MAGIC + payload + _U32.pack(zlib.crc32(payload))


def decode_manifest(data) -> Optional[dict]:
    """The manifest dictionary, or ``None`` when the blob is missing,
    foreign, or torn (the caller treats all three as "no checkpoint")."""
    if len(data) < 8 or bytes(data[:4]) != MANIFEST_MAGIC:
        return None
    payload = bytes(data[4:-4])
    (crc,) = _U32.unpack_from(data, len(data) - 4)
    if zlib.crc32(payload) != crc:
        return None
    manifest, _ = decode_value(payload, 0)
    return manifest if type(manifest) is dict else None

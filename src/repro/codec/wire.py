"""Columnar wire codecs for the multiprocess RPC path.

Three stateless batch codecs (updates, queries, generic CALL results) and
one *stateful* pair — :class:`NeighborStreamEncoder` /
:class:`NeighborStreamDecoder` — that together replace the fixed-width
per-record structs of PR 6.

The neighbour stream is where the bytes were: every NN query returns its
top-k as ``(id, x, y, distance, flags, leader)`` records, and the same
objects appear in query after query (an object's stored position changes
only when an update lands).  The stream codec therefore keeps, per shard:

* a dictionary of object ids (first appearance ships the id, every later
  appearance ships a small token);
* the last *(position, flags, leader)* sent per object — a record whose
  state did not change since it was last shipped costs one or two bytes.

Distances are never transmitted: ``NeighborResult.distance`` is exactly
``result.location.distance_to(query.location)`` (the searcher computes it
from those same operands), so the decoder reconstructs it bit-for-bit from
the query it already holds.  The encoder *verifies* that identity per
record and falls back to pickling the whole frame when it does not hold
(NaN positions, subclassed results, non-conforming ids) — fallback frames
leave the dictionary untouched on both sides, so the stream
self-resynchronises.  Both sides carry a frame sequence number; decoding
out of order raises instead of silently desynchronising the caches.

Encoder and decoder state is **per shard**, never per connection: the byte
stream for a shard depends only on that shard's frame sequence, which is
what keeps total wire bytes invariant across worker counts.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bigtable.cost import OpCounterSnapshot, OpKind
from repro.bigtable.tablet import TabletStats
from repro.codec.columns import (
    read_bitmap,
    read_f64_column,
    read_f64_delta_column,
    read_str,
    read_uvarint,
    write_bitmap,
    write_f64_column,
    write_f64_delta_column,
    write_str,
    write_uvarint,
)
from repro.errors import RpcError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import NeighborResult, UpdateMessage, format_object_id
from repro.workload.queries import NNQuery

_F64 = struct.Struct("<d")
_2F64 = struct.Struct("<2d")
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

FLAG_PICKLED = 0
FLAG_COLUMNAR = 1

_OBJ_PREFIX = "obj"
_OBJ_DIGITS = 10


def numeric_object_id(object_id: str) -> Optional[int]:
    """The integer behind ``format_object_id`` ids, or ``None``."""
    if (
        type(object_id) is str
        and len(object_id) == len(_OBJ_PREFIX) + _OBJ_DIGITS
        and object_id.startswith(_OBJ_PREFIX)
        and object_id[len(_OBJ_PREFIX):].isdigit()
    ):
        return int(object_id[len(_OBJ_PREFIX):])
    return None


# --------------------------------------------------------------------------
# Update batches (columnar, stateless)
# --------------------------------------------------------------------------


def encode_update_batch_columnar(
    messages: Sequence[UpdateMessage],
) -> Optional[bytes]:
    """Columnar payload for one group-commit buffer, or ``None`` when any
    message needs the pickle fallback (non-conforming id, subclass)."""
    ids = []
    for message in messages:
        if type(message) is not UpdateMessage:
            return None
        numeric = numeric_object_id(message.object_id)
        if numeric is None:
            return None
        ids.append(numeric)
    out = bytearray()
    write_uvarint(out, len(messages))
    for numeric in ids:
        write_uvarint(out, numeric)
    write_f64_column(out, [m.location.x for m in messages])
    write_f64_column(out, [m.location.y for m in messages])
    write_f64_column(out, [m.velocity.dx for m in messages])
    write_f64_column(out, [m.velocity.dy for m in messages])
    write_f64_delta_column(out, [m.timestamp for m in messages])
    return bytes(out)


def decode_update_batch_columnar(buf) -> List[UpdateMessage]:
    count, pos = read_uvarint(buf, 0)
    ids = []
    for _ in range(count):
        numeric, pos = read_uvarint(buf, pos)
        ids.append(numeric)
    xs, pos = read_f64_column(buf, pos, count)
    ys, pos = read_f64_column(buf, pos, count)
    dxs, pos = read_f64_column(buf, pos, count)
    dys, pos = read_f64_column(buf, pos, count)
    timestamps, pos = read_f64_delta_column(buf, pos, count)
    return [
        UpdateMessage(
            object_id=format_object_id(ids[i]),
            location=Point(xs[i], ys[i]),
            velocity=Vector(dxs[i], dys[i]),
            timestamp=timestamps[i],
        )
        for i in range(count)
    ]


# --------------------------------------------------------------------------
# Query batches (columnar, stateless)
# --------------------------------------------------------------------------


def encode_query_batch_columnar(queries: Sequence[NNQuery]) -> Optional[bytes]:
    for query in queries:
        if type(query) is not NNQuery:
            return None
        if query.k < 0:
            return None
    out = bytearray()
    write_uvarint(out, len(queries))
    write_f64_column(out, [q.location.x for q in queries])
    write_f64_column(out, [q.location.y for q in queries])
    for query in queries:
        write_uvarint(out, query.k)
    has_range = [q.range_limit is not None for q in queries]
    write_bitmap(out, has_range)
    write_f64_column(
        out, [q.range_limit for q in queries if q.range_limit is not None]
    )
    return bytes(out)


def decode_query_batch_columnar(buf) -> List[NNQuery]:
    count, pos = read_uvarint(buf, 0)
    xs, pos = read_f64_column(buf, pos, count)
    ys, pos = read_f64_column(buf, pos, count)
    ks = []
    for _ in range(count):
        k, pos = read_uvarint(buf, pos)
        ks.append(k)
    has_range, pos = read_bitmap(buf, pos, count)
    ranges, pos = read_f64_column(buf, pos, sum(has_range))
    ranged = iter(ranges)
    return [
        NNQuery(
            location=Point(xs[i], ys[i]),
            k=ks[i],
            range_limit=next(ranged) if has_range[i] else None,
        )
        for i in range(count)
    ]


# --------------------------------------------------------------------------
# Neighbour result stream (columnar, stateful, per shard)
# --------------------------------------------------------------------------

#: Per-record control values (low 2 bits of the control varint; high bits
#: carry the dictionary token).
_REC_UNCHANGED = 0
_REC_CHANGED = 1
_REC_NEW = 2


class NeighborStreamEncoder:
    """Worker-side half of the per-shard neighbour stream (see module
    docstring).  One instance per shard service; every encoded frame —
    columnar or pickled — advances the frame sequence number."""

    __slots__ = ("_tokens", "_state", "_seq")

    def __init__(self) -> None:
        self._tokens: Dict[str, int] = {}
        #: token -> (x_bits, y_bits, flags, leader_numeric) last sent.
        self._state: List[Tuple[int, int, int, int]] = []
        self._seq = 0

    def encode(
        self,
        batches: Sequence[Sequence[NeighborResult]],
        queries: Sequence[Any],
    ) -> bytes:
        """One response frame for one probe set (``len(batches)`` ==
        ``len(queries)``), flag byte included."""
        seq = self._seq
        self._seq = seq + 1
        plan = self._plan(batches, queries)
        if plan is None:
            out = bytearray([FLAG_PICKLED])
            write_uvarint(out, seq)
            out += pickle.dumps(
                [list(batch) for batch in batches], _PICKLE_PROTOCOL
            )
            return bytes(out)
        out = bytearray([FLAG_COLUMNAR])
        write_uvarint(out, seq)
        write_uvarint(out, len(batches))
        tokens = self._tokens
        state = self._state
        pack2 = _2F64.pack
        for batch_index, batch in enumerate(batches):
            write_uvarint(out, len(batch))
            for record_index, result in enumerate(batch):
                numeric, leader_numeric, x_bits, y_bits = plan[
                    (batch_index, record_index)
                ]
                flags = (1 if result.is_leader else 0) | (
                    2 if result.leader_id is not None else 0
                )
                entry = (x_bits, y_bits, flags, leader_numeric)
                token = tokens.get(result.object_id)
                if token is None:
                    token = len(state)
                    tokens[result.object_id] = token
                    state.append(entry)
                    write_uvarint(out, (token << 2) | _REC_NEW)
                    write_uvarint(out, numeric)
                    out += pack2(result.location.x, result.location.y)
                    out.append(flags)
                    if flags & 2:
                        write_uvarint(out, leader_numeric)
                elif state[token] != entry:
                    state[token] = entry
                    write_uvarint(out, (token << 2) | _REC_CHANGED)
                    out += pack2(result.location.x, result.location.y)
                    out.append(flags)
                    if flags & 2:
                        write_uvarint(out, leader_numeric)
                else:
                    write_uvarint(out, (token << 2) | _REC_UNCHANGED)
        return bytes(out)

    def _plan(
        self,
        batches: Sequence[Sequence[NeighborResult]],
        queries: Sequence[Any],
    ) -> Optional[Dict[Tuple[int, int], Tuple[int, int, int, int]]]:
        """Validate that every record is columnar-encodable *before*
        touching the dictionary, so a fallback frame mutates no state.
        Returns per-record ``(numeric_id, leader_numeric, x_bits, y_bits)``
        or ``None`` to request the pickle fallback."""
        if len(batches) != len(queries):
            return None
        plan: Dict[Tuple[int, int], Tuple[int, int, int, int]] = {}
        unpack_bits = struct.Struct("<2Q").unpack
        pack2 = _2F64.pack
        for batch_index, batch in enumerate(batches):
            query = queries[batch_index]
            location = getattr(query, "location", None)
            if type(location) is not Point:
                return None
            for record_index, result in enumerate(batch):
                if type(result) is not NeighborResult:
                    return None
                position = result.location
                if type(position) is not Point:
                    return None
                numeric = numeric_object_id(result.object_id)
                if numeric is None:
                    return None
                if result.leader_id is not None:
                    leader_numeric = numeric_object_id(result.leader_id)
                    if leader_numeric is None:
                        return None
                else:
                    leader_numeric = 0
                # The reconstruction identity the decoder relies on.  A
                # bit-compare (not ==) so NaN distances honestly fail into
                # the pickle fallback instead of silently "matching".
                recomputed = position.distance_to(location)
                if _F64.pack(recomputed) != _F64.pack(result.distance):
                    return None
                x_bits, y_bits = unpack_bits(pack2(position.x, position.y))
                plan[(batch_index, record_index)] = (
                    numeric,
                    leader_numeric,
                    x_bits,
                    y_bits,
                )
        return plan


class NeighborStreamDecoder:
    """Client-side half of the per-shard neighbour stream."""

    __slots__ = ("_ids", "_state", "_seq")

    def __init__(self) -> None:
        self._ids: List[str] = []
        #: token -> (point, is_leader, leader_id) last received.
        self._state: List[Tuple[Point, bool, Optional[str]]] = []
        self._seq = 0

    def decode(
        self, body, queries: Sequence[Any]
    ) -> List[List[NeighborResult]]:
        flag = body[0]
        raw_seq, pos = read_uvarint(body, 1)
        expected = self._seq
        if raw_seq != expected:
            raise RpcError(
                f"neighbour stream out of order: frame {raw_seq}, "
                f"expected {expected}"
            )
        self._seq = expected + 1
        if flag == FLAG_PICKLED:
            return pickle.loads(bytes(body[pos:]))
        if flag != FLAG_COLUMNAR:
            raise RpcError(f"unknown neighbour stream flag {flag}")
        num_batches, pos = read_uvarint(body, pos)
        if num_batches != len(queries):
            raise RpcError(
                f"neighbour stream shape mismatch: {num_batches} batches "
                f"for {len(queries)} queries"
            )
        ids = self._ids
        state = self._state
        unpack2 = _2F64.unpack_from
        batches: List[List[NeighborResult]] = []
        for query in queries:
            location = query.location
            count, pos = read_uvarint(body, pos)
            batch = []
            for _ in range(count):
                control, pos = read_uvarint(body, pos)
                mode = control & 3
                token = control >> 2
                if mode == _REC_NEW:
                    numeric, pos = read_uvarint(body, pos)
                    if token != len(ids):
                        raise RpcError("neighbour stream dictionary skew")
                    ids.append(format_object_id(numeric))
                    state.append(None)  # type: ignore[arg-type]
                if mode == _REC_UNCHANGED:
                    point, is_leader, leader_id = state[token]
                else:
                    x, y = unpack2(body, pos)
                    pos += 16
                    flags = body[pos]
                    pos += 1
                    if flags & 2:
                        leader_numeric, pos = read_uvarint(body, pos)
                        leader_id = format_object_id(leader_numeric)
                    else:
                        leader_id = None
                    point = Point(x, y)
                    is_leader = bool(flags & 1)
                    state[token] = (point, is_leader, leader_id)
                batch.append(
                    NeighborResult(
                        object_id=ids[token],
                        location=point,
                        distance=point.distance_to(location),
                        is_leader=is_leader,
                        leader_id=leader_id,
                    )
                )
            batches.append(batch)
        return batches


# --------------------------------------------------------------------------
# Generic CALL / RESULT slimming (hot metrics + ledger-merge calls)
# --------------------------------------------------------------------------

RESULT_PICKLE = 0
RESULT_NONE = 1
RESULT_TRUE = 2
RESULT_FALSE = 3
RESULT_INT = 4
RESULT_FLOAT = 5
RESULT_STR = 6
RESULT_METRICS = 7
RESULT_COUNTER_SNAPSHOT = 8
RESULT_TABLET_STATS = 9

#: Stable OpKind numbering for the wire (enum definition order; both sides
#: run the same module, the worker being a fork of the client).
_OPKIND_LIST = list(OpKind)
_OPKIND_INDEX = {kind: index for index, kind in enumerate(_OPKIND_LIST)}

_METRICS_KEYS = frozenset(("makespan", "servers", "master_actions", "has_master"))


def _is_metrics_snapshot(value: Any) -> bool:
    if type(value) is not dict or set(value) != _METRICS_KEYS:
        return False
    if type(value["makespan"]) is not float:
        return False
    if type(value["has_master"]) is not bool:
        return False
    actions = value["master_actions"]
    if type(actions) is not tuple or len(actions) != 3:
        return False
    if any(type(entry) is not int or entry < 0 for entry in actions):
        return False
    servers = value["servers"]
    if type(servers) is not list:
        return False
    for row in servers:
        if type(row) is not tuple or len(row) != 5:
            return False
        updates, queries, update_busy, query_busy, alive = row
        if type(updates) is not int or updates < 0:
            return False
        if type(queries) is not int or queries < 0:
            return False
        if type(update_busy) is not float or type(query_busy) is not float:
            return False
        if type(alive) is not bool:
            return False
    return True


def _write_kind_dict(out: bytearray, entries: Dict[OpKind, int]) -> bool:
    items = list(entries.items())
    for kind, value in items:
        if _OPKIND_INDEX.get(kind) is None or type(value) is not int or value < 0:
            return False
    write_uvarint(out, len(items))
    for kind, value in items:
        out.append(_OPKIND_INDEX[kind])
        write_uvarint(out, value)
    return True


def _read_kind_dict(buf, pos: int) -> Tuple[Dict[OpKind, int], int]:
    count, pos = read_uvarint(buf, pos)
    entries: Dict[OpKind, int] = {}
    for _ in range(count):
        index = buf[pos]
        pos += 1
        value, pos = read_uvarint(buf, pos)
        entries[_OPKIND_LIST[index]] = value
    return entries, pos


def encode_result_compact(value: Any) -> Optional[bytes]:
    """Typed fast paths for the hot CALL results (metrics snapshots, ledger
    merges, scalars); ``None`` defers to the caller's pickle fallback."""
    if value is None:
        return bytes([RESULT_NONE])
    kind = type(value)
    if kind is bool:
        return bytes([RESULT_TRUE if value else RESULT_FALSE])
    if kind is int:
        out = bytearray([RESULT_INT])
        if value < 0:
            return None
        write_uvarint(out, value)
        return bytes(out)
    if kind is float:
        return bytes([RESULT_FLOAT]) + _F64.pack(value)
    if kind is str:
        out = bytearray([RESULT_STR])
        write_str(out, value)
        return bytes(out)
    if kind is OpCounterSnapshot:
        out = bytearray([RESULT_COUNTER_SNAPSHOT])
        if not _write_kind_dict(out, value.counts):
            return None
        if not _write_kind_dict(out, value.rows):
            return None
        if not _write_kind_dict(out, value.durability_counts):
            return None
        if not _write_kind_dict(out, value.durability_rows):
            return None
        out += struct.pack(
            "<4d",
            value.simulated_seconds,
            value.read_seconds,
            value.write_seconds,
            value.durability_seconds,
        )
        if type(value.logical_write_rows) is not int or value.logical_write_rows < 0:
            return None
        write_uvarint(out, value.logical_write_rows)
        return bytes(out)
    if kind is list and all(type(entry) is TabletStats for entry in value):
        # The per-tablet accounting merge (``tablet_stats``) — encoded
        # field-typed rather than pickled, which also keeps the byte count
        # independent of CPython string-interning accidents (pickle's memo
        # makes equal payloads encode to different sizes depending on
        # whether equal strings are the same object).
        out = bytearray([RESULT_TABLET_STATS])
        write_uvarint(out, len(value))
        for entry in value:
            if (
                type(entry.table) is not str
                or type(entry.tablet_id) is not str
                or type(entry.start_key) is not str
                or not (entry.end_key is None or type(entry.end_key) is str)
            ):
                return None
            for field in (
                entry.row_count,
                entry.op_calls,
                entry.run_count,
                entry.log_records,
            ):
                if type(field) is not int or field < 0:
                    return None
            for field in (
                entry.simulated_seconds,
                entry.read_seconds,
                entry.write_seconds,
                entry.durability_seconds,
                entry.write_amplification,
            ):
                if type(field) is not float:
                    return None
            write_str(out, entry.table)
            write_str(out, entry.tablet_id)
            write_str(out, entry.start_key)
            if entry.end_key is None:
                out.append(0)
            else:
                out.append(1)
                write_str(out, entry.end_key)
            write_uvarint(out, entry.row_count)
            write_uvarint(out, entry.op_calls)
            write_uvarint(out, entry.run_count)
            write_uvarint(out, entry.log_records)
            out += struct.pack(
                "<5d",
                entry.simulated_seconds,
                entry.read_seconds,
                entry.write_seconds,
                entry.durability_seconds,
                entry.write_amplification,
            )
        return bytes(out)
    if _is_metrics_snapshot(value):
        out = bytearray([RESULT_METRICS])
        out += _F64.pack(value["makespan"])
        servers = value["servers"]
        write_uvarint(out, len(servers))
        for updates, queries, update_busy, query_busy, alive in servers:
            write_uvarint(out, updates)
            write_uvarint(out, queries)
            out += _2F64.pack(update_busy, query_busy)
            out.append(1 if alive else 0)
        for entry in value["master_actions"]:
            write_uvarint(out, entry)
        out.append(1 if value["has_master"] else 0)
        return bytes(out)
    return None


def decode_result_compact(body) -> Any:
    tag = body[0]
    if tag == RESULT_NONE:
        return None
    if tag == RESULT_TRUE:
        return True
    if tag == RESULT_FALSE:
        return False
    if tag == RESULT_INT:
        return read_uvarint(body, 1)[0]
    if tag == RESULT_FLOAT:
        return _F64.unpack_from(body, 1)[0]
    if tag == RESULT_STR:
        return read_str(body, 1)[0]
    if tag == RESULT_COUNTER_SNAPSHOT:
        counts, pos = _read_kind_dict(body, 1)
        rows, pos = _read_kind_dict(body, pos)
        durability_counts, pos = _read_kind_dict(body, pos)
        durability_rows, pos = _read_kind_dict(body, pos)
        simulated, read, write, durability = struct.unpack_from("<4d", body, pos)
        pos += 32
        logical, pos = read_uvarint(body, pos)
        return OpCounterSnapshot(
            counts=counts,
            rows=rows,
            simulated_seconds=simulated,
            read_seconds=read,
            write_seconds=write,
            durability_counts=durability_counts,
            durability_rows=durability_rows,
            durability_seconds=durability,
            logical_write_rows=logical,
        )
    if tag == RESULT_TABLET_STATS:
        count, pos = read_uvarint(body, 1)
        stats = []
        for _ in range(count):
            table, pos = read_str(body, pos)
            tablet_id, pos = read_str(body, pos)
            start_key, pos = read_str(body, pos)
            end_key = None
            has_end = body[pos]
            pos += 1
            if has_end:
                end_key, pos = read_str(body, pos)
            row_count, pos = read_uvarint(body, pos)
            op_calls, pos = read_uvarint(body, pos)
            run_count, pos = read_uvarint(body, pos)
            log_records, pos = read_uvarint(body, pos)
            (
                simulated,
                read_s,
                write_s,
                durability,
                amplification,
            ) = struct.unpack_from("<5d", body, pos)
            pos += 40
            stats.append(
                TabletStats(
                    table=table,
                    tablet_id=tablet_id,
                    start_key=start_key,
                    end_key=end_key,
                    row_count=row_count,
                    op_calls=op_calls,
                    simulated_seconds=simulated,
                    read_seconds=read_s,
                    write_seconds=write_s,
                    run_count=run_count,
                    log_records=log_records,
                    durability_seconds=durability,
                    write_amplification=amplification,
                )
            )
        return stats
    if tag == RESULT_METRICS:
        (makespan,) = _F64.unpack_from(body, 1)
        pos = 9
        count, pos = read_uvarint(body, pos)
        servers = []
        for _ in range(count):
            updates, pos = read_uvarint(body, pos)
            queries, pos = read_uvarint(body, pos)
            update_busy, query_busy = _2F64.unpack_from(body, pos)
            pos += 16
            alive = bool(body[pos])
            pos += 1
            servers.append((updates, queries, update_busy, query_busy, alive))
        actions = []
        for _ in range(3):
            entry, pos = read_uvarint(body, pos)
            actions.append(entry)
        has_master = bool(body[pos])
        return {
            "makespan": makespan,
            "servers": servers,
            "master_actions": tuple(actions),
            "has_master": has_master,
        }
    raise RpcError(f"unknown compact result tag {tag}")

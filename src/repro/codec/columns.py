"""Low-level columnar encoding primitives.

Every helper appends to a caller-owned ``bytearray`` (write side) or reads
from any buffer supporting integer indexing and slicing — ``bytes``,
``bytearray`` or ``memoryview`` — returning ``(value, next_position)``
(read side).  Encoders are deterministic: the same inputs always produce
the same bytes, which is what lets committed benchmark records and the
wire-bytes regression guard assert on exact byte counts.

Float columns are little-endian IEEE-754 doubles, always full width: the
scale-out determinism contract forbids lossy narrowing (a float32 round
trip would move merged simulated seconds).  Delta columns XOR consecutive
bit patterns and store only the significant bytes, so repeated or slowly
moving values (timestamps, Hilbert keys) cost one or two bytes instead of
eight.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")


# --------------------------------------------------------------------------
# Varints
# --------------------------------------------------------------------------


def write_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_uvarint(buf, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def write_svarint(out: bytearray, value: int) -> None:
    """Zigzag-mapped signed varint (small magnitudes stay small)."""
    write_uvarint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)


def read_svarint(buf, pos: int) -> Tuple[int, int]:
    raw, pos = read_uvarint(buf, pos)
    return (raw >> 1 if not raw & 1 else -((raw + 1) >> 1)), pos


# --------------------------------------------------------------------------
# Fixed-width float columns
# --------------------------------------------------------------------------


def write_f64_column(out: bytearray, values: Sequence[float]) -> None:
    """A packed little-endian float64 column (bit-exact, NaN/inf safe)."""
    out += struct.pack(f"<{len(values)}d", *values)


def read_f64_column(buf, pos: int, count: int) -> Tuple[Tuple[float, ...], int]:
    return struct.unpack_from(f"<{count}d", buf, pos), pos + 8 * count


# --------------------------------------------------------------------------
# XOR-delta float columns
# --------------------------------------------------------------------------


def write_f64_delta_column(out: bytearray, values: Sequence[float]) -> None:
    """Gorilla-style column: XOR against the previous value's bit pattern,
    store a length byte plus the significant big-endian bytes.  A repeated
    value costs one byte; a slowly advancing timestamp typically two to
    four."""
    prev = 0
    pack = _F64.pack
    unpack = _U64.unpack
    for value in values:
        bits = unpack(pack(value))[0]
        delta = bits ^ prev
        nbytes = (delta.bit_length() + 7) >> 3
        out.append(nbytes)
        if nbytes:
            out += delta.to_bytes(nbytes, "big")
        prev = bits


def read_f64_delta_column(buf, pos: int, count: int) -> Tuple[List[float], int]:
    prev = 0
    out = []
    pack = _U64.pack
    unpack = _F64.unpack
    for _ in range(count):
        nbytes = buf[pos]
        pos += 1
        if nbytes:
            prev ^= int.from_bytes(bytes(buf[pos : pos + nbytes]), "big")
            pos += nbytes
        out.append(unpack(pack(prev))[0])
    return out, pos


# --------------------------------------------------------------------------
# Bitmaps
# --------------------------------------------------------------------------


def write_bitmap(out: bytearray, flags: Sequence[bool]) -> None:
    """Bools packed eight to a byte, LSB first."""
    byte = 0
    for index, flag in enumerate(flags):
        if flag:
            byte |= 1 << (index & 7)
        if index & 7 == 7:
            out.append(byte)
            byte = 0
    if len(flags) & 7:
        out.append(byte)


def read_bitmap(buf, pos: int, count: int) -> Tuple[List[bool], int]:
    out = []
    for index in range(count):
        if index & 7 == 0:
            byte = buf[pos]
            pos += 1
        out.append(bool(byte & (1 << (index & 7))))
    return out, pos


# --------------------------------------------------------------------------
# Strings and front-coded sorted key columns
# --------------------------------------------------------------------------


def write_str(out: bytearray, text: str) -> None:
    encoded = text.encode("utf-8")
    write_uvarint(out, len(encoded))
    out += encoded


def read_str(buf, pos: int) -> Tuple[str, int]:
    length, pos = read_uvarint(buf, pos)
    return bytes(buf[pos : pos + length]).decode("utf-8"), pos + length


def write_key_column(out: bytearray, keys: Sequence[str]) -> None:
    """Front coding for sorted row keys: each entry stores the byte length
    it shares with its predecessor plus the remaining suffix.  Sorted
    Hilbert-curve keys share long prefixes, so a block's key column
    approaches delta-encoding the curve positions themselves."""
    prev = b""
    for key in keys:
        encoded = key.encode("utf-8")
        shared = 0
        limit = min(len(prev), len(encoded))
        while shared < limit and prev[shared] == encoded[shared]:
            shared += 1
        suffix = encoded[shared:]
        write_uvarint(out, shared)
        write_uvarint(out, len(suffix))
        out += suffix
        prev = encoded


def read_key_column(buf, pos: int, count: int) -> Tuple[List[str], int]:
    keys = []
    prev = b""
    for _ in range(count):
        shared, pos = read_uvarint(buf, pos)
        length, pos = read_uvarint(buf, pos)
        encoded = prev[:shared] + bytes(buf[pos : pos + length])
        pos += length
        keys.append(encoded.decode("utf-8"))
        prev = encoded
    return keys, pos

"""Columnar zero-copy codec layer.

One binary vocabulary — varints, fixed-width float columns, XOR-delta
float columns, bitmaps, front-coded sorted key columns and a tagged value
encoding — shared by the two consumers that used to each invent their own:

* the RPC wire (:mod:`repro.codec.wire`): columnar batch frames for
  update/query/neighbour bodies plus a per-shard *stateful* neighbour
  stream codec (dictionary-encoded object ids, positions re-sent only when
  they changed, distances reconstructed from the query location);
* on-disk SSTable blocks and commit-log journals
  (:mod:`repro.codec.blocks`): real block files and append-only journal
  records behind the :mod:`repro.disk.store` backend.

Everything is pure ``struct``/``array``/``memoryview`` Python — no new
dependencies — and every codec keeps a pickle fallback for exotic payloads
so correctness never hinges on the compact path.
"""

from repro.codec.columns import (
    read_bitmap,
    read_f64_column,
    read_f64_delta_column,
    read_key_column,
    read_str,
    read_svarint,
    read_uvarint,
    write_bitmap,
    write_f64_column,
    write_f64_delta_column,
    write_key_column,
    write_str,
    write_svarint,
    write_uvarint,
)
from repro.codec.values import decode_value, encode_value

__all__ = [
    "read_bitmap",
    "read_f64_column",
    "read_f64_delta_column",
    "read_key_column",
    "read_str",
    "read_svarint",
    "read_uvarint",
    "write_bitmap",
    "write_f64_column",
    "write_f64_delta_column",
    "write_key_column",
    "write_str",
    "write_svarint",
    "write_uvarint",
    "encode_value",
    "decode_value",
]

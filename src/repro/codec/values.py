"""Tagged binary value encoding with a per-value pickle fallback.

Cell values, commit-log payloads and manifest metadata are *mostly* simple
— strings, floats, tuples, :class:`~repro.geometry.point.Point`s — but the
table API accepts arbitrary objects.  This codec writes the common shapes
as one tag byte plus a compact body and quietly pickles anything else, so
the disk and wire layers stay byte-frugal without ever restricting what a
caller may store.

Type dispatch is on ``type(obj)`` exactly (no ``isinstance``): a subclass
may carry extra state a structural re-encode would drop, so subclasses take
the pickle path, which preserves them faithfully.
"""

from __future__ import annotations

import pickle
import struct
from typing import Tuple

from repro.codec.columns import read_str, read_svarint, read_uvarint, write_str, write_svarint, write_uvarint
from repro.geometry.point import Point
from repro.geometry.vector import Vector

_F64 = struct.Struct("<d")
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

TAG_PICKLE = 0
TAG_NONE = 1
TAG_FALSE = 2
TAG_TRUE = 3
TAG_INT = 4
TAG_FLOAT = 5
TAG_STR = 6
TAG_BYTES = 7
TAG_TUPLE = 8
TAG_LIST = 9
TAG_DICT = 10
TAG_POINT = 11
TAG_VECTOR = 12


def encode_value(out: bytearray, obj: object) -> None:
    kind = type(obj)
    if obj is None:
        out.append(TAG_NONE)
    elif kind is bool:
        out.append(TAG_TRUE if obj else TAG_FALSE)
    elif kind is int:
        out.append(TAG_INT)
        write_svarint(out, obj)
    elif kind is float:
        out.append(TAG_FLOAT)
        out += _F64.pack(obj)
    elif kind is str:
        out.append(TAG_STR)
        write_str(out, obj)
    elif kind is bytes:
        out.append(TAG_BYTES)
        write_uvarint(out, len(obj))
        out += obj
    elif kind is tuple or kind is list:
        out.append(TAG_TUPLE if kind is tuple else TAG_LIST)
        write_uvarint(out, len(obj))
        for item in obj:
            encode_value(out, item)
    elif kind is dict:
        out.append(TAG_DICT)
        write_uvarint(out, len(obj))
        for key, value in obj.items():
            encode_value(out, key)
            encode_value(out, value)
    elif kind is Point:
        out.append(TAG_POINT)
        out += _F64.pack(obj.x)
        out += _F64.pack(obj.y)
    elif kind is Vector:
        out.append(TAG_VECTOR)
        out += _F64.pack(obj.dx)
        out += _F64.pack(obj.dy)
    else:
        payload = pickle.dumps(obj, _PICKLE_PROTOCOL)
        out.append(TAG_PICKLE)
        write_uvarint(out, len(payload))
        out += payload


def decode_value(buf, pos: int) -> Tuple[object, int]:
    tag = buf[pos]
    pos += 1
    if tag == TAG_NONE:
        return None, pos
    if tag == TAG_FALSE:
        return False, pos
    if tag == TAG_TRUE:
        return True, pos
    if tag == TAG_INT:
        return read_svarint(buf, pos)
    if tag == TAG_FLOAT:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == TAG_STR:
        return read_str(buf, pos)
    if tag == TAG_BYTES:
        length, pos = read_uvarint(buf, pos)
        return bytes(buf[pos : pos + length]), pos + length
    if tag == TAG_TUPLE or tag == TAG_LIST:
        count, pos = read_uvarint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = decode_value(buf, pos)
            items.append(item)
        return (tuple(items) if tag == TAG_TUPLE else items), pos
    if tag == TAG_DICT:
        count, pos = read_uvarint(buf, pos)
        result = {}
        for _ in range(count):
            key, pos = decode_value(buf, pos)
            value, pos = decode_value(buf, pos)
            result[key] = value
        return result, pos
    if tag == TAG_POINT:
        x, y = struct.unpack_from("<2d", buf, pos)
        return Point(x, y), pos + 16
    if tag == TAG_VECTOR:
        dx, dy = struct.unpack_from("<2d", buf, pos)
        return Vector(dx, dy), pos + 16
    if tag == TAG_PICKLE:
        length, pos = read_uvarint(buf, pos)
        return pickle.loads(bytes(buf[pos : pos + length])), pos + length
    raise ValueError(f"unknown value tag {tag}")

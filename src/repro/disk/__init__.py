"""Disk layer: the analytic model and the real-bytes tablet store.

Two halves live here.  :mod:`repro.disk.model` / :mod:`repro.disk.array`
are the *analytic* side used by the PPP archiver (Section 3.6): the paper
sizes the parallel ping-pong buffers with a simple mechanical-disk model —
a flush of a per-disk buffer of size ``sB/nd`` costs
``Td = Trot + Tseek + sB / (nd * Rdisk)``, the write-side utilisation is
``Ud = sB / (nd * Rdisk * (Trot + Tseek))`` and the read-side resolution
is ``Rd = k * nd / no``.

:mod:`repro.disk.store` is the *physical* side: one directory per table
holding an fsynced append-only commit-log journal, immutable SSTable run
block files and an atomically-replaced manifest, all serialized through
the shared columnar codec (:mod:`repro.codec.blocks`).  The in-memory LSM
engine stays the source of truth during normal operation (the store is
write-through and write-only); after a hard process kill,
:func:`repro.disk.store.restore_table` rebuilds a bit-identical table from
the files alone.
"""

from repro.disk.model import DiskModel
from repro.disk.array import DiskArray, DiskSegment
from repro.disk.store import DiskTableStore, restore_table

__all__ = [
    "DiskModel",
    "DiskArray",
    "DiskSegment",
    "DiskTableStore",
    "restore_table",
]

"""Analytic disk model used by the PPP archiver (Section 3.6).

The paper sizes the parallel ping-pong buffers with a simple mechanical-disk
model: a flush of a per-disk buffer of size ``sB/nd`` costs
``Td = Trot + Tseek + sB / (nd * Rdisk)``, the write-side utilisation is
``Ud = sB / (nd * Rdisk * (Trot + Tseek))`` and the read-side resolution is
``Rd = k * nd / no``.  :class:`DiskModel` encodes those formulas and
:class:`DiskArray` provides the in-memory "disk files" that PPP flushes land
on, so history queries can measure read amplification.
"""

from repro.disk.model import DiskModel
from repro.disk.array import DiskArray, DiskSegment

__all__ = ["DiskModel", "DiskArray", "DiskSegment"]

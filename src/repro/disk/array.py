"""In-memory stand-in for the parallel archival disks.

Each :class:`DiskSegment` is one flushed buffer page: an append-only list of
archived records together with the flush timestamp.  A :class:`DiskArray`
holds ``nd`` independent disks and lets history queries measure how many
segments (i.e. how many seeks) they had to touch — the read-amplification
metric behind the paper's ``Rd`` read-resolution argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.disk.model import DiskModel
from repro.errors import ArchiveError
from repro.model import HistoryRecord


@dataclass
class DiskSegment:
    """One flushed buffer page living on a single disk."""

    disk_index: int
    flush_time: float
    records: List[HistoryRecord] = field(default_factory=list)

    def object_ids(self) -> List[str]:
        """Distinct object ids present in this segment."""
        seen = []
        seen_set = set()
        for record in self.records:
            if record.object_id not in seen_set:
                seen_set.add(record.object_id)
                seen.append(record.object_id)
        return seen


class DiskArray:
    """``nd`` independent archival disks."""

    def __init__(self, num_disks: int, model: DiskModel = DiskModel()) -> None:
        if num_disks <= 0:
            raise ArchiveError(f"a disk array needs at least one disk, got {num_disks}")
        self.num_disks = num_disks
        self.model = model
        self._segments: Dict[int, List[DiskSegment]] = {
            index: [] for index in range(num_disks)
        }
        #: Simulated seconds spent flushing, per disk.
        self.flush_seconds: Dict[int, float] = {index: 0.0 for index in range(num_disks)}

    def flush(
        self,
        disk_index: int,
        records: Sequence[HistoryRecord],
        flush_time: float,
        record_bytes: int = 64,
    ) -> DiskSegment:
        """Append a segment of ``records`` to one disk and charge flush time."""
        if not 0 <= disk_index < self.num_disks:
            raise ArchiveError(
                f"disk index {disk_index} out of range for {self.num_disks} disks"
            )
        segment = DiskSegment(
            disk_index=disk_index, flush_time=flush_time, records=list(records)
        )
        self._segments[disk_index].append(segment)
        self.flush_seconds[disk_index] += self.model.flush_time(
            buffer_bytes=len(records) * record_bytes, num_disks=1
        )
        return segment

    def segments(self, disk_index: int) -> List[DiskSegment]:
        """All segments flushed to one disk, in flush order."""
        if not 0 <= disk_index < self.num_disks:
            raise ArchiveError(
                f"disk index {disk_index} out of range for {self.num_disks} disks"
            )
        return list(self._segments[disk_index])

    def all_segments(self) -> Iterator[DiskSegment]:
        """Every segment across every disk."""
        for disk_index in range(self.num_disks):
            for segment in self._segments[disk_index]:
                yield segment

    def segment_count(self) -> int:
        """Total number of segments across all disks."""
        return sum(len(segments) for segments in self._segments.values())

    def record_count(self) -> int:
        """Total number of archived records across all disks."""
        return sum(
            len(segment.records)
            for segments in self._segments.values()
            for segment in segments
        )

    def total_flush_seconds(self) -> float:
        """Aggregate simulated flush time across all disks."""
        return sum(self.flush_seconds.values())

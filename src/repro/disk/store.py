"""Per-table persistent store: journal, run block files, manifest.

Layout of one table's directory::

    <root>/
      journal.bin     append-only framed commit-log records, fsynced at the
                      same points the simulation charges LOG_APPEND
      MANIFEST.bin    checksummed tagged-value blob, atomically replaced
                      (tmp + fsync + os.replace) at every checkpoint
      runs/<id>.run   one immutable block file per SSTable run, written
                      exactly once when the run first appears in a manifest

The store is **write-through and write-only** during normal operation: the
in-memory LSM engine never reads these files while alive, so attaching a
store changes no simulated ledger, split decision or query result.  Reads
happen exactly once — in :func:`restore_table`, after a process death.

Crash-consistency protocol (all orderings enforced here):

* every commit-log append lands in ``journal.bin`` before its fsync point;
* a checkpoint first writes any run files the manifest will reference
  (fsynced), then atomically replaces the manifest (which carries the
  journal sequence watermark), then truncates the journal — a crash
  between the last two steps leaves stale journal records that the
  watermark filters out on restore;
* structural events (split, merge, flush, compaction, family addition)
  always checkpoint, so the journal tail never spans a tablet-boundary
  change and replaying it through the *restored* boundaries is exact.

Restore rebuilds the locator surgically — each distinct run file is loaded
once and its key/value arrays (and Bloom filter) are shared across every
tablet slice referencing it, preserving the ``try_coalesce`` identity
checks — then replays the journal tail into the per-tablet logs and runs
the engine's own (uncharged) crash recovery, which reconstructs the exact
pre-kill memtables per the PR 4 recovery invariant.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import shutil
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.errors import UnrecoverableShardError

from repro.bigtable.lsm import BloomFilter, SSTable
from repro.bigtable.scan import BlockCacheOptions
from repro.bigtable.table import ColumnFamily, Table
from repro.bigtable.tablet import Tablet, TabletOptions
from repro.codec.blocks import (
    decode_manifest,
    decode_run_block,
    encode_journal_record,
    encode_manifest,
    encode_run_block,
    iter_journal_records,
)

MANIFEST_FORMAT = 1

_JOURNAL_NAME = "journal.bin"
_MANIFEST_NAME = "MANIFEST.bin"
_RUNS_DIR = "runs"


def _run_filename(run_id: str) -> str:
    return run_id.replace("/", "__") + ".run"


class DiskTableStore:
    """Write-through persistence for one :class:`Table` (see module doc)."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._runs_dir = os.path.join(root, _RUNS_DIR)
        os.makedirs(self._runs_dir, exist_ok=True)
        self._journal_path = os.path.join(root, _JOURNAL_NAME)
        self._manifest_path = os.path.join(root, _MANIFEST_NAME)
        self._journal = open(self._journal_path, "ab", buffering=0)
        #: run_id -> filename for every run known to be on disk.
        self._persisted: Dict[str, str] = {
            name[: -len(".run")].replace("__", "/"): name
            for name in os.listdir(self._runs_dir)
            if name.endswith(".run")
        }
        self.journal_bytes = 0
        self.run_bytes = 0
        self.manifest_bytes = 0
        self.journal_syncs = 0
        self.checkpoints = 0

    @property
    def bytes_written(self) -> int:
        return self.journal_bytes + self.run_bytes + self.manifest_bytes

    def has_checkpoint(self) -> bool:
        return os.path.exists(self._manifest_path)

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def journal_append(self, record: tuple) -> None:
        frame = encode_journal_record(record)
        self._journal.write(frame)
        self.journal_bytes += len(frame)

    def journal_sync(self) -> None:
        os.fsync(self._journal.fileno())
        self.journal_syncs += 1

    def read_journal(self) -> List[tuple]:
        with open(self._journal_path, "rb") as handle:
            return list(iter_journal_records(handle.read()))

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, table: Table) -> None:
        """Persist the table's durable skeleton: run files for every run
        the manifest references, then the manifest itself, then truncate
        the journal (its records are all reflected in the manifest now)."""
        locator = table._tablets
        tablets = []
        for tablet in locator._tablets:
            runs = []
            for run in tablet.runs:
                self._ensure_run_file(run)
                runs.append((run.run_id, run._lo, run._hi, run.max_seqno))
            tablets.append(
                {
                    "id": tablet.tablet_id,
                    "start": tablet.start_key,
                    "next_run": tablet._next_run,
                    "runs": runs,
                    "log": list(tablet.log.records),
                }
            )
        manifest = {
            "format": MANIFEST_FORMAT,
            "name": table.name,
            "seq": table._seq,
            "next_tablet_id": locator._next_id,
            "splits": locator.splits,
            "merges": locator.merges,
            "options": dataclasses.asdict(table.options),
            "families": [
                dataclasses.asdict(family)
                for family in table._families.values()
            ],
            "tablets": tablets,
        }
        blob = encode_manifest(manifest)
        tmp_path = self._manifest_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self._manifest_path)
        self.manifest_bytes += len(blob)
        self.checkpoints += 1
        # The manifest now owns every record below the watermark; drop them.
        os.ftruncate(self._journal.fileno(), 0)
        self._gc_runs(
            {run[0] for entry in tablets for run in entry["runs"]}
        )

    def _ensure_run_file(self, run: SSTable) -> None:
        if run.run_id in self._persisted:
            return
        filename = _run_filename(run.run_id)
        # Run files store the FULL backing arrays; sliced tablets reference
        # [lo, hi) windows of the shared file via the manifest.
        blob = encode_run_block(run._keys, run._values, run.max_seqno)
        path = os.path.join(self._runs_dir, filename)
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        self._persisted[run.run_id] = filename
        self.run_bytes += len(blob)

    def _gc_runs(self, live_run_ids: set) -> None:
        """Delete run files no manifest references anymore (compaction and
        flush retire runs; their files are garbage after the checkpoint)."""
        if not live_run_ids and not self._persisted:
            return
        for run_id in list(self._persisted):
            if run_id not in live_run_ids:
                filename = self._persisted.pop(run_id)
                try:
                    os.remove(os.path.join(self._runs_dir, filename))
                except OSError:  # pragma: no cover - best-effort GC
                    pass

    # ------------------------------------------------------------------
    # Restore-side reads
    # ------------------------------------------------------------------
    def load_manifest(self) -> Optional[dict]:
        try:
            with open(self._manifest_path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        manifest = decode_manifest(data)
        if manifest is None or manifest.get("format") != MANIFEST_FORMAT:
            return None
        return manifest

    def read_run(self, run_id: str) -> Tuple[List[str], List[object], int]:
        path = os.path.join(self._runs_dir, _run_filename(run_id))
        with open(path, "rb") as handle:
            keys, values, max_seqno = decode_run_block(handle.read())
        return keys, values, max_seqno

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._journal.closed:
            self._journal.close()

    def destroy(self) -> None:
        self.close()
        shutil.rmtree(self.root, ignore_errors=True)


def restore_table(
    store: DiskTableStore,
    name: str,
    families,
    counter,
    cache_options: Optional[BlockCacheOptions] = None,
    max_seq: Optional[int] = None,
) -> Optional[Table]:
    """Rebuild a table from its store directory, or ``None`` when no
    checkpoint exists (first boot).  Tablet options come from the manifest
    — a restart needs no knob re-plumbing — and families are the union of
    the caller's declarations and what the manifest recorded (archiving may
    have added aged families at runtime).

    ``max_seq`` bounds the restore to an *acked* point: journal records past
    it are discarded (the parent never saw their batch acknowledged, so the
    supervisor will re-send it), and a structural checkpoint already beyond
    it is unrecoverable — the pre-ack state can no longer be reconstructed.
    """
    manifest = store.load_manifest()
    if manifest is None:
        return None
    if manifest["name"] != name:
        raise ValueError(
            f"store at {store.root!r} holds table {manifest['name']!r}, "
            f"not {name!r}"
        )
    if max_seq is not None and manifest["seq"] > max_seq:
        raise UnrecoverableShardError(
            f"table {name!r} checkpointed at seq {manifest['seq']}, past the "
            f"acked watermark {max_seq}: mid-batch structural checkpoint "
            "cannot be rolled back"
        )
    options = TabletOptions(**manifest["options"])
    table = Table(
        name,
        families,
        counter=counter,
        options=options,
        cache_options=cache_options,
    )
    for family_fields in manifest["families"]:
        if family_fields["name"] not in table._families:
            table.add_family(ColumnFamily(**family_fields))

    locator = table._tablets
    model = counter.model
    # Load each distinct run file once: slices of the same run must share
    # their backing arrays (coalesce checks use identity) and their Bloom
    # filter (built over the full key set regardless of slice).
    loaded: Dict[str, Tuple[List[str], List[object], int, BloomFilter]] = {}
    tablets: List[Tablet] = []
    for entry in manifest["tablets"]:
        tablet = Tablet(entry["id"], entry["start"], model)
        tablet._next_run = entry["next_run"]
        for run_id, lo, hi, max_seqno in entry["runs"]:
            cached = loaded.get(run_id)
            if cached is None:
                keys, values, file_seqno = store.read_run(run_id)
                cached = (keys, values, file_seqno, BloomFilter(keys))
                loaded[run_id] = cached
            keys, values, _, bloom = cached
            tablet.runs.append(
                SSTable(run_id, keys, values, max_seqno, lo, hi, bloom=bloom)
            )
        for record in entry["log"]:
            tablet.log.append(tuple(record))
        tablets.append(tablet)
    locator._tablets = tablets
    locator._starts = [tablet.start_key for tablet in tablets]
    locator._next_id = manifest["next_tablet_id"]
    locator.splits = manifest["splits"]
    locator.merges = manifest["merges"]
    table._seq = manifest["seq"]

    # Journal tail: records committed after the checkpoint.  Splits and
    # merges always checkpoint, so the restored boundaries are exactly the
    # boundaries these records were routed under when first applied.
    watermark = manifest["seq"]
    for record in store.read_journal():
        if record[0] <= watermark:
            continue  # checkpointed after this record was journalled
        if max_seq is not None and record[0] > max_seq:
            continue  # never acked to the parent: the retry will re-send it
        locator.locate(record[2]).log.append(record)
        if record[0] > table._seq:
            table._seq = record[0]

    # The engine's own crash recovery replays every log over the runs,
    # reconstructing the exact pre-kill memtables — uncharged, exactly as
    # the PR 4 recovery property guarantees.
    table.recover()
    table.attach_store(store)
    return table


# --------------------------------------------------------------------------
# Soft-state blobs (shard accounting checkpoints)
# --------------------------------------------------------------------------

_STATE_HEADER = struct.Struct("<II")  # payload length, crc32(payload)


def write_state_blob(path: str, payload: dict) -> int:
    """Atomically persist a pickled accounting snapshot (tmp + os.replace).

    No fsync: the blob only needs to survive *process* death, not power
    loss — the durable LSM state underneath carries its own fsync protocol.
    Returns the byte count written (for accounting)."""
    body = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
    blob = _STATE_HEADER.pack(len(body), zlib.crc32(body)) + body
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(blob)
    os.replace(tmp_path, path)
    return len(blob)


def read_state_blob(path: str) -> Optional[dict]:
    """Load a snapshot written by :func:`write_state_blob`, or ``None`` when
    the file is absent, torn or corrupt (caller falls back to a cold
    rebuild)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return None
    if len(data) < _STATE_HEADER.size:
        return None
    length, crc = _STATE_HEADER.unpack_from(data)
    body = data[_STATE_HEADER.size:_STATE_HEADER.size + length]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        payload = pickle.loads(body)
    except Exception:
        return None
    return payload if isinstance(payload, dict) else None

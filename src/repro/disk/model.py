"""Mechanical disk timing model (Section 3.6.2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DiskModel:
    """Seek/rotate/transfer parameters of one archival disk.

    Defaults approximate a 7,200 rpm SATA drive of the paper's era: ~4.2 ms
    average rotational latency, ~8 ms average seek, 100 MB/s sequential
    transfer.
    """

    rotational_delay_s: float = 4.2e-3
    seek_time_s: float = 8.0e-3
    transfer_rate_bytes_per_s: float = 100e6

    def __post_init__(self) -> None:
        if self.rotational_delay_s < 0 or self.seek_time_s < 0:
            raise ConfigurationError("disk latencies must be non-negative")
        if self.transfer_rate_bytes_per_s <= 0:
            raise ConfigurationError("disk transfer rate must be positive")

    @property
    def access_latency_s(self) -> float:
        """``Trot + Tseek`` — the fixed cost of every flush."""
        return self.rotational_delay_s + self.seek_time_s

    def flush_time(self, buffer_bytes: float, num_disks: int) -> float:
        """``Td`` for flushing ``buffer_bytes`` split evenly over ``num_disks``.

        Equation (1): ``Td = Trot + Tseek + sB / (nd * Rdisk)``.
        """
        if num_disks <= 0:
            raise ConfigurationError("num_disks must be positive")
        if buffer_bytes < 0:
            raise ConfigurationError("buffer size must be non-negative")
        return self.access_latency_s + buffer_bytes / (
            num_disks * self.transfer_rate_bytes_per_s
        )

    def write_utilisation(self, buffer_bytes: float, num_disks: int) -> float:
        """``Ud = sB / (nd * Rdisk * (Trot + Tseek))``.

        The fraction of a flush spent actually transferring data; it shrinks
        as the per-disk buffer shrinks (more disks, same total buffer).
        """
        if num_disks <= 0:
            raise ConfigurationError("num_disks must be positive")
        if buffer_bytes < 0:
            raise ConfigurationError("buffer size must be non-negative")
        return buffer_bytes / (
            num_disks * self.transfer_rate_bytes_per_s * self.access_latency_s
        )

    @staticmethod
    def read_resolution(num_disks: int, num_objects: int, k: float = 1.0) -> float:
        """``Rd = k * nd / no`` — query-side effectiveness of the placement.

        ``k`` is the paper's normalisation factor tuned to the cluster's
        operational cost and the read/write mix.
        """
        if num_disks <= 0 or num_objects <= 0:
            raise ConfigurationError("num_disks and num_objects must be positive")
        if k <= 0:
            raise ConfigurationError("normalisation factor k must be positive")
        return k * num_disks / num_objects

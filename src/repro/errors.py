"""Exception hierarchy shared by the whole ``repro`` package.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch library-level failures without accidentally swallowing programming
errors (``TypeError``, ``AttributeError`` and friends propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpatialError(ReproError):
    """Invalid spatial-index operation (bad level, out-of-range coordinate)."""


class StorageError(ReproError):
    """Errors raised by the BigTable emulator layer."""


class TableNotFoundError(StorageError):
    """A named table does not exist in the emulator."""


class RowNotFoundError(StorageError):
    """A point read targeted a row key that is absent."""


class ColumnFamilyError(StorageError):
    """A mutation referenced a column family that was never declared."""


class SchemaError(ReproError):
    """A MOIST table wrapper received a malformed record."""


class ClusteringError(ReproError):
    """School clustering was invoked with inconsistent state."""


class ArchiveError(ReproError):
    """Errors raised by the PPP aged-data archiving subsystem."""


class WorkloadError(ReproError):
    """Invalid workload configuration (e.g. empty road network)."""


class ConfigurationError(ReproError):
    """A configuration object failed validation."""


class QueryError(ReproError):
    """A query (NN, history, point) was malformed or unanswerable."""


class RpcError(ReproError):
    """A cross-process RPC failed (framing, dispatch or transport)."""


class WorkerDiedError(RpcError):
    """A tablet worker process died or stopped answering mid-conversation."""


class FrameCorruptionError(RpcError):
    """An RPC frame failed its header crc32 check (bit flip or truncation)."""


class StaleRequestError(RpcError):
    """A worker received a request id it has already moved past.

    Raised by the worker-side exactly-once dedup window when a request id is
    *older* than the last applied one — a retry protocol bug, since the
    parent collects every data-plane response before sending the next batch.
    """


class WorkerCircuitOpenError(RpcError):
    """A worker's circuit breaker tripped: too many consecutive failures.

    The supervisor stops respawning and surfaces a terminal error instead of
    retrying forever against a worker (or a workload) that cannot recover.
    """


class UnrecoverableShardError(RpcError):
    """A shard's durable state cannot be restored to a consistent point.

    Raised when the on-disk structural checkpoint has advanced *past* the
    accounting watermark the parent can vouch for — the shard was
    checkpointed mid-batch and the acked boundary can no longer be
    reconstructed."""

"""Exception hierarchy shared by the whole ``repro`` package.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch library-level failures without accidentally swallowing programming
errors (``TypeError``, ``AttributeError`` and friends propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpatialError(ReproError):
    """Invalid spatial-index operation (bad level, out-of-range coordinate)."""


class StorageError(ReproError):
    """Errors raised by the BigTable emulator layer."""


class TableNotFoundError(StorageError):
    """A named table does not exist in the emulator."""


class RowNotFoundError(StorageError):
    """A point read targeted a row key that is absent."""


class ColumnFamilyError(StorageError):
    """A mutation referenced a column family that was never declared."""


class SchemaError(ReproError):
    """A MOIST table wrapper received a malformed record."""


class ClusteringError(ReproError):
    """School clustering was invoked with inconsistent state."""


class ArchiveError(ReproError):
    """Errors raised by the PPP aged-data archiving subsystem."""


class WorkloadError(ReproError):
    """Invalid workload configuration (e.g. empty road network)."""


class ConfigurationError(ReproError):
    """A configuration object failed validation."""


class QueryError(ReproError):
    """A query (NN, history, point) was malformed or unanswerable."""


class RpcError(ReproError):
    """A cross-process RPC failed (framing, dispatch or transport)."""


class WorkerDiedError(RpcError):
    """A tablet worker process died or stopped answering mid-conversation."""

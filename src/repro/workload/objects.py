"""Moving objects of the road-network workload (Section 4.1).

Objects are either pedestrians (speed drawn from 0-1 units/s) or cars
(1-2 units/s).  Every object starts on a randomly selected road, moves along
it, and chooses a turn with equal probability when it reaches a crossroad.
Pedestrians arriving near a building entrance enter with 5 % probability;
once inside, each update places them uniformly at random inside the
building, and they leave with 5 % probability per update.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import WorkloadError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import ObjectId
from repro.workload.roadnetwork import Building, RoadNetwork


class ObjectKind(enum.Enum):
    """Pedestrian or car, with the paper's speed ranges."""

    PEDESTRIAN = "pedestrian"
    CAR = "car"

    def speed_range(self) -> Tuple[float, float]:
        """Speed bounds in units per second."""
        if self is ObjectKind.PEDESTRIAN:
            return (0.05, 1.0)
        return (1.0, 2.0)


@dataclass
class MovingObject:
    """One simulated object walking/driving the road network."""

    object_id: ObjectId
    kind: ObjectKind
    network: RoadNetwork
    rng: random.Random
    #: Probability a pedestrian enters a building on arriving at a crossroad,
    #: and leaves it again per in-building update.
    building_probability: float = 0.05

    # Road state: the intersection the object last passed, the one it heads
    # to, and how far along the segment it is.
    _from_node: Tuple[int, int] = field(init=False)
    _to_node: Tuple[int, int] = field(init=False)
    _offset: float = field(init=False, default=0.0)
    speed: float = field(init=False)
    #: When inside a building, the building; ``None`` while on a road.
    _inside: Optional[Building] = field(init=False, default=None)
    _indoor_position: Optional[Point] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.building_probability <= 1.0:
            raise WorkloadError("building_probability must be in [0, 1]")
        low, high = self.kind.speed_range()
        self.speed = self.rng.uniform(low, high)
        n = self.network.intersections_per_side
        start = (self.rng.randrange(n), self.rng.randrange(n))
        self._from_node = start
        self._to_node = self._choose_next(start, previous=None)
        self._offset = self.rng.uniform(0.0, self.network.block_size)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def is_inside_building(self) -> bool:
        """True while the object is inside a building."""
        return self._inside is not None

    def position(self) -> Point:
        """Current world position."""
        if self._inside is not None and self._indoor_position is not None:
            return self._indoor_position
        origin = self.network.intersection_point(*self._from_node)
        target = self.network.intersection_point(*self._to_node)
        segment = origin.displacement_to(target)
        length = segment.magnitude()
        if length == 0:
            return origin
        fraction = min(self._offset / length, 1.0)
        return origin.displaced(segment.scaled(fraction))

    def velocity(self) -> Vector:
        """Current velocity vector (zero while inside a building)."""
        if self._inside is not None:
            return Vector.zero()
        origin = self.network.intersection_point(*self._from_node)
        target = self.network.intersection_point(*self._to_node)
        direction = origin.displacement_to(target).normalised()
        return direction.scaled(self.speed)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(self, dt: float) -> None:
        """Advance the object by ``dt`` seconds."""
        if dt < 0:
            raise WorkloadError("dt must be non-negative")
        if self._inside is not None:
            self._step_indoors()
            return
        remaining = self.speed * dt
        while remaining > 0:
            origin = self.network.intersection_point(*self._from_node)
            target = self.network.intersection_point(*self._to_node)
            length = origin.distance_to(target)
            to_go = length - self._offset
            if remaining < to_go:
                self._offset += remaining
                return
            # Arrive at the next crossroad and decide what to do there.
            remaining -= to_go
            previous = self._from_node
            self._from_node = self._to_node
            self._offset = 0.0
            if self.kind is ObjectKind.PEDESTRIAN and (
                self.rng.random() < self.building_probability
            ):
                self._enter_building()
                return
            self._to_node = self._choose_next(self._from_node, previous=previous)

    def _step_indoors(self) -> None:
        """One update while inside a building: re-place or leave."""
        assert self._inside is not None
        if self.rng.random() < self.building_probability:
            # Leave through the entrance and resume walking the roads.
            exit_node = self.network.nearest_intersection(self._inside.entrance)
            self._from_node = exit_node
            self._to_node = self._choose_next(exit_node, previous=None)
            self._offset = 0.0
            self._inside = None
            self._indoor_position = None
            return
        footprint = self._inside.footprint
        self._indoor_position = Point(
            self.rng.uniform(footprint.min_x, footprint.max_x),
            self.rng.uniform(footprint.min_y, footprint.max_y),
        )

    def _enter_building(self) -> None:
        building = self.network.building_near_intersection(*self._from_node)
        self._inside = building
        footprint = building.footprint
        self._indoor_position = Point(
            self.rng.uniform(footprint.min_x, footprint.max_x),
            self.rng.uniform(footprint.min_y, footprint.max_y),
        )

    def _choose_next(
        self, node: Tuple[int, int], previous: Optional[Tuple[int, int]]
    ) -> Tuple[int, int]:
        """Pick the next crossroad with equal probability among the turns.

        The reverse direction is avoided when another option exists, so
        objects keep flowing along roads instead of oscillating.
        """
        options = self.network.neighbors_of(*node)
        if previous is not None and len(options) > 1:
            options = [option for option in options if option != previous]
        if not options:
            raise WorkloadError(f"intersection {node} has no outgoing roads")
        return options[self.rng.randrange(len(options))]

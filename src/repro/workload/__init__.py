"""Synthetic workloads matching the paper's experimental setup (Section 4.1).

Two families:

* the **road-network workload** — a square map with rectangular buildings
  surrounded by roads; pedestrians (0-1 units/s) and cars (1-2 units/s) move
  along roads, turn at crossroads with equal probability, and pedestrians
  occasionally enter/leave buildings.  Update messages are perturbed with
  noise and each object updates at a random interval between 0 and 5 s.
  This is the workload behind the school-effectiveness experiments
  (Figures 9-11).
* the **uniform workload** — objects placed uniformly at random with random
  velocities inside a region, used for the BigTable stress experiments
  (Figures 12-13).

Plus query generators (NN and history) and a trace recorder/replayer.
"""

from repro.workload.roadnetwork import RoadNetwork
from repro.workload.objects import MovingObject, ObjectKind
from repro.workload.generator import RoadNetworkWorkload, WorkloadConfig
from repro.workload.uniform import UniformWorkload
from repro.workload.queries import NNQueryWorkload, HistoryQueryWorkload
from repro.workload.trace import Trace, record_trace

__all__ = [
    "RoadNetwork",
    "MovingObject",
    "ObjectKind",
    "RoadNetworkWorkload",
    "WorkloadConfig",
    "UniformWorkload",
    "NNQueryWorkload",
    "HistoryQueryWorkload",
    "Trace",
    "record_trace",
]

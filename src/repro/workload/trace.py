"""Recording and replaying update traces.

Experiments that compare several configurations (MOIST with/without schools,
different ε, the baselines) must replay the *same* update stream to be fair.
A :class:`Trace` is an immutable, replayable list of update messages with
save/load helpers (JSON lines), so traces can also be shared between the test
suite and the benchmark harness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import WorkloadError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage


@dataclass(frozen=True)
class Trace:
    """An ordered, replayable sequence of update messages."""

    messages: tuple

    def __post_init__(self) -> None:
        if not isinstance(self.messages, tuple):
            raise WorkloadError("Trace messages must be a tuple; use Trace.from_messages")

    @classmethod
    def from_messages(cls, messages: Iterable[UpdateMessage]) -> "Trace":
        """Build a trace from any iterable of update messages."""
        ordered = tuple(
            sorted(messages, key=lambda message: (message.timestamp, message.object_id))
        )
        return cls(messages=ordered)

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[UpdateMessage]:
        return iter(self.messages)

    def object_ids(self) -> List[str]:
        """Distinct object ids appearing in the trace, in first-seen order."""
        seen = set()
        ordered = []
        for message in self.messages:
            if message.object_id not in seen:
                seen.add(message.object_id)
                ordered.append(message.object_id)
        return ordered

    def duration(self) -> float:
        """Time span covered by the trace in seconds."""
        if not self.messages:
            return 0.0
        return self.messages[-1].timestamp - self.messages[0].timestamp

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for message in self.messages:
                handle.write(
                    json.dumps(
                        {
                            "id": message.object_id,
                            "x": message.location.x,
                            "y": message.location.y,
                            "vx": message.velocity.dx,
                            "vy": message.velocity.dy,
                            "t": message.timestamp,
                        }
                    )
                )
                handle.write("\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        source = Path(path)
        messages = []
        with source.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                messages.append(
                    UpdateMessage(
                        object_id=raw["id"],
                        location=Point(raw["x"], raw["y"]),
                        velocity=Vector(raw["vx"], raw["vy"]),
                        timestamp=raw["t"],
                    )
                )
        return cls.from_messages(messages)


def record_trace(workload, duration_s: float, step_s: float = 1.0) -> Trace:
    """Run a road-network workload for ``duration_s`` and capture its updates."""
    messages: List[UpdateMessage] = []
    for batch in workload.run(duration_s, step_s):
        messages.extend(batch)
    return Trace.from_messages(messages)

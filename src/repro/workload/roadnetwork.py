"""The road-network map of Section 4.1.

"We used a road-networked map that had rectangular buildings surrounded by
roads.  Each building was given an entrance."  The map here is a uniform
grid: roads run along the grid lines every ``block_size`` units, the interior
of each block is a building, and each building's entrance sits at the
midpoint of one of its sides (chosen deterministically from the block
coordinates so the map itself needs no random state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import WorkloadError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point


@dataclass(frozen=True)
class Building:
    """One rectangular building with a single entrance on its boundary."""

    block: Tuple[int, int]
    footprint: BoundingBox
    entrance: Point


class RoadNetwork:
    """A square map with a grid of roads and one building per block."""

    def __init__(
        self,
        size: float = 1000.0,
        block_size: float = 50.0,
        building_margin: float = 5.0,
    ) -> None:
        if size <= 0 or block_size <= 0:
            raise WorkloadError("map size and block size must be positive")
        if block_size > size:
            raise WorkloadError("block size cannot exceed the map size")
        if building_margin < 0 or 2 * building_margin >= block_size:
            raise WorkloadError(
                "building margin must be non-negative and leave room for a building"
            )
        self.size = size
        self.block_size = block_size
        self.building_margin = building_margin
        #: Number of intersections per side (road lines at multiples of
        #: ``block_size`` from 0 to ``size`` inclusive).
        self.intersections_per_side = int(size // block_size) + 1

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> BoundingBox:
        """The map rectangle."""
        return BoundingBox(0.0, 0.0, self.size, self.size)

    def intersection_point(self, i: int, j: int) -> Point:
        """World coordinates of intersection ``(i, j)``."""
        self._validate_intersection(i, j)
        return Point(i * self.block_size, j * self.block_size)

    def is_valid_intersection(self, i: int, j: int) -> bool:
        """True when ``(i, j)`` is a crossroad on the map."""
        n = self.intersections_per_side
        return 0 <= i < n and 0 <= j < n

    def neighbors_of(self, i: int, j: int) -> List[Tuple[int, int]]:
        """Intersections reachable from ``(i, j)`` along one road segment."""
        self._validate_intersection(i, j)
        candidates = [(i + 1, j), (i - 1, j), (i, j + 1), (i, j - 1)]
        return [
            (ni, nj) for ni, nj in candidates if self.is_valid_intersection(ni, nj)
        ]

    def nearest_intersection(self, point: Point) -> Tuple[int, int]:
        """Grid coordinates of the crossroad closest to ``point``."""
        i = int(round(point.x / self.block_size))
        j = int(round(point.y / self.block_size))
        n = self.intersections_per_side
        return (min(max(i, 0), n - 1), min(max(j, 0), n - 1))

    # ------------------------------------------------------------------
    # Buildings
    # ------------------------------------------------------------------
    @property
    def blocks_per_side(self) -> int:
        """Number of building blocks per side."""
        return self.intersections_per_side - 1

    def building(self, bi: int, bj: int) -> Building:
        """Building occupying block ``(bi, bj)``."""
        if not (0 <= bi < self.blocks_per_side and 0 <= bj < self.blocks_per_side):
            raise WorkloadError(f"block ({bi}, {bj}) outside the map")
        min_x = bi * self.block_size + self.building_margin
        min_y = bj * self.block_size + self.building_margin
        max_x = (bi + 1) * self.block_size - self.building_margin
        max_y = (bj + 1) * self.block_size - self.building_margin
        footprint = BoundingBox(min_x, min_y, max_x, max_y)
        # The entrance side rotates with the block coordinates so entrances
        # are spread over all four sides without needing random state.
        side = (bi + bj) % 4
        center = footprint.center()
        if side == 0:
            entrance = Point(center.x, min_y)
        elif side == 1:
            entrance = Point(max_x, center.y)
        elif side == 2:
            entrance = Point(center.x, max_y)
        else:
            entrance = Point(min_x, center.y)
        return Building(block=(bi, bj), footprint=footprint, entrance=entrance)

    def building_near_intersection(self, i: int, j: int) -> Building:
        """The building whose block has intersection ``(i, j)`` as a corner.

        Pedestrians arriving at a crossroad consider entering this building
        (Section 4.1: "When a pedestrian was near an entrance to a building,
        they chose to enter it with 5% probability").
        """
        self._validate_intersection(i, j)
        bi = min(i, self.blocks_per_side - 1)
        bj = min(j, self.blocks_per_side - 1)
        return self.building(bi, bj)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_intersection(self, i: int, j: int) -> None:
        if not self.is_valid_intersection(i, j):
            raise WorkloadError(
                f"intersection ({i}, {j}) outside a {self.intersections_per_side}^2 grid"
            )

"""Road-network update-stream generator (Section 4.1)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import WorkloadError
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.workload.objects import MovingObject, ObjectKind
from repro.workload.roadnetwork import RoadNetwork


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the road-network workload.

    Defaults mirror Section 4.1: a 1,000 x 1,000-unit map, a mix of
    pedestrians and cars, noisy observations, and per-object update intervals
    drawn uniformly from (0, 5] seconds.  Experiments that need a fixed
    update frequency (e.g. the one-update-per-second default of Figure 9)
    override ``min_update_interval_s``/``max_update_interval_s``.
    """

    num_objects: int = 100
    map_size: float = 1000.0
    block_size: float = 50.0
    pedestrian_fraction: float = 0.5
    noise_std: float = 0.1
    min_update_interval_s: float = 0.5
    max_update_interval_s: float = 5.0
    building_probability: float = 0.05
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_objects <= 0:
            raise WorkloadError("num_objects must be positive")
        if not 0.0 <= self.pedestrian_fraction <= 1.0:
            raise WorkloadError("pedestrian_fraction must be in [0, 1]")
        if self.noise_std < 0:
            raise WorkloadError("noise_std must be non-negative")
        if self.min_update_interval_s <= 0:
            raise WorkloadError("min_update_interval_s must be positive")
        if self.max_update_interval_s < self.min_update_interval_s:
            raise WorkloadError(
                "max_update_interval_s must be >= min_update_interval_s"
            )


class RoadNetworkWorkload:
    """Drives a population of moving objects and emits their updates."""

    def __init__(self, config: Optional[WorkloadConfig] = None) -> None:
        self.config = config or WorkloadConfig()
        self.rng = random.Random(self.config.seed)
        self.network = RoadNetwork(
            size=self.config.map_size, block_size=self.config.block_size
        )
        self.objects: List[MovingObject] = []
        num_pedestrians = int(round(self.config.num_objects * self.config.pedestrian_fraction))
        for index in range(self.config.num_objects):
            kind = (
                ObjectKind.PEDESTRIAN if index < num_pedestrians else ObjectKind.CAR
            )
            self.objects.append(
                MovingObject(
                    object_id=format_object_id(index),
                    kind=kind,
                    network=self.network,
                    rng=random.Random(self.rng.randrange(2**32)),
                    building_probability=self.config.building_probability,
                )
            )
        #: Next update time of each object, staggered so updates do not all
        #: arrive in lockstep.
        self._next_update = [
            self.rng.uniform(0.0, self.config.max_update_interval_s)
            for _ in self.objects
        ]
        self._last_step_time = 0.0
        self.now = 0.0

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def advance_to(self, time_s: float) -> List[UpdateMessage]:
        """Advance the simulation to ``time_s`` and return due updates.

        Updates are emitted in timestamp order; each carries the noisy
        location/velocity the paper's clients would have reported.
        """
        if time_s < self.now:
            raise WorkloadError("time cannot move backwards")
        messages: List[UpdateMessage] = []
        dt = time_s - self._last_step_time
        if dt > 0:
            for moving_object in self.objects:
                moving_object.step(dt)
            self._last_step_time = time_s
        for index, moving_object in enumerate(self.objects):
            while self._next_update[index] <= time_s:
                timestamp = self._next_update[index]
                messages.append(self._observe(moving_object, timestamp))
                interval = self.rng.uniform(
                    self.config.min_update_interval_s,
                    self.config.max_update_interval_s,
                )
                self._next_update[index] = timestamp + interval
        self.now = time_s
        messages.sort(key=lambda message: (message.timestamp, message.object_id))
        return messages

    def run(self, duration_s: float, step_s: float = 1.0) -> Iterator[List[UpdateMessage]]:
        """Yield batches of updates every ``step_s`` seconds for ``duration_s``."""
        if duration_s <= 0 or step_s <= 0:
            raise WorkloadError("duration and step must be positive")
        steps = int(round(duration_s / step_s))
        for step_index in range(1, steps + 1):
            yield self.advance_to(self.now + step_s)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _observe(self, moving_object: MovingObject, timestamp: float) -> UpdateMessage:
        """Noisy observation of one object (the update message payload)."""
        position = moving_object.position()
        velocity = moving_object.velocity()
        noise = self.config.noise_std
        if noise > 0:
            position = Point(
                position.x + self.rng.gauss(0.0, noise),
                position.y + self.rng.gauss(0.0, noise),
            )
            velocity = Vector(
                velocity.dx + self.rng.gauss(0.0, noise * 0.1),
                velocity.dy + self.rng.gauss(0.0, noise * 0.1),
            )
        bounds = self.network.bounds
        position = bounds.clamp_point(position)
        return UpdateMessage(
            object_id=moving_object.object_id,
            location=position,
            velocity=velocity,
            timestamp=timestamp,
        )

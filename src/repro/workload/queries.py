"""Query workload generators (NN queries and history queries)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import WorkloadError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point


@dataclass(frozen=True)
class NNQuery:
    """One nearest-neighbour query request."""

    location: Point
    k: int
    range_limit: Optional[float] = None


@dataclass(frozen=True)
class HistoryQuery:
    """One history query: either by object or by region."""

    object_id: Optional[str] = None
    region: Optional[BoundingBox] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None


class NNQueryWorkload:
    """Generates NN queries with centres uniform over a region."""

    def __init__(
        self,
        region: BoundingBox,
        k: int = 10,
        range_limit: Optional[float] = None,
        seed: int = 23,
    ) -> None:
        if k <= 0:
            raise WorkloadError("k must be positive")
        if range_limit is not None and range_limit <= 0:
            raise WorkloadError("range_limit must be positive when given")
        self.region = region
        self.k = k
        self.range_limit = range_limit
        self.rng = random.Random(seed)

    def next_query(self) -> NNQuery:
        """One query with a uniformly random centre."""
        location = Point(
            self.rng.uniform(self.region.min_x, self.region.max_x),
            self.rng.uniform(self.region.min_y, self.region.max_y),
        )
        return NNQuery(location=location, k=self.k, range_limit=self.range_limit)

    def batch(self, count: int) -> List[NNQuery]:
        """``count`` independent queries."""
        if count <= 0:
            raise WorkloadError("count must be positive")
        return [self.next_query() for _ in range(count)]


class HistoryQueryWorkload:
    """Generates history queries over known object ids and map regions."""

    def __init__(
        self,
        object_ids: List[str],
        region: BoundingBox,
        region_fraction: float = 0.1,
        object_query_probability: float = 0.5,
        seed: int = 29,
    ) -> None:
        if not object_ids:
            raise WorkloadError("history query workload needs at least one object id")
        if not 0 < region_fraction <= 1.0:
            raise WorkloadError("region_fraction must be in (0, 1]")
        if not 0.0 <= object_query_probability <= 1.0:
            raise WorkloadError("object_query_probability must be in [0, 1]")
        self.object_ids = list(object_ids)
        self.region = region
        self.region_fraction = region_fraction
        self.object_query_probability = object_query_probability
        self.rng = random.Random(seed)

    def next_query(
        self, start_time: Optional[float] = None, end_time: Optional[float] = None
    ) -> HistoryQuery:
        """One query: by object with the configured probability, else by region."""
        if self.rng.random() < self.object_query_probability:
            object_id = self.object_ids[self.rng.randrange(len(self.object_ids))]
            return HistoryQuery(
                object_id=object_id, start_time=start_time, end_time=end_time
            )
        width = self.region.width * self.region_fraction
        height = self.region.height * self.region_fraction
        min_x = self.rng.uniform(self.region.min_x, self.region.max_x - width)
        min_y = self.rng.uniform(self.region.min_y, self.region.max_y - height)
        region = BoundingBox(min_x, min_y, min_x + width, min_y + height)
        return HistoryQuery(region=region, start_time=start_time, end_time=end_time)

    def batch(self, count: int) -> List[HistoryQuery]:
        """``count`` independent queries."""
        if count <= 0:
            raise WorkloadError("count must be positive")
        return [self.next_query() for _ in range(count)]

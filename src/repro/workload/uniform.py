"""Uniform random workload for the BigTable stress experiments (Section 4.1).

"Updates and queries applied to a population of 400k to 1m objects with
randomly chosen positions and velocities in a space size of 1 km² were
carried out."  Objects move linearly and bounce off the region border; the
generator can also produce static placements (Figure 12 runs NN queries on a
map with no moving objects).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import WorkloadError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id


@dataclass
class UniformWorkload:
    """Objects uniformly distributed in a rectangular region."""

    num_objects: int = 1000
    region: BoundingBox = BoundingBox(0.0, 0.0, 1000.0, 1000.0)
    max_speed: float = 2.0
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_objects <= 0:
            raise WorkloadError("num_objects must be positive")
        if self.max_speed < 0:
            raise WorkloadError("max_speed must be non-negative")
        self.rng = random.Random(self.seed)
        self._positions: List[Point] = [
            Point(
                self.rng.uniform(self.region.min_x, self.region.max_x),
                self.rng.uniform(self.region.min_y, self.region.max_y),
            )
            for _ in range(self.num_objects)
        ]
        self._velocities: List[Vector] = [
            Vector(
                self.rng.uniform(-self.max_speed, self.max_speed),
                self.rng.uniform(-self.max_speed, self.max_speed),
            )
            for _ in range(self.num_objects)
        ]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def object_id(self, index: int) -> str:
        """Object id of the ``index``-th object."""
        if not 0 <= index < self.num_objects:
            raise WorkloadError(f"object index {index} out of range")
        return format_object_id(index)

    def position(self, index: int) -> Point:
        """Current position of the ``index``-th object."""
        if not 0 <= index < self.num_objects:
            raise WorkloadError(f"object index {index} out of range")
        return self._positions[index]

    def random_location(self) -> Point:
        """A uniformly random point inside the region (query centres)."""
        return Point(
            self.rng.uniform(self.region.min_x, self.region.max_x),
            self.rng.uniform(self.region.min_y, self.region.max_y),
        )

    # ------------------------------------------------------------------
    # Update generation
    # ------------------------------------------------------------------
    def initial_updates(self, timestamp: float = 0.0) -> List[UpdateMessage]:
        """One update per object at its initial position (index loading)."""
        return [
            UpdateMessage(
                object_id=self.object_id(index),
                location=self._positions[index],
                velocity=self._velocities[index],
                timestamp=timestamp,
            )
            for index in range(self.num_objects)
        ]

    def step(self, dt: float, timestamp: float) -> List[UpdateMessage]:
        """Advance every object by ``dt`` seconds and emit its update.

        Objects bounce off the region border so the population density stays
        uniform over time.
        """
        if dt < 0:
            raise WorkloadError("dt must be non-negative")
        messages: List[UpdateMessage] = []
        for index in range(self.num_objects):
            position = self._positions[index]
            velocity = self._velocities[index]
            x = position.x + velocity.dx * dt
            y = position.y + velocity.dy * dt
            dx, dy = velocity.dx, velocity.dy
            if x < self.region.min_x or x > self.region.max_x:
                dx = -dx
                x = min(max(x, self.region.min_x), self.region.max_x)
            if y < self.region.min_y or y > self.region.max_y:
                dy = -dy
                y = min(max(y, self.region.min_y), self.region.max_y)
            self._positions[index] = Point(x, y)
            self._velocities[index] = Vector(dx, dy)
            messages.append(
                UpdateMessage(
                    object_id=self.object_id(index),
                    location=self._positions[index],
                    velocity=self._velocities[index],
                    timestamp=timestamp,
                )
            )
        return messages

    def random_update(self, timestamp: float) -> UpdateMessage:
        """An update for a uniformly random object at a fresh random position.

        This matches the single-server QPS experiment where "for each query
        generated by a thread, a random object id ... would be assigned"
        (Section 4.3.2).
        """
        index = self.rng.randrange(self.num_objects)
        self._positions[index] = self.random_location()
        return UpdateMessage(
            object_id=self.object_id(index),
            location=self._positions[index],
            velocity=self._velocities[index],
            timestamp=timestamp,
        )

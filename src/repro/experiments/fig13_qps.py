"""Figure 13: update throughput of the BigTable-backed indexer.

* 13(a) — update QPS of a single front-end server against the number of
  indexed moving objects (the paper sweeps 400k-1M and reports ~7,875
  updates/s at 1M objects).
* 13(b) — update QPS over time with 5 servers sharing one BigTable.
* 13(c) — update QPS over time with 10 servers.
* 13(d) (extension) — mixed update/query throughput with the query
  fraction swept 0→1 through the batched read and write paths (see
  :mod:`repro.experiments.mixed`).

The experiments run MOIST in its worst-case configuration (schools disabled,
every object a leader) exactly as the paper does for its BigTable stress
tests.  QPS is simulated throughput: requests divided by the busiest
server's accumulated simulated service time (DESIGN.md Section 6).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import uniform_leader_indexer
from repro.experiments.report import FigureResult
from repro.server.cluster import ServerCluster
from repro.server.loadtest import LoadTest, LoadTestResult


def measure_update_qps(
    num_objects: int,
    num_servers: int = 1,
    num_updates: int = 5000,
    num_clients: int = 10,
    failure_probability: float = 0.0,
    seed: int = 59,
) -> LoadTestResult:
    """Preload ``num_objects`` and measure update QPS over random updates."""
    indexer = uniform_leader_indexer(num_objects, seed=seed)
    cluster = ServerCluster(indexer, num_servers=num_servers)
    load_test = LoadTest.with_fleet(
        cluster,
        num_clients=num_clients,
        total_objects=num_objects,
        failure_probability=failure_probability,
        seed=seed,
    )
    messages = []
    timestamp = 1.0
    per_client = max(num_updates // max(len(load_test.clients), 1), 1)
    for client in load_test.clients:
        messages.extend(client.burst(timestamp, per_client))
    return load_test.run_updates(messages, bucket_requests=max(num_updates // 40, 100))


def run_fig13a(
    object_counts: Sequence[int] = (20000, 50000, 100000),
    num_updates: int = 5000,
    seed: int = 59,
) -> FigureResult:
    """Single-server update QPS vs number of indexed objects."""
    result = FigureResult(
        figure_id="fig13a",
        title="Single-server update QPS vs indexed objects",
        x_label="indexed objects",
        y_label="updates per second (simulated)",
    )
    qps_values = []
    latency_values = []
    tablet_counts = []
    hot_shares = []
    for count in object_counts:
        outcome = measure_update_qps(
            count, num_servers=1, num_updates=num_updates, seed=seed
        )
        qps_values.append(outcome.qps)
        latency_values.append(outcome.mean_latency_s * 1e3)
        tablet_counts.append(float(outcome.tablet_count))
        hot_shares.append(outcome.hot_tablet_share)
    result.add_series("update QPS", list(object_counts), qps_values)
    result.add_series("mean latency (ms)", list(object_counts), latency_values)
    result.add_series("tablets", list(object_counts), tablet_counts)
    result.add_note(
        "population scaled down from the paper's 400k-1M for wall-clock reasons; "
        "QPS is nearly flat in the population size, which is the claim under test"
    )
    if hot_shares:
        result.add_note(
            f"tables shard under the default split threshold; hottest tablet served "
            f"{hot_shares[-1]:.1%} of storage time at the largest population"
        )
    return result


def run_fig13_multiserver(
    num_servers: int,
    num_objects: int = 50000,
    num_updates: int = 20000,
    num_clients: int = 50,
    failure_probability: float = 0.002,
    seed: int = 59,
) -> FigureResult:
    """Update QPS timeline for a multi-server deployment (Figures 13b/13c)."""
    outcome = measure_update_qps(
        num_objects,
        num_servers=num_servers,
        num_updates=num_updates,
        num_clients=num_clients,
        failure_probability=failure_probability,
        seed=seed,
    )
    result = FigureResult(
        figure_id=f"fig13-{num_servers}servers",
        title=f"Update QPS timeline with {num_servers} servers",
        x_label="simulated time (s)",
        y_label="updates per second",
    )
    times = [point.time_s for point in outcome.timeline]
    result.add_series("QPS", times, [point.qps for point in outcome.timeline])
    result.add_series(
        "failed QPS", times, [point.failed_qps for point in outcome.timeline]
    )
    result.add_series("average QPS", times, [outcome.qps] * len(times))
    result.add_note(
        f"overall average QPS = {outcome.qps:.0f}, "
        f"{outcome.failed_requests} failed requests excluded from the numerator"
    )
    return result


def run_fig13b(**kwargs) -> FigureResult:
    """Figure 13(b): five servers sharing one BigTable."""
    return run_fig13_multiserver(5, **kwargs)


def run_fig13c(**kwargs) -> FigureResult:
    """Figure 13(c): ten servers sharing one BigTable."""
    return run_fig13_multiserver(10, **kwargs)


def run_fig13d_mixed(
    query_fractions: Sequence[float] = (0.0, 0.5, 1.0),
    num_objects: int = 20000,
    num_requests: int = 5000,
    seed: int = 59,
) -> FigureResult:
    """Figure 13 extension: mixed update/query QPS through both batched
    paths, with the block-cache hit rate of the query side."""
    from repro.experiments.mixed import run_mixed

    result = run_mixed(
        query_fractions=query_fractions,
        num_objects=num_objects,
        num_requests=num_requests,
        seed=seed,
    )
    result.figure_id = "fig13d-mixed"
    return result


def measure_speedup(
    num_objects: int = 20000, num_updates: int = 5000, seed: int = 59
) -> FigureResult:
    """Speedup of 5- and 10-server clusters over a single server."""
    result = FigureResult(
        figure_id="fig13-speedup",
        title="Multi-server speedup over a single server",
        x_label="servers",
        y_label="speedup",
    )
    single = measure_update_qps(
        num_objects, num_servers=1, num_updates=num_updates, seed=seed
    )
    servers = [1, 5, 10]
    speedups = []
    qps_values = []
    for count in servers:
        if count == 1:
            outcome = single
        else:
            outcome = measure_update_qps(
                num_objects, num_servers=count, num_updates=num_updates, seed=seed
            )
        qps_values.append(outcome.qps)
        speedups.append(outcome.qps / single.qps if single.qps > 0 else 0.0)
    result.add_series("update QPS", servers, qps_values)
    result.add_series("speedup", servers, speedups)
    result.add_note("the paper reports close-to-optimal speedups (5x and ~8x-10x)")
    return result

"""Wall-clock benchmark runner behind ``repro bench`` (the perf trajectory).

The figure harnesses measure *simulated* storage cost — the paper's metric.
This module measures the other axis the ROADMAP cares about: how fast the
emulator itself executes, so optimisation PRs leave a persistent, comparable
record (``BENCH_*.json``) instead of anecdotal numbers in commit messages.

Three headline workloads cover the hot paths end to end through the server
cluster (tablet routing, group commit, block cache, batched shared reads):

* ``update_batched`` — pure location-update stream through the tablet-routed
  group-commit write path;
* ``mixed_rw``       — the 50/50 update+NN-query workload (the acceptance
  workload of the optimisation PRs);
* ``query_batched``  — pure NN-query stream through the tablet-pinned
  shared-read path;
* ``update_compaction`` — the update stream with a small memtable flush
  threshold, so the LSM engine's flush/compaction machinery runs inside the
  measured section (its compaction stats are the payload's durability
  section; the other workloads run with the default log-only durability);
* ``rebalance_hotschool`` — the hot-school skewed mixed workload through a
  master-balanced cluster (live tablet migrations and read-replica fan-out
  run inside the measured section; migration hand-off counters join the
  durability section);
* ``scaleout_chaos`` — the disk-backed shard federation under ``respawn``
  supervision with a seeded chaos schedule SIGKILLing every worker
  mid-workload; the payload records the supervisor's recovery counts and
  durations plus whether the healed run's report stayed byte-identical to
  a fault-free reference;
* ``scaleout_master_chaos`` — the supervised-master composition: master-
  bearing shards under ``respawn`` supervision with simulated control-plane
  faults (aborted migration, server crash + revival) folded into the same
  seeded timeline as the SIGKILLs, one of which lands mid-migration; the
  payload records whether the healed run's report — real merged p99
  included — stayed byte-identical to the fault-only reference;
* ``scaleout_window`` — the pipelined engine's window axis: the same
  update-only stream through the disk-backed federation at in-flight
  windows 1, 2 and 8, recording the per-phase encode/send/blocked-wait/
  decode breakdown and the machine-independent blocking-wait counters
  (waits per round must fall like ``1/window`` while the report stays
  byte-identical to the window=1 run).

Each workload reports best-of-``repeats`` wall-clock, client requests per
wall-clock second, the simulated QPS of the same run, the storage RPC
count — the invariant that must *not* move when only wall-clock is being
optimised — and the durability counters (log fsyncs/records, compaction
rows, write amplification), which are additive and reported separately.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bigtable.cost import OpKind
from repro.bigtable.tablet import TabletOptions
from repro.experiments.mixed import _mixed_harness

#: Workload sizing.  ``quick`` is CI-sized (a few seconds on a busy runner);
#: the full profile is what BENCH_PR*.json files are recorded with.
_FULL_PROFILE = {"num_objects": 5000, "num_requests": 4000, "repeats": 3}
_QUICK_PROFILE = {"num_objects": 2000, "num_requests": 1500, "repeats": 2}

#: Engine knobs of the compaction-stress workload: a small memtable and a
#: tight run cap so minor flushes AND merging compactions both run inside
#: the measured section (write amplification stays inside the engine's
#: ~3x budget at these settings).
_COMPACTION_OPTIONS = TabletOptions(memtable_flush_rows=128, compaction_max_runs=4)

#: The headline workloads as ``name -> (query_fraction, tablet_options)``.
_WORKLOADS = {
    "update_batched": (0.0, None),
    "mixed_rw": (0.5, None),
    "query_batched": (1.0, None),
    "update_compaction": (0.0, _COMPACTION_OPTIONS),
}


@dataclass(frozen=True)
class BenchResult:
    """Measured numbers of one benchmark workload."""

    name: str
    requests: int
    wall_seconds: float
    ops_per_sec: float
    simulated_qps: float
    simulated_storage_seconds: float
    storage_rpc_count: int
    cache_hit_rate: float
    durability: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "wall_seconds": self.wall_seconds,
            "ops_per_sec": self.ops_per_sec,
            "simulated_qps": self.simulated_qps,
            "simulated_storage_seconds": self.simulated_storage_seconds,
            "storage_rpc_count": self.storage_rpc_count,
            "cache_hit_rate": self.cache_hit_rate,
            "durability": self.durability,
            # Every workload record carries its own host context so
            # BENCH_PR*.json wall-clock columns stay interpretable when
            # compared across machines, not just for scaleout_multiproc.
            "host_cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
        }


def _durability_stats(indexer) -> Dict[str, object]:
    """LSM durability counters of one finished run (additive ledger)."""
    counter = indexer.emulator.counter
    return {
        "log_fsyncs": counter.durability_count(OpKind.LOG_APPEND),
        "log_records": counter.durability_rows_touched(OpKind.LOG_APPEND),
        "compactions": counter.durability_count(OpKind.COMPACTION_READ),
        "compaction_read_rows": counter.durability_rows_touched(
            OpKind.COMPACTION_READ
        ),
        "compaction_write_rows": counter.durability_rows_touched(
            OpKind.COMPACTION_WRITE
        ),
        "migrations": counter.durability_count(OpKind.MIGRATION),
        "migration_rows": counter.durability_rows_touched(OpKind.MIGRATION),
        "sstable_runs": indexer.emulator.run_count(),
        "write_amplification": counter.write_amplification(),
        "durability_seconds": counter.durability_seconds,
    }


def run_workload(
    name: str,
    query_fraction: float,
    num_objects: int,
    num_requests: int,
    repeats: int = 3,
    seed: int = 59,
    tablet_options: Optional[TabletOptions] = None,
) -> BenchResult:
    """Benchmark one mixed-fraction workload, best-of-``repeats`` wall-clock.

    Every repeat rebuilds the preloaded indexer from scratch so repeats are
    independent; the run is deterministic, so the simulated-side numbers are
    identical across repeats and only the wall-clock varies.
    """
    best_wall = float("inf")
    outcome = None
    indexer = None
    for _ in range(max(repeats, 1)):
        indexer, load_test, messages, queries = _mixed_harness(
            num_objects,
            5,
            num_requests,
            query_fraction,
            10,
            10,
            0.0,
            seed,
            tablet_options=tablet_options,
        )
        start = time.perf_counter()
        outcome = load_test.run_mixed_batches(messages, queries, batch_size=256)
        best_wall = min(best_wall, time.perf_counter() - start)
    counter = indexer.emulator.counter
    return BenchResult(
        name=name,
        requests=outcome.total_requests,
        wall_seconds=best_wall,
        ops_per_sec=outcome.total_requests / best_wall if best_wall > 0 else 0.0,
        simulated_qps=outcome.qps,
        simulated_storage_seconds=counter.simulated_seconds,
        storage_rpc_count=counter.storage_rpc_count(),
        cache_hit_rate=outcome.cache_hit_rate,
        durability=_durability_stats(indexer),
    )


def run_rebalance_workload(
    name: str,
    num_objects: int,
    num_requests: int,
    repeats: int = 3,
    seed: int = 59,
    hot_fraction: float = 0.9,
) -> BenchResult:
    """Benchmark the master-balanced hot-school workload end to end.

    The measured section covers the full control loop: skewed mixed
    batches through the tablet-routed paths, the master's rebalance ticks,
    live migrations and replica seeding.
    """
    from repro.experiments.rebalance import hot_school_streams, rebalance_harness

    best_wall = float("inf")
    outcome = None
    indexer = None
    for _ in range(max(repeats, 1)):
        indexer, _, _, load_test = rebalance_harness(
            num_objects, 5, balanced=True, seed=seed, record_service_times=False
        )
        messages, queries = hot_school_streams(
            num_objects, num_requests, hot_fraction, seed=seed
        )
        start = time.perf_counter()
        outcome = load_test.run_mixed_batches(messages, queries, batch_size=256)
        best_wall = min(best_wall, time.perf_counter() - start)
    counter = indexer.emulator.counter
    return BenchResult(
        name=name,
        requests=outcome.total_requests,
        wall_seconds=best_wall,
        ops_per_sec=outcome.total_requests / best_wall if best_wall > 0 else 0.0,
        simulated_qps=outcome.qps,
        simulated_storage_seconds=counter.simulated_seconds,
        storage_rpc_count=counter.storage_rpc_count(),
        cache_hit_rate=outcome.cache_hit_rate,
        durability=_durability_stats(indexer),
    )


#: Shard / worker shape of the ``scaleout_multiproc`` workload.  Eight
#: shards keep the shard→worker mapping non-trivial at every worker count
#: (1, 2 and 4 all divide 8), so the determinism claim is exercised, not
#: vacuous.
_MULTIPROC_SHARDS = 8
_MULTIPROC_WORKER_COUNTS = (1, 2, 4)


def run_multiproc_workload(
    num_objects: int,
    num_requests: int,
    repeats: int = 3,
    seed: int = 59,
    num_shards: int = _MULTIPROC_SHARDS,
    worker_counts=_MULTIPROC_WORKER_COUNTS,
) -> Dict[str, object]:
    """Benchmark the shared-nothing scale-out path across worker counts.

    One in-process baseline plus one forked-worker variant per entry of
    ``worker_counts``, all driving the *same* seeded mixed stream through
    a :class:`~repro.server.scaleout.ScaleOutCluster` of ``num_shards``
    shard groups.  Requests, simulated QPS, storage RPC counts and the
    serialized byte volume are worker-count-invariant by construction —
    only the wall-clock may move, and that is the column being measured.
    ``speedup_vs_inprocess`` divides the in-process wall-clock by each
    variant's (higher is better).
    """
    from repro.experiments.scaleout import multiproc_load_run

    variants: Dict[str, Dict[str, object]] = {}
    plans = (
        [("inprocess", "inprocess", 1)]
        + [(f"workers_{count}", "process", count) for count in worker_counts]
        #: The real-bytes variant: the same forked federation, every shard
        #: additionally persisting its tables to files in a temporary
        #: directory (journal fsyncs and block writes inside the measured
        #: section).  Simulated columns stay bit-identical to in-process.
        + [("disk", "disk", max(worker_counts) if worker_counts else 1)]
    )
    inprocess_wall = None
    host_cpu_count = os.cpu_count() or 1
    for key, backend, workers in plans:
        best_wall = float("inf")
        outcome = None
        transport = None
        for _ in range(max(repeats, 1)):
            outcome, wall, transport, _report = multiproc_load_run(
                backend=backend,
                num_workers=workers,
                num_shards=num_shards,
                num_objects=num_objects,
                num_requests=num_requests,
                seed=seed,
            )
            best_wall = min(best_wall, wall)
        row: Dict[str, object] = {
            "num_workers": workers,
            "requests": outcome.total_requests,
            "wall_seconds": best_wall,
            "ops_per_sec": (
                outcome.total_requests / best_wall if best_wall > 0 else 0.0
            ),
            "simulated_qps": outcome.qps,
            "storage_rpc_count": transport["storage_rpc_count"],
            "simulated_storage_seconds": transport["simulated_storage_seconds"],
            "serialized_bytes": transport["serialized_bytes"],
            "rpc_frames": transport["rpc_frames"],
            "bytes_per_request": (
                transport["serialized_bytes"] / outcome.total_requests
                if outcome.total_requests
                else 0.0
            ),
        }
        if key == "inprocess":
            inprocess_wall = best_wall
        else:
            row["speedup_vs_inprocess"] = (
                inprocess_wall / best_wall if best_wall > 0 else 0.0
            )
            # Every speedup column carries the core count it was measured
            # on: a sub-1x speedup on a host with fewer cores than workers
            # is an oversubscription artefact, not a regression, and the
            # formatter flags exactly those rows.
            row["host_cpu_count"] = host_cpu_count
            row["host_oversubscribed"] = host_cpu_count < workers
        variants[key] = row
    return {
        "num_shards": num_shards,
        "worker_counts": list(worker_counts),
        #: Wall-clock context: forked workers can only beat the in-process
        #: baseline when the host has cores to run them on.  On a 1-core
        #: host every variant serialises onto the same CPU and the RPC
        #: transport is pure overhead; the simulated-side columns stay
        #: bit-identical regardless.
        "host_cpu_count": host_cpu_count,
        "variants": variants,
    }


#: Shape of the ``scaleout_chaos`` workload: the disk-backed federation
#: under ``respawn`` supervision, every forked worker SIGKILLed at least
#: once by a seeded batch-boundary schedule.  Two workers keep the run
#: affordable while still exercising the heal-then-retry path on a worker
#: that owns half the shards.
_CHAOS_WORKERS = 2
_CHAOS_SEED = 29


def run_chaos_workload(
    num_objects: int,
    num_requests: int,
    repeats: int = 1,
    seed: int = 59,
    num_shards: int = _MULTIPROC_SHARDS,
    num_workers: int = _CHAOS_WORKERS,
) -> Dict[str, object]:
    """Benchmark the self-healing path: SIGKILL every worker mid-workload.

    One fault-free in-process run provides the reference report; the chaos
    run then drives the identical seeded stream through the disk-backed
    federation under ``respawn`` supervision while a seeded
    :class:`~repro.server.chaos.ChaosPlan` kills each forked worker at a
    batch boundary.  ``report_matches_fault_free`` is the headline column:
    the recovered run's byte-deterministic report must equal the fault-free
    one, i.e. every SIGKILL healed losslessly.  The ``recovery`` section
    republishes the supervisor's wall-clock accounting, which is kept out
    of the deterministic report by design.
    """
    from repro.experiments.scaleout import multiproc_chaos_run, multiproc_load_run

    _, _, _, reference = multiproc_load_run(
        backend="inprocess",
        num_workers=1,
        num_shards=num_shards,
        num_objects=num_objects,
        num_requests=num_requests,
        seed=seed,
    )
    best_wall = float("inf")
    outcome = recovery = report = None
    chaos_applied: list = []
    for _ in range(max(repeats, 1)):
        outcome, wall, recovery, report, chaos_applied = multiproc_chaos_run(
            num_workers=num_workers,
            num_shards=num_shards,
            num_objects=num_objects,
            num_requests=num_requests,
            seed=seed,
            chaos_seed=_CHAOS_SEED,
        )
        best_wall = min(best_wall, wall)
    return {
        "num_shards": num_shards,
        "num_workers": num_workers,
        "backend": "disk",
        "supervision_policy": "respawn",
        "chaos_seed": _CHAOS_SEED,
        "chaos_events": chaos_applied,
        "requests": outcome.total_requests,
        "wall_seconds": best_wall,
        "ops_per_sec": (
            outcome.total_requests / best_wall if best_wall > 0 else 0.0
        ),
        "simulated_qps": outcome.qps,
        "report_matches_fault_free": report == reference,
        "recovery": recovery,
        "host_cpu_count": os.cpu_count() or 1,
    }


#: Shape of the ``scaleout_master_chaos`` workload: master-bearing shards
#: under ``respawn`` supervision, with simulated control-plane faults (an
#: aborted migration, a server crash + revival) folded into the same seeded
#: timeline as the SIGKILLs — one kill landing on the migration batch, so a
#: worker dies mid-migration right after checkpointing the aborted hand-off.
_MASTER_CHAOS_SEED = 47


def run_master_chaos_workload(
    num_objects: int,
    num_requests: int,
    repeats: int = 1,
    seed: int = 59,
    num_shards: int = _MULTIPROC_SHARDS,
    num_workers: int = _CHAOS_WORKERS,
) -> Dict[str, object]:
    """Benchmark the supervised-master path: SIGKILL mid-migration, heal.

    The PR 10 acceptance shape as a persistent record: the fault-only
    in-process reference and the chaos run share one seeded schedule whose
    fault half never depends on the worker count, and
    ``report_matches_fault_free`` asserts the healed master-bearing run
    reproduced the reference byte for byte — master decision history,
    routing overrides and all.  Both runs record service times, so
    ``p99_service_time_s`` is the real merged percentile (PR 10 satellite:
    previously hardcoded 0.0 across the RPC boundary).
    """
    from repro.experiments.scaleout import multiproc_master_chaos_run

    best_wall = float("inf")
    outcome = recovery = report = reference = None
    chaos_applied: list = []
    for _ in range(max(repeats, 1)):
        (
            outcome,
            wall,
            recovery,
            report,
            reference,
            chaos_applied,
        ) = multiproc_master_chaos_run(
            num_workers=num_workers,
            num_shards=num_shards,
            num_objects=num_objects,
            num_requests=num_requests,
            seed=seed,
            chaos_seed=_MASTER_CHAOS_SEED,
        )
        best_wall = min(best_wall, wall)
    return {
        "num_shards": num_shards,
        "num_workers": num_workers,
        "backend": "disk",
        "supervision_policy": "respawn",
        "with_master": True,
        "chaos_seed": _MASTER_CHAOS_SEED,
        "chaos_events": chaos_applied,
        "requests": outcome.total_requests,
        "wall_seconds": best_wall,
        "ops_per_sec": (
            outcome.total_requests / best_wall if best_wall > 0 else 0.0
        ),
        "simulated_qps": outcome.qps,
        "p99_service_time_s": outcome.p99_service_time_s,
        "report_matches_fault_free": report == reference,
        "recovery": recovery,
        "host_cpu_count": os.cpu_count() or 1,
    }


#: Shape of the ``scaleout_window`` workload: the disk-backed federation
#: (the heaviest per-batch apply, so overlap has the most to hide) at two
#: workers, driven with a pure update stream at each in-flight window
#: size.  Window 1 is the unpipelined reference the others must match
#: byte for byte.
_WINDOW_SIZES = (1, 2, 8)
_WINDOW_WORKERS = 2


def run_window_workload(
    num_objects: int,
    num_requests: int,
    repeats: int = 1,
    seed: int = 59,
    num_shards: int = _MULTIPROC_SHARDS,
    num_workers: int = _WINDOW_WORKERS,
    window_sizes=_WINDOW_SIZES,
) -> Dict[str, object]:
    """Benchmark the pipelined engine's in-flight window axis.

    Drives the identical seeded update-only stream through the disk-backed
    federation once per entry of ``window_sizes``.  Two families of columns
    come out of each run: the wall-clock phase breakdown (parent-side
    encode / send / blocked-wait / decode seconds) and the
    machine-independent overlap counters — ``blocking_waits`` divided by
    ``rounds_enqueued`` must fall like ``1/window``, which is what the CI
    guard pins.  ``report_matches_window1`` is the determinism headline:
    pipelining may only move wall-clock, never the report bytes.
    """
    from repro.experiments.scaleout import multiproc_window_run

    num_updates = num_requests // 2
    variants: Dict[str, Dict[str, object]] = {}
    reference_report = None
    window1_wall = None
    for window in window_sizes:
        best_wall = float("inf")
        outcome = pipeline = report = None
        for _ in range(max(repeats, 1)):
            outcome, wall, pipeline, report = multiproc_window_run(
                backend="disk",
                num_workers=num_workers,
                num_shards=num_shards,
                num_objects=num_objects,
                num_updates=num_updates,
                seed=seed,
                window=window,
            )
            best_wall = min(best_wall, wall)
        rounds = pipeline.get("rounds_enqueued") or 0
        row: Dict[str, object] = {
            "window": window,
            "requests": outcome.total_requests,
            "wall_seconds": best_wall,
            "ops_per_sec": (
                outcome.total_requests / best_wall if best_wall > 0 else 0.0
            ),
            "simulated_qps": outcome.qps,
            "rounds_enqueued": rounds,
            "blocking_waits": pipeline.get("blocking_waits", 0),
            "blocking_waits_per_round": (
                pipeline.get("blocking_waits", 0) / rounds if rounds else 0.0
            ),
            "barrier_drains": pipeline.get("barrier_drains", 0),
            "encode_seconds": pipeline.get("encode_seconds", 0.0),
            "send_seconds": pipeline.get("send_seconds", 0.0),
            "blocked_wait_seconds": pipeline.get("blocked_wait_seconds", 0.0),
            "decode_seconds": pipeline.get("decode_seconds", 0.0),
        }
        if reference_report is None:
            reference_report = report
            window1_wall = best_wall
        else:
            row["report_matches_window1"] = report == reference_report
            row["speedup_vs_window1"] = (
                window1_wall / best_wall if best_wall > 0 else 0.0
            )
            row["host_cpu_count"] = os.cpu_count() or 1
            row["host_oversubscribed"] = (os.cpu_count() or 1) < num_workers
        variants[f"window_{window}"] = row
    return {
        "num_shards": num_shards,
        "num_workers": num_workers,
        "backend": "disk",
        "window_sizes": list(window_sizes),
        "host_cpu_count": os.cpu_count() or 1,
        "variants": variants,
    }


def run_bench(
    quick: bool = False,
    label: str = "PR3",
    repeats: Optional[int] = None,
    seed: int = 59,
    worker_counts=_MULTIPROC_WORKER_COUNTS,
) -> Dict[str, object]:
    """Run every headline workload and return the JSON-ready payload."""
    profile = _QUICK_PROFILE if quick else _FULL_PROFILE
    effective_repeats = repeats if repeats is not None else profile["repeats"]
    workloads = {}
    for name, (fraction, tablet_options) in _WORKLOADS.items():
        result = run_workload(
            name,
            fraction,
            num_objects=profile["num_objects"],
            num_requests=profile["num_requests"],
            repeats=effective_repeats,
            seed=seed,
            tablet_options=tablet_options,
        )
        workloads[name] = result.as_dict()
    rebalance = run_rebalance_workload(
        "rebalance_hotschool",
        num_objects=profile["num_objects"],
        num_requests=profile["num_requests"],
        repeats=effective_repeats,
        seed=seed,
    )
    workloads[rebalance.name] = rebalance.as_dict()
    multiproc = run_multiproc_workload(
        num_objects=profile["num_objects"],
        num_requests=profile["num_requests"],
        repeats=effective_repeats,
        seed=seed,
        worker_counts=worker_counts,
    )
    chaos = run_chaos_workload(
        num_objects=profile["num_objects"],
        num_requests=profile["num_requests"],
        repeats=effective_repeats,
        seed=seed,
    )
    master_chaos = run_master_chaos_workload(
        num_objects=profile["num_objects"],
        num_requests=profile["num_requests"],
        repeats=effective_repeats,
        seed=seed,
    )
    window = run_window_workload(
        num_objects=profile["num_objects"],
        num_requests=profile["num_requests"],
        repeats=effective_repeats,
        seed=seed,
    )
    return {
        "label": label,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "num_objects": profile["num_objects"],
        "num_requests": profile["num_requests"],
        "repeats": effective_repeats,
        "workloads": workloads,
        "scaleout_multiproc": multiproc,
        "scaleout_chaos": chaos,
        "scaleout_master_chaos": master_chaos,
        "scaleout_window": window,
    }


def compare_with_baseline(
    payload: Dict[str, object], baseline_path: str
) -> Dict[str, object]:
    """Merge a baseline measurement into ``payload`` (in place).

    ``baseline_path`` holds an earlier :func:`run_bench` payload — typically
    recorded on the pre-optimisation revision with the same profile — whose
    per-workload wall-clock becomes ``baseline_main`` and whose ratio to the
    current run becomes ``speedup_vs_main``.  This is how the committed
    ``BENCH_PR*.json`` comparison sections are produced: check out the
    previous revision, ``repro bench --output /tmp/main.json``, return, and
    ``repro bench --baseline /tmp/main.json``.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_workloads = baseline.get("workloads", baseline)
    payload["baseline_main"] = {
        name: {
            "wall_seconds": row["wall_seconds"],
            "ops_per_sec": row["ops_per_sec"],
            "storage_rpc_count": row["storage_rpc_count"],
        }
        for name, row in baseline_workloads.items()
        if name in payload["workloads"]
    }
    payload["speedup_vs_main"] = {
        name: row["wall_seconds"] / payload["workloads"][name]["wall_seconds"]
        for name, row in payload["baseline_main"].items()
    }
    return payload


def write_bench(payload: Dict[str, object], output_path: str) -> None:
    """Write one benchmark payload as indented JSON."""
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def format_bench(payload: Dict[str, object]) -> str:
    """Console rendering of a benchmark payload."""
    lines = [
        f"benchmark {payload['label']} "
        f"(objects={payload['num_objects']}, requests={payload['num_requests']}, "
        f"repeats={payload['repeats']}, python {payload['python']})"
    ]
    header = (
        f"{'workload':<18} {'wall s':>8} {'ops/s':>10} "
        f"{'sim QPS':>10} {'RPCs':>8} {'cache':>6} {'wamp':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    speedups = payload.get("speedup_vs_main", {})
    for name, row in payload["workloads"].items():
        durability = row.get("durability", {})
        amplification = durability.get("write_amplification", 1.0)
        line = (
            f"{name:<18} {row['wall_seconds']:>8.3f} {row['ops_per_sec']:>10.0f} "
            f"{row['simulated_qps']:>10.0f} {row['storage_rpc_count']:>8d} "
            f"{row['cache_hit_rate']:>6.1%} {amplification:>5.2f}x"
        )
        if name in speedups:
            line += f"  {speedups[name]:.2f}x vs baseline"
        lines.append(line)
    multiproc = payload.get("scaleout_multiproc")
    if multiproc:
        lines.append("")
        cpu_count = multiproc.get("host_cpu_count")
        lines.append(
            f"scaleout_multiproc ({multiproc['num_shards']} shards, "
            f"mixed 50/50, {cpu_count} host core(s)):"
        )
        if cpu_count == 1:
            lines.append(
                "  note: single-core host — worker parallelism cannot beat "
                "the in-process baseline here; wall-clock shows transport "
                "overhead only"
            )
        sub_header = (
            f"{'variant':<14} {'wall s':>8} {'ops/s':>10} {'sim QPS':>10} "
            f"{'RPCs':>8} {'wire KiB':>9} {'B/req':>7} {'speedup':>8}"
        )
        lines.append(sub_header)
        lines.append("-" * len(sub_header))
        for key, row in multiproc["variants"].items():
            speedup = row.get("speedup_vs_inprocess")
            requests = row.get("requests") or 0
            bytes_per_request = row.get(
                "bytes_per_request",
                row["serialized_bytes"] / requests if requests else 0.0,
            )
            line = (
                f"{key:<14} {row['wall_seconds']:>8.3f} "
                f"{row['ops_per_sec']:>10.0f} {row['simulated_qps']:>10.0f} "
                f"{row['storage_rpc_count']:>8d} "
                f"{row['serialized_bytes'] / 1024:>9.1f} "
                f"{bytes_per_request:>7.1f} "
                + (f"{speedup:>7.2f}x" if speedup is not None else f"{'—':>8}")
            )
            # Honesty flag: a speedup measured with more workers than host
            # cores is an oversubscription number, not a scaling number.
            if speedup is not None and row.get("host_oversubscribed"):
                line += f" ({row.get('host_cpu_count', 1)}-core host)"
            lines.append(line)
    window = payload.get("scaleout_window")
    if window:
        lines.append("")
        lines.append(
            f"scaleout_window ({window['num_shards']} shards, "
            f"{window['num_workers']} workers, {window['backend']}, "
            f"update-only, {window.get('host_cpu_count')} host core(s)):"
        )
        sub_header = (
            f"{'variant':<10} {'wall s':>8} {'ops/s':>10} {'waits/rd':>9} "
            f"{'enc s':>7} {'send s':>7} {'wait s':>7} {'dec s':>7} "
            f"{'report':>10} {'speedup':>8}"
        )
        lines.append(sub_header)
        lines.append("-" * len(sub_header))
        for key, row in window["variants"].items():
            matches = row.get("report_matches_window1")
            if matches is None:
                verdict = "reference"
            else:
                verdict = "identical" if matches else "DIVERGED"
            speedup = row.get("speedup_vs_window1")
            line = (
                f"{key:<10} {row['wall_seconds']:>8.3f} "
                f"{row['ops_per_sec']:>10.0f} "
                f"{row['blocking_waits_per_round']:>9.3f} "
                f"{row['encode_seconds']:>7.3f} {row['send_seconds']:>7.3f} "
                f"{row['blocked_wait_seconds']:>7.3f} "
                f"{row['decode_seconds']:>7.3f} {verdict:>10} "
                + (f"{speedup:>7.2f}x" if speedup is not None else f"{'—':>8}")
            )
            if speedup is not None and row.get("host_oversubscribed"):
                line += f" ({row.get('host_cpu_count', 1)}-core host)"
            lines.append(line)
    chaos = payload.get("scaleout_chaos")
    if chaos:
        recovery = chaos.get("recovery") or {}
        lines.append("")
        lines.append(
            f"scaleout_chaos ({chaos['num_shards']} shards, "
            f"{chaos['num_workers']} workers, disk+respawn, "
            f"chaos seed {chaos['chaos_seed']}):"
        )
        verdict = (
            "byte-identical"
            if chaos.get("report_matches_fault_free")
            else "DIVERGED"
        )
        lines.append(
            f"  report vs fault-free: {verdict}; "
            f"recoveries {recovery.get('recoveries', 0)} "
            f"({recovery.get('lossless_recoveries', 0)} lossless, "
            f"{recovery.get('lost_updates', 0)} lost updates)"
        )
        lines.append(
            f"  wall {chaos['wall_seconds']:.3f}s, "
            f"{chaos['ops_per_sec']:.0f} ops/s; recovery time "
            f"total {recovery.get('recovery_seconds_total', 0.0):.3f}s, "
            f"max {recovery.get('recovery_seconds_max', 0.0):.3f}s, "
            f"mean {recovery.get('recovery_seconds_mean', 0.0):.3f}s"
        )
    master_chaos = payload.get("scaleout_master_chaos")
    if master_chaos:
        recovery = master_chaos.get("recovery") or {}
        lines.append("")
        lines.append(
            f"scaleout_master_chaos ({master_chaos['num_shards']} shards, "
            f"{master_chaos['num_workers']} workers, disk+respawn+masters, "
            f"chaos seed {master_chaos['chaos_seed']}):"
        )
        verdict = (
            "byte-identical"
            if master_chaos.get("report_matches_fault_free")
            else "DIVERGED"
        )
        lines.append(
            f"  report vs fault-free: {verdict}; "
            f"recoveries {recovery.get('recoveries', 0)} "
            f"({recovery.get('lossless_recoveries', 0)} lossless, "
            f"{recovery.get('lost_updates', 0)} lost updates); "
            f"kill landed mid-migration"
        )
        lines.append(
            f"  wall {master_chaos['wall_seconds']:.3f}s, "
            f"{master_chaos['ops_per_sec']:.0f} ops/s, "
            f"p99 service time "
            f"{master_chaos.get('p99_service_time_s', 0.0):.6g}s; "
            f"recovery time total "
            f"{recovery.get('recovery_seconds_total', 0.0):.3f}s, "
            f"max {recovery.get('recovery_seconds_max', 0.0):.3f}s"
        )
    return "\n".join(lines)

"""Ablations of MOIST design choices called out in DESIGN.md Section 5.

* Hilbert vs Z-order curve: scan locality of the Spatial Index Table keys.
* Hexagonal vs square velocity partition: how tightly each respects the
  intra-school velocity bound Δm and how many schools each produces.
* FLAG cache on/off: probe reads saved by Algorithm 4.
* PPP placement with/without the initial-location component: disk segments
  touched by object- and region-history queries.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.archive.ppp import ArchiveStats, PPPArchiver
from repro.core.flag import FlagTuner
from repro.core.hexgrid import HexGrid
from repro.experiments.common import uniform_leader_indexer
from repro.experiments.report import FigureResult
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import HistoryRecord, format_object_id
from repro.spatial.hilbert import hilbert_index
from repro.spatial.zcurve import z_index


# ----------------------------------------------------------------------
# Hilbert vs Z-order locality
# ----------------------------------------------------------------------
def curve_locality_score(
    level: int, encoder, block: int = 4, samples: int = 200, seed: int = 5
) -> float:
    """Mean number of contiguous key runs needed to cover a square block.

    Each run corresponds to one BigTable range scan, so fewer runs means a
    neighbourhood query touches fewer scan RPCs.  Lower is better.
    """
    rng = random.Random(seed)
    side = 1 << level
    total = 0.0
    for _ in range(samples):
        x0 = rng.randrange(side - block)
        y0 = rng.randrange(side - block)
        keys = sorted(
            encoder(level, x, y)
            for x in range(x0, x0 + block)
            for y in range(y0, y0 + block)
        )
        runs = 1 + sum(1 for a, b in zip(keys, keys[1:]) if b != a + 1)
        total += runs
    return total / samples


def run_curve_ablation(levels: Sequence[int] = (6, 8, 10)) -> FigureResult:
    """Hilbert vs Z-order scan locality across curve levels."""
    result = FigureResult(
        figure_id="ablation-curve",
        title="Space-filling curve locality (range scans per 4x4 block)",
        x_label="curve level",
        y_label="mean scan runs",
    )
    hilbert_scores = [curve_locality_score(level, hilbert_index) for level in levels]
    z_scores = [curve_locality_score(level, z_index) for level in levels]
    result.add_series("Hilbert", list(levels), hilbert_scores)
    result.add_series("Z-order", list(levels), z_scores)
    result.add_note("lower is better; the paper cites Hilbert's slight edge (Sec. 3.2.1)")
    return result


# ----------------------------------------------------------------------
# Hexagonal vs square velocity partition
# ----------------------------------------------------------------------
def run_velocity_partition_ablation(
    max_deviation: float = 1.0, samples: int = 2000, seed: int = 5
) -> FigureResult:
    """Hexagonal vs square binning of the velocity space.

    Measures (i) the worst observed intra-bin velocity deviation relative to
    Δm and (ii) the number of occupied bins for the same velocity sample —
    the trade-off the paper's hexagon choice optimises.
    """
    rng = random.Random(seed)
    # Sample a velocity domain much larger than one bin so interior bins
    # dominate the count (boundary bins would otherwise favour whichever
    # partition happens to align with the sampling box).
    velocities = [
        Vector(rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)) for _ in range(samples)
    ]
    hexgrid = HexGrid(max_deviation=max_deviation)

    def square_bin(velocity: Vector) -> Tuple[int, int]:
        # A square with diagonal Δm has side Δm / sqrt(2).
        side = max_deviation / (2 ** 0.5)
        return (int(velocity.dx // side), int(velocity.dy // side))

    def evaluate(bin_function) -> Tuple[float, int]:
        bins = {}
        for velocity in velocities:
            bins.setdefault(bin_function(velocity), []).append(velocity)
        worst = 0.0
        for members in bins.values():
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    worst = max(worst, first.distance_to(second))
        return worst, len(bins)

    hex_worst, hex_bins = evaluate(hexgrid.bin_of)
    square_worst, square_bins = evaluate(square_bin)
    result = FigureResult(
        figure_id="ablation-velocity-partition",
        title="Velocity-space partition: hexagons vs squares",
        x_label="metric",
        y_label="value",
    )
    result.add_series("hexagon", [0, 1], [hex_worst, float(hex_bins)])
    result.add_series("square", [0, 1], [square_worst, float(square_bins)])
    result.add_note("metric 0 = worst intra-bin deviation (must stay <= Δm), metric 1 = #occupied bins")
    return result


# ----------------------------------------------------------------------
# FLAG cache
# ----------------------------------------------------------------------
def run_flag_cache_ablation(
    num_objects: int = 20000, queries: int = 200, seed: int = 5
) -> FigureResult:
    """Probe reads with and without the Algorithm 4 level cache."""
    indexer = uniform_leader_indexer(num_objects, seed=seed)
    rng = random.Random(seed)
    locations = [
        Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)) for _ in range(queries)
    ]

    cached = FlagTuner(indexer.config, indexer.spatial_table, total_objects_hint=num_objects)
    for index, location in enumerate(locations):
        cached.best_level(location, now=float(index))
    uncached = FlagTuner(indexer.config, indexer.spatial_table, total_objects_hint=num_objects)
    for location in locations:
        uncached.compute_level(location)

    result = FigureResult(
        figure_id="ablation-flag-cache",
        title="FLAG level cache: density-probe reads per query",
        x_label="metric",
        y_label="value",
    )
    result.add_series(
        "with cache", [0, 1], [cached.stats.probe_reads / queries, cached.stats.hit_ratio]
    )
    result.add_series(
        "without cache", [0, 1], [uncached.stats.probe_reads / queries, 0.0]
    )
    result.add_note("metric 0 = probe reads per query, metric 1 = cache hit ratio")
    return result


# ----------------------------------------------------------------------
# Shedding: object schools vs single-object dead reckoning
# ----------------------------------------------------------------------
def run_shedding_ablation(
    num_objects: int = 300,
    duration_s: float = 60.0,
    tolerance: float = 20.0,
    seed: int = 3,
) -> FigureResult:
    """Compare MOIST's cross-object shedding with per-object dead reckoning.

    Both shed updates within the same error tolerance; the comparison shows
    (i) how much each sheds and (ii) how many objects remain in the spatial
    index — schools additionally collapse the index to one leader per school,
    which is what speeds NN queries up (Figure 11's argument).
    """
    from repro.baselines.dead_reckoning import DeadReckoningIndex
    from repro.core.moist import MoistIndexer
    from repro.experiments.common import dense_road_config, school_config
    from repro.workload.generator import RoadNetworkWorkload

    config = school_config(deviation_threshold=tolerance)
    workload_config = dense_road_config(num_objects, seed=seed)

    moist = MoistIndexer(config)
    moist_workload = RoadNetworkWorkload(workload_config)
    elapsed = 0.0
    while elapsed < duration_s:
        elapsed += 1.0
        for message in moist_workload.advance_to(elapsed):
            moist.update(message)
        moist.run_due_clustering(elapsed)

    dead_reckoning = DeadReckoningIndex(config, tolerance=tolerance)
    dr_workload = RoadNetworkWorkload(workload_config)
    elapsed = 0.0
    while elapsed < duration_s:
        elapsed += 1.0
        for message in dr_workload.advance_to(elapsed):
            dead_reckoning.update(message)

    result = FigureResult(
        figure_id="ablation-shedding",
        title="Shedding: object schools vs per-object dead reckoning",
        x_label="metric",
        y_label="value",
    )
    result.add_series(
        "object schools (MOIST)",
        [0, 1],
        [moist.shed_ratio(), float(moist.school_count)],
    )
    result.add_series(
        "dead reckoning",
        [0, 1],
        [dead_reckoning.stats.shed_ratio, float(dead_reckoning.indexed_objects)],
    )
    result.add_note(
        "metric 0 = shed ratio, metric 1 = rows in the spatial index "
        "(schools vs every object); same error tolerance for both"
    )
    return result


# ----------------------------------------------------------------------
# PPP placement
# ----------------------------------------------------------------------
def _archive_synthetic_history(
    use_initial_location: bool,
    num_objects: int,
    records_per_object: int,
    num_disks: int,
    seed: int,
) -> PPPArchiver:
    rng = random.Random(seed)
    world = BoundingBox(0.0, 0.0, 1000.0, 1000.0)
    archiver = PPPArchiver(
        num_disks=num_disks,
        page_records=64,
        world=world,
        use_initial_location=use_initial_location,
    )
    starts: List[Point] = []
    for index in range(num_objects):
        start = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        starts.append(start)
        archiver.register_object(format_object_id(index), start)
    for step in range(records_per_object):
        for index in range(num_objects):
            drift = Vector(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))
            location = world.clamp_point(starts[index].displaced(drift.scaled(step)))
            archiver.archive(
                HistoryRecord(
                    object_id=format_object_id(index),
                    location=location,
                    velocity=drift,
                    timestamp=float(step),
                ),
                now=float(step),
            )
    archiver.flush_all(now=float(records_per_object))
    return archiver


def run_placement_ablation(
    num_objects: int = 200,
    records_per_object: int = 30,
    num_disks: int = 8,
    queries: int = 50,
    seed: int = 5,
) -> FigureResult:
    """Disk segments touched per history query, with and without the
    initial-location component of the placement hash."""
    result = FigureResult(
        figure_id="ablation-placement",
        title="PPP placement: segments touched per history query",
        x_label="metric",
        y_label="segments per query",
    )
    rng = random.Random(seed)
    query_regions = [
        BoundingBox.from_center(
            Point(rng.uniform(100.0, 900.0), rng.uniform(100.0, 900.0)), 50.0, 50.0
        )
        for _ in range(queries)
    ]
    for label, use_location in (("object+location hash", True), ("object-only hash", False)):
        archiver = _archive_synthetic_history(
            use_location, num_objects, records_per_object, num_disks, seed
        )
        for index in range(queries):
            archiver.object_history(format_object_id(index % num_objects))
        object_segments = archiver.stats.segments_per_query()
        archiver.stats = ArchiveStats()  # fresh counters for the second query shape
        for region in query_regions:
            archiver.region_history(region)
        region_segments = archiver.stats.segments_per_query()
        result.add_series(label, [0, 1], [object_segments, region_segments])
    result.add_note("metric 0 = object-history queries, metric 1 = region-history queries")
    return result

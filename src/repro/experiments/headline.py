"""The paper's headline comparisons (Sections 1 and 4).

1. A single MOIST front-end with no object schools sustains ~8k updates/s at
   one million indexed objects, roughly 2x the ~3k updates/s of the Bx-tree.
2. On a road-network workload roughly 80 % of updates are shed by object
   schools.
3. With 10 servers and schools enabled, effective update throughput reaches
   ~60k QPS — a ~80x improvement over the Bx-tree number.
"""

from __future__ import annotations

from repro.baselines.bxtree import BxTree, BxTreeConfig
from repro.core.moist import MoistIndexer
from repro.experiments.common import dense_road_config, school_config
from repro.experiments.fig13_qps import measure_update_qps
from repro.experiments.report import FigureResult
from repro.workload.generator import RoadNetworkWorkload
from repro.workload.uniform import UniformWorkload


def measure_bxtree_update_qps(num_objects: int = 20000, num_updates: int = 5000, seed: int = 71) -> float:
    """Simulated update throughput of the Bx-tree baseline."""
    workload = UniformWorkload(num_objects=num_objects, seed=seed)
    tree = BxTree(BxTreeConfig())
    for message in workload.initial_updates():
        tree.update(message)
    tree.stats.simulated_seconds = 0.0
    tree.stats.updates = 0
    for index in range(num_updates):
        tree.update(workload.random_update(timestamp=1.0 + index * 1e-3))
    if tree.stats.simulated_seconds <= 0:
        return 0.0
    return tree.stats.updates / tree.stats.simulated_seconds


def measure_road_network_shed_ratio(
    num_objects: int = 800, duration_s: float = 90.0, seed: int = 3
) -> float:
    """Shed ratio of MOIST with schools on the road-network workload."""
    indexer = MoistIndexer(school_config())
    workload = RoadNetworkWorkload(dense_road_config(num_objects, seed=seed))
    elapsed = 0.0
    while elapsed < duration_s:
        elapsed += 1.0
        for message in workload.advance_to(elapsed):
            indexer.update(message)
        indexer.run_due_clustering(elapsed)
    return indexer.shed_ratio()


def run_headline(
    num_objects: int = 20000,
    num_updates: int = 5000,
    shed_objects: int = 800,
    seed: int = 71,
) -> FigureResult:
    """The headline table: MOIST vs Bx-tree update throughput and shedding."""
    result = FigureResult(
        figure_id="headline",
        title="Headline comparison: MOIST vs Bx-tree",
        x_label="row",
        y_label="value",
    )
    bx_qps = measure_bxtree_update_qps(num_objects, num_updates, seed=seed)
    single = measure_update_qps(num_objects, num_servers=1, num_updates=num_updates, seed=seed)
    ten = measure_update_qps(num_objects, num_servers=10, num_updates=num_updates, seed=seed)
    shed_ratio = measure_road_network_shed_ratio(shed_objects, seed=seed % 7 + 1)
    # With schools, roughly 1/(1 - shed_ratio) client updates are absorbed per
    # storage-visible update, so the effective client-facing throughput of the
    # 10-server deployment scales accordingly (this is the paper's ~80x
    # argument: ~8x from servers, ~5x-10x from shedding).
    effective_ten_qps = ten.qps / max(1.0 - shed_ratio, 1e-6)

    rows = [
        ("bx_tree_update_qps", bx_qps),
        ("moist_single_server_qps", single.qps),
        ("moist_single_vs_bx", single.qps / bx_qps if bx_qps > 0 else 0.0),
        ("moist_10_server_qps", ten.qps),
        ("road_network_shed_ratio", shed_ratio),
        ("moist_10_server_effective_qps", effective_ten_qps),
        ("moist_10_server_effective_vs_bx", effective_ten_qps / bx_qps if bx_qps > 0 else 0.0),
    ]
    result.add_series("value", list(range(len(rows))), [value for _, value in rows])
    for index, (label, value) in enumerate(rows):
        result.add_note(f"row {index}: {label} = {value:.2f}")
    result.add_note(
        "paper: Bx-tree ~3k updates/s, MOIST single server ~8k (2x), 10 servers + "
        "schools ~60k effective (~80x), ~80% of road-network updates shed"
    )
    return result

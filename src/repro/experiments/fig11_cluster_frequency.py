"""Figure 11: influence of the clustering frequency on NN query throughput.

The paper's setup: 20k objects, initially 1k leaders; with every object
updating its location the number of leaders grows linearly back toward the
population size — reaching 20k in 30 s for setting A (highly dynamic) and in
60 s for setting B (relatively fixed).  A clustering pass collapses the
leaders back to the initial 1k.  More frequent clustering keeps the Spatial
Index Table small (faster NN queries) but spends more time clustering; the
figure shows NN QPS against the clustering frequency, with the no-clustering
throughput as a horizontal baseline.

We reproduce the experiment the same way the paper frames it: the *leader
growth* is the assumed linear process, while the NN query cost and the
clustering cost at any leader count are measured on a real index built with
that many leaders (sampled and interpolated).  See EXPERIMENTS.md E-11.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import MoistConfig
from repro.experiments.common import uniform_leader_indexer
from repro.experiments.fig10_clustering import measure_clustering_latency
from repro.experiments.report import FigureResult
from repro.geometry.bbox import BoundingBox


def measure_nn_cost_per_leader_count(
    leader_counts: Sequence[int],
    k: int = 10,
    queries: int = 20,
    region_size: float = 1000.0,
    seed: int = 31,
) -> Dict[int, float]:
    """Simulated seconds per NN query for each indexed leader count."""
    costs: Dict[int, float] = {}
    config = MoistConfig(
        world=BoundingBox(0.0, 0.0, region_size, region_size), storage_level=12
    )
    for count in leader_counts:
        indexer = uniform_leader_indexer(count, region_size=region_size, seed=seed, config=config)
        rng_points = [
            indexer.config.world.center().translated(
                (index - queries / 2) * region_size / (queries * 2), 0.0
            )
            for index in range(queries)
        ]
        before = indexer.emulator.counter.simulated_seconds
        for point in rng_points:
            indexer.nearest_neighbors(point, k, use_flag=True)
        elapsed = indexer.emulator.counter.simulated_seconds - before
        costs[count] = elapsed / queries
    return costs


def _interpolate_cost(costs: Dict[int, float], leaders: float) -> float:
    """Piecewise-linear interpolation of the measured NN query cost."""
    points = sorted(costs.items())
    if leaders <= points[0][0]:
        return points[0][1]
    if leaders >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= leaders <= x1:
            fraction = (leaders - x0) / (x1 - x0)
            return y0 + fraction * (y1 - y0)
    return points[-1][1]


def simulate_nn_qps(
    clustering_frequency_hz: float,
    growth_seconds: float,
    nn_costs: Dict[int, float],
    clustering_seconds: float,
    initial_leaders: int = 1000,
    total_objects: int = 20000,
    horizon_s: float = 60.0,
) -> float:
    """NN QPS over ``horizon_s`` for one clustering frequency.

    Between clusterings the leader count grows linearly from
    ``initial_leaders`` toward ``total_objects`` over ``growth_seconds``;
    each clustering costs ``clustering_seconds`` of server time and resets
    the leader count.  The server spends the rest of its time answering NN
    queries whose cost depends on the current leader count.
    """
    if clustering_frequency_hz < 0:
        raise ValueError("clustering_frequency_hz must be non-negative")
    growth_rate = (total_objects - initial_leaders) / growth_seconds
    if clustering_frequency_hz == 0:
        period = horizon_s
    else:
        period = 1.0 / clustering_frequency_hz
    time_left = horizon_s
    queries_answered = 0.0
    while time_left > 1e-9:
        interval = min(period, time_left)
        cluster_cost = clustering_seconds if clustering_frequency_hz > 0 else 0.0
        query_time = max(interval - cluster_cost, 0.0)
        # Integrate query throughput over the interval in 1-second slices as
        # the leader count (and therefore the per-query cost) drifts upward.
        elapsed = 0.0
        while elapsed < query_time - 1e-9:
            slice_s = min(1.0, query_time - elapsed)
            leaders = min(
                initial_leaders + growth_rate * elapsed, float(total_objects)
            )
            cost = _interpolate_cost(nn_costs, leaders)
            if cost > 0:
                queries_answered += slice_s / cost
            elapsed += slice_s
        time_left -= interval
    return queries_answered / horizon_s


def run_fig11(
    frequencies_hz: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    initial_leaders: int = 500,
    total_objects: int = 5000,
    k: int = 10,
) -> FigureResult:
    """NN QPS vs clustering frequency for settings A (30 s) and B (60 s).

    Scaled to 5k objects / 500 initial leaders so the harness runs in
    seconds; the growth-time ratio between the two settings (and therefore
    the position of the optimum) matches the paper's 30 s vs 60 s setup.
    """
    sample_counts = sorted(
        {
            initial_leaders,
            (initial_leaders + total_objects) // 4,
            (initial_leaders + total_objects) // 2,
            total_objects,
        }
    )
    nn_costs = measure_nn_cost_per_leader_count(sample_counts, k=k)
    clustering_report = measure_clustering_latency(
        pre_leaders=total_objects, post_leaders=initial_leaders
    )
    clustering_seconds = clustering_report.total_seconds

    result = FigureResult(
        figure_id="fig11",
        title="NN QPS vs clustering frequency",
        x_label="clusterings per second",
        y_label="NN QPS (simulated)",
    )
    for label, growth_seconds in (("setting A (30s growth)", 30.0), ("setting B (60s growth)", 60.0)):
        ys: List[float] = []
        for frequency in frequencies_hz:
            ys.append(
                simulate_nn_qps(
                    frequency,
                    growth_seconds,
                    nn_costs,
                    clustering_seconds,
                    initial_leaders=initial_leaders,
                    total_objects=total_objects,
                )
            )
        result.add_series(label, list(frequencies_hz), ys)
    baseline = simulate_nn_qps(
        0.0,
        30.0,
        nn_costs,
        clustering_seconds,
        initial_leaders=total_objects,
        total_objects=total_objects,
    )
    result.add_series("no clustering", list(frequencies_hz), [baseline] * len(frequencies_hz))
    result.add_note(
        f"scaled to {total_objects} objects / {initial_leaders} initial leaders; "
        "NN cost per leader count and clustering latency are measured on real indexes"
    )
    return result

"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from repro.bigtable.tablet import TabletOptions
from repro.core.config import MoistConfig
from repro.core.moist import MoistIndexer
from repro.baselines.no_school import build_no_school_indexer
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.workload.generator import RoadNetworkWorkload, WorkloadConfig


def dense_road_config(num_objects: int, seed: int = 3, map_size: float = 300.0) -> WorkloadConfig:
    """Road-network workload sized so school effects are visible.

    The paper's school experiments use a default population of only 100
    objects, which implies a much denser map than the 1,000 x 1,000-unit
    BigTable stress map; a 300-unit map with 30-unit blocks reproduces that
    density regime (see EXPERIMENTS.md, E-9*).
    """
    return WorkloadConfig(
        num_objects=num_objects,
        map_size=map_size,
        block_size=map_size / 10.0,
        min_update_interval_s=1.0,
        max_update_interval_s=1.0,
        seed=seed,
    )


def school_config(
    map_size: float = 300.0,
    deviation_threshold: float = 20.0,
    velocity_threshold: float = 1.0,
    clustering_interval_s: float = 10.0,
) -> MoistConfig:
    """MOIST configuration matched to :func:`dense_road_config`."""
    return MoistConfig(
        world=BoundingBox(0.0, 0.0, map_size, map_size),
        storage_level=12,
        # A clustering cell spans half the (dense) map: the paper's school
        # experiments model bus/subway-style co-movement where one clustering
        # region covers a whole corridor of the city.
        clustering_cell_level=1,
        deviation_threshold=deviation_threshold,
        velocity_threshold=velocity_threshold,
        clustering_interval_s=clustering_interval_s,
    )


def drive_indexer(
    indexer: MoistIndexer,
    workload: RoadNetworkWorkload,
    duration_s: float,
    cluster_every_s: Optional[float] = None,
    sample_every_s: float = 1.0,
) -> List[Tuple[float, int]]:
    """Feed a workload into an indexer and sample the school count over time.

    Returns ``(time, school_count)`` samples taken every ``sample_every_s``
    seconds of simulation time.  Clustering runs through the indexer's
    ``run_due_clustering`` (honouring the configured interval) unless
    ``cluster_every_s`` forces a fixed cadence.
    """
    samples: List[Tuple[float, int]] = []
    next_cluster = cluster_every_s if cluster_every_s is not None else None
    next_sample = sample_every_s
    step = 1.0
    elapsed = 0.0
    while elapsed < duration_s:
        elapsed = min(elapsed + step, duration_s)
        for message in workload.advance_to(elapsed):
            indexer.update(message)
        if next_cluster is not None:
            if elapsed >= next_cluster:
                indexer.run_clustering(elapsed)
                next_cluster += cluster_every_s
        else:
            indexer.run_due_clustering(elapsed)
        if elapsed >= next_sample:
            samples.append((elapsed, indexer.school_count))
            next_sample += sample_every_s
    return samples


def uniform_leader_indexer(
    num_objects: int,
    region_size: float = 1000.0,
    storage_level: int = 12,
    seed: int = 17,
    config: Optional[MoistConfig] = None,
    tablet_options: Optional[TabletOptions] = None,
) -> MoistIndexer:
    """A no-school indexer preloaded with uniformly placed leader objects.

    This is the setup of the BigTable stress experiments (Figures 12-13):
    every object is a leader, positions and velocities are uniform in the
    region.  ``tablet_options`` tunes the storage engine (the recovery
    experiment dials the memtable flush threshold down to exercise the
    LSM flush/compaction machinery).
    """
    base = config or MoistConfig(
        world=BoundingBox(0.0, 0.0, region_size, region_size),
        storage_level=storage_level,
    )
    indexer = build_no_school_indexer(base, tablet_options=tablet_options)
    rng = random.Random(seed)
    for index in range(num_objects):
        location = Point(
            rng.uniform(0.0, region_size), rng.uniform(0.0, region_size)
        )
        velocity = Vector(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0))
        indexer.update(
            UpdateMessage(
                object_id=format_object_id(index),
                location=location,
                velocity=velocity,
                timestamp=0.0,
            )
        )
    # Preloading is setup, not the measured workload: reset the storage
    # accounting so experiments start from a clean ledger.
    indexer.emulator.reset_counters()
    return indexer


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty iterable)."""
    collected = list(values)
    if not collected:
        return 0.0
    return sum(collected) / len(collected)

"""Mixed read/write scale-out experiment: the read path under load.

Figure 13 stresses the write path; this experiment extends it along the
axis the query execution layer opens up.  A cluster of front-end servers
serves interleaved batches of location updates (tablet-routed group
commits) and NN queries (tablet-pinned batches with shared cell scans),
with the query fraction swept from an all-write to an all-read workload.
Per fraction the harness reports:

* combined request QPS through both batched paths;
* the block-cache hit rate of the query side's cell scans;
* the hottest tablet's share of storage time, now fed by reads and writes
  symmetrically through the contention model.

The qualitative claims under test: queries ride the same tablet machinery
as updates without collapsing throughput (the paper's Section 4.3 mixed
workloads), and a spatially concentrated query stream is progressively
served from the block cache instead of re-scanning cold rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import uniform_leader_indexer
from repro.experiments.report import FigureResult, cache_hit_report
from repro.server.cluster import ServerCluster
from repro.server.loadtest import LoadTest, LoadTestResult
from repro.workload.queries import NNQueryWorkload


@dataclass(frozen=True)
class MixedSweepOutcome:
    """One mixed sweep: the figure plus the per-tablet cache report
    captured from the run whose query fraction was closest to one half."""

    figure: FigureResult
    cache_report: str


def _mixed_harness(
    num_objects: int,
    num_servers: int,
    num_requests: int,
    query_fraction: float,
    num_clients: int,
    k: int,
    failure_probability: float,
    seed: int,
    tablet_options=None,
):
    """Preloaded indexer, tablet-routing cluster and the two request
    streams whose relative sizes realise ``query_fraction``.

    ``tablet_options`` tunes the storage engine (the benchmark's
    compaction-stress workload dials the memtable flush threshold down).
    """
    if not 0.0 <= query_fraction <= 1.0:
        raise ValueError("query_fraction must be in [0, 1]")
    indexer = uniform_leader_indexer(
        num_objects, seed=seed, tablet_options=tablet_options
    )
    cluster = ServerCluster(indexer, num_servers=num_servers)
    load_test = LoadTest.with_fleet(
        cluster,
        num_clients=num_clients,
        total_objects=num_objects,
        failure_probability=failure_probability,
        seed=seed,
    )
    num_queries = int(num_requests * query_fraction)
    num_updates = num_requests - num_queries
    messages = []
    if num_updates > 0:
        # Spread the exact update count over the fleet (remainder to the
        # first clients) so the realised mix matches ``query_fraction``.
        base, extra = divmod(num_updates, max(len(load_test.clients), 1))
        for index, client in enumerate(load_test.clients):
            count = base + (1 if index < extra else 0)
            if count > 0:
                messages.extend(client.burst(1.0, count))
    region = indexer.config.world
    queries = (
        NNQueryWorkload(region, k=k, seed=seed).batch(num_queries)
        if num_queries > 0
        else []
    )
    return indexer, load_test, messages, queries


def measure_mixed_qps(
    num_objects: int,
    query_fraction: float,
    num_servers: int = 5,
    num_requests: int = 4000,
    num_clients: int = 10,
    batch_size: int = 256,
    k: int = 10,
    failure_probability: float = 0.0,
    seed: int = 59,
) -> LoadTestResult:
    """Drive one mixed update/query workload through the batched paths."""
    _, load_test, messages, queries = _mixed_harness(
        num_objects,
        num_servers,
        num_requests,
        query_fraction,
        num_clients,
        k,
        failure_probability,
        seed,
    )
    return load_test.run_mixed_batches(messages, queries, batch_size=batch_size)


def run_mixed_sweep(
    query_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    num_objects: int = 20000,
    num_servers: int = 5,
    num_requests: int = 8000,
    num_clients: int = 10,
    batch_size: int = 256,
    k: int = 10,
    seed: int = 59,
) -> MixedSweepOutcome:
    """Mixed-workload QPS, cache hit rate and tablet skew vs query fraction.

    The per-tablet cache report is captured from the swept run whose query
    fraction lies closest to 0.5 (among fractions that issue any queries),
    so printing it costs no extra simulation.
    """
    result = FigureResult(
        figure_id="mixed",
        title="Mixed update/query QPS vs query fraction (batched read+write paths)",
        x_label="query fraction",
        y_label="requests per second (simulated)",
    )
    qps_values: List[float] = []
    hit_rates: List[float] = []
    hot_shares: List[float] = []
    report = "(no query fraction swept)\n"
    report_fraction = None
    for fraction in query_fractions:
        indexer, load_test, messages, queries = _mixed_harness(
            num_objects,
            num_servers,
            num_requests,
            fraction,
            num_clients,
            k,
            0.0,
            seed,
        )
        outcome = load_test.run_mixed_batches(
            messages, queries, batch_size=batch_size
        )
        qps_values.append(outcome.qps)
        hit_rates.append(outcome.cache_hit_rate)
        hot_shares.append(outcome.hot_tablet_share)
        if fraction > 0.0 and (
            report_fraction is None
            or abs(fraction - 0.5) < abs(report_fraction - 0.5)
        ):
            report_fraction = fraction
            report = cache_hit_report(indexer.cache_stats())
    fractions = list(query_fractions)
    result.add_series("mixed QPS", fractions, qps_values)
    result.add_series("cache hit rate", fractions, hit_rates)
    result.add_series("hot tablet share", fractions, hot_shares)
    result.add_note(
        f"{num_servers} servers; updates batch-routed by Location tablet, "
        f"queries batch-pinned to their Spatial Index tablet with shared "
        f"cell scans (batch size {batch_size}, k={k})"
    )
    if hit_rates:
        result.add_note(
            f"block-cache hit rate grows with the read share "
            f"(up to {max(hit_rates):.1%}); see `figures mixed` for the "
            f"per-tablet breakdown"
        )
    return MixedSweepOutcome(figure=result, cache_report=report)


def run_mixed(
    query_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    num_objects: int = 20000,
    num_servers: int = 5,
    num_requests: int = 8000,
    batch_size: int = 256,
    k: int = 10,
    seed: int = 59,
) -> FigureResult:
    """Mixed-workload QPS, cache hit rate and tablet skew vs query fraction."""
    return run_mixed_sweep(
        query_fractions=query_fractions,
        num_objects=num_objects,
        num_servers=num_servers,
        num_requests=num_requests,
        batch_size=batch_size,
        k=k,
        seed=seed,
    ).figure

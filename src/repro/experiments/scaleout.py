"""Scale-out experiment: tablet-routed batched updates across cluster sizes.

This experiment extends Figure 13's BigTable stress test along the axis the
tablet layer opens up: instead of round-robining single updates into one
monolithic store, the cluster partitions each update batch by the Location
Table tablet that owns the row and pins every tablet to one front-end
server.  Three quantities are reported per cluster size:

* update QPS through the batched group-commit path;
* the number of tablets the tables sharded into (driven purely by the
  default split threshold — no tuning);
* the hottest tablet's share of storage time, the skew figure that feeds
  the tablet-aware contention model.

The qualitative claim under test is the paper's Section 4.3.3 scaling
story: because Z-curve-keyed updates spread over row-range tablets, adding
front-end servers keeps dividing the work with only mild contention loss.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import uniform_leader_indexer
from repro.experiments.report import FigureResult, tablet_load_report
from repro.server.cluster import ServerCluster
from repro.server.loadtest import LoadTest, LoadTestResult


def _batched_harness(
    num_objects: int,
    num_servers: int,
    num_updates: int,
    num_clients: int,
    failure_probability: float,
    seed: int,
):
    """Shared setup of every scale-out run: a preloaded leader indexer, a
    tablet-routing cluster and the client fleet's update stream."""
    indexer = uniform_leader_indexer(num_objects, seed=seed)
    cluster = ServerCluster(indexer, num_servers=num_servers)
    load_test = LoadTest.with_fleet(
        cluster,
        num_clients=num_clients,
        total_objects=num_objects,
        failure_probability=failure_probability,
        seed=seed,
    )
    messages = []
    timestamp = 1.0
    per_client = max(num_updates // max(len(load_test.clients), 1), 1)
    for client in load_test.clients:
        messages.extend(client.burst(timestamp, per_client))
    return indexer, load_test, messages


def measure_batched_update_qps(
    num_objects: int,
    num_servers: int = 1,
    num_updates: int = 5000,
    num_clients: int = 10,
    batch_size: int = 256,
    failure_probability: float = 0.0,
    seed: int = 59,
) -> LoadTestResult:
    """Preload ``num_objects`` leaders and drive batched updates through a
    tablet-routing cluster of ``num_servers`` front-ends."""
    _, load_test, messages = _batched_harness(
        num_objects, num_servers, num_updates, num_clients, failure_probability, seed
    )
    return load_test.run_update_batches(messages, batch_size=batch_size)


def run_scaleout(
    server_counts: Sequence[int] = (1, 2, 5, 10),
    num_objects: int = 20000,
    num_updates: int = 10000,
    batch_size: int = 256,
    seed: int = 59,
) -> FigureResult:
    """Batched update QPS, tablet count and hot-tablet share vs cluster size."""
    result = FigureResult(
        figure_id="scaleout",
        title="Tablet-routed batched update QPS vs cluster size",
        x_label="front-end servers",
        y_label="updates per second (simulated)",
    )
    qps_values = []
    tablet_counts = []
    hot_shares = []
    last_outcome = None
    for count in server_counts:
        outcome = measure_batched_update_qps(
            num_objects,
            num_servers=count,
            num_updates=num_updates,
            batch_size=batch_size,
            seed=seed,
        )
        qps_values.append(outcome.qps)
        tablet_counts.append(outcome.tablet_count)
        hot_shares.append(outcome.hot_tablet_share)
        last_outcome = outcome
    counts = list(server_counts)
    result.add_series("batched update QPS", counts, qps_values)
    result.add_series("tablets", counts, [float(value) for value in tablet_counts])
    result.add_series("hot tablet share", counts, hot_shares)
    if last_outcome is not None:
        result.add_note(
            f"tables sharded into {last_outcome.tablet_count} tablets at the "
            f"default split threshold; hottest tablet served "
            f"{last_outcome.hot_tablet_share:.1%} of storage time"
        )
    result.add_note(
        "updates are batched client-side, partitioned by owning Location "
        "Table tablet and pinned to that tablet's server (group-commit path)"
    )
    return result


# --------------------------------------------------------------------------
# Multiprocess scale-out (shared-nothing shard federation)
# --------------------------------------------------------------------------


def multiproc_streams(num_objects: int, num_requests: int, seed: int):
    """A reproducible 50/50 update/NN-query stream for the scale-out runs.

    Built parent-side from one seeded rng so every backend and worker count
    consumes exactly the same requests.
    """
    import random

    from repro.geometry.point import Point
    from repro.geometry.vector import Vector
    from repro.model import UpdateMessage, format_object_id
    from repro.workload.queries import NNQuery

    rng = random.Random(seed)
    num_updates = num_requests // 2
    num_queries = num_requests - num_updates
    messages = [
        UpdateMessage(
            object_id=format_object_id(rng.randrange(num_objects)),
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            velocity=Vector(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)),
            timestamp=float(index) / 10.0,
        )
        for index in range(num_updates)
    ]
    queries = [
        NNQuery(
            location=Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            k=10,
        )
        for _ in range(num_queries)
    ]
    return messages, queries


def multiproc_load_run(
    backend: str,
    num_workers: int,
    num_shards: int,
    num_objects: int,
    num_requests: int,
    seed: int = 59,
    batch_size: int = 256,
    num_servers: int = 2,
    window: int = 1,
):
    """One measured scale-out run: build, drive, account, tear down.

    Returns ``(outcome, wall_seconds, transport, report)`` where ``wall``
    covers only the request loop (builds are excluded, like every other
    bench harness), ``transport`` holds the merged-ledger and RPC-framing
    counters, and ``report`` is the byte-deterministic
    :meth:`~repro.server.loadtest.LoadTestResult.to_report` rendering the
    determinism guards compare across worker counts (and window sizes —
    ``window`` bounds the engine's in-flight update rounds).
    """
    import time

    from repro.server.loadtest import ScaleOutLoadTest
    from repro.server.scaleout import ScaleOutCluster

    cluster = ScaleOutCluster.build(
        num_shards,
        backend=backend,
        num_workers=num_workers,
        num_objects=num_objects,
        seed=seed,
        num_servers=num_servers,
        window=window,
    )
    try:
        messages, queries = multiproc_streams(num_objects, num_requests, seed)
        load_test = ScaleOutLoadTest(cluster, failure_probability=0.0, seed=seed)
        start = time.perf_counter()
        outcome = load_test.run_mixed_batches(
            messages, queries, batch_size=batch_size
        )
        wall = time.perf_counter() - start
        snapshot = cluster.backend.counter.snapshot()
        transport = {
            "storage_rpc_count": snapshot.storage_rpc_count(),
            "simulated_storage_seconds": snapshot.simulated_seconds,
            "serialized_bytes": cluster.backend.serialized_bytes(),
            "rpc_frames": cluster.backend.rpc_frame_count(),
        }
        report = outcome.to_report()
    finally:
        cluster.close()
    return outcome, wall, transport, report


def multiproc_window_run(
    backend: str,
    num_workers: int,
    num_shards: int,
    num_objects: int,
    num_updates: int,
    seed: int = 59,
    batch_size: int = 256,
    num_servers: int = 2,
    window: int = 1,
):
    """One measured *pipelined* run: update-only stream, windowed engine.

    The mixed stream barriers on every query broadcast, so the window axis
    is measured on a pure update stream where rounds can actually stay in
    flight.  Returns ``(outcome, wall_seconds, pipeline, report)`` where
    ``pipeline`` is the engine's :meth:`metrics_snapshot` — the per-phase
    encode/send/blocked-wait/decode breakdown plus the machine-independent
    ``blocking_waits`` / ``rounds_enqueued`` counters the overlap guard
    pins (blocking waits per round must fall like ``1/window``).
    """
    import time

    from repro.server.loadtest import ScaleOutLoadTest
    from repro.server.scaleout import ScaleOutCluster

    messages, _queries = multiproc_streams(num_objects, num_updates * 2, seed)
    cluster = ScaleOutCluster.build(
        num_shards,
        backend=backend,
        num_workers=num_workers,
        num_objects=num_objects,
        seed=seed,
        num_servers=num_servers,
        window=window,
    )
    try:
        load_test = ScaleOutLoadTest(cluster, failure_probability=0.0, seed=seed)
        start = time.perf_counter()
        outcome = load_test.run_update_batches(messages, batch_size=batch_size)
        wall = time.perf_counter() - start
        pipeline = cluster.metrics_snapshot()
        report = outcome.to_report()
    finally:
        cluster.close()
    return outcome, wall, pipeline, report


def multiproc_chaos_run(
    num_workers: int,
    num_shards: int,
    num_objects: int,
    num_requests: int,
    seed: int = 59,
    chaos_seed: int = 29,
    batch_size: int = 256,
    num_servers: int = 2,
    window: int = 1,
):
    """One measured self-healing run: every worker SIGKILLed mid-workload.

    Builds the disk-backed federation under ``respawn`` supervision, drives
    the same seeded mixed stream as :func:`multiproc_load_run`, and fires a
    seeded :class:`~repro.server.chaos.ChaosPlan` that kills each of the
    ``num_workers`` forked workers at least once at a batch boundary.
    Returns ``(outcome, wall_seconds, recovery, report, chaos_applied)``
    where ``recovery`` is the supervisor's wall-clock metrics snapshot and
    ``report`` is the byte-deterministic rendering the caller compares
    against a fault-free reference run.
    """
    import time

    from repro.server.chaos import ChaosPlan
    from repro.server.loadtest import ScaleOutLoadTest
    from repro.server.scaleout import ScaleOutCluster

    messages, queries = multiproc_streams(num_objects, num_requests, seed)
    #: ``run_mixed_batches`` takes one control step per round until both
    #: streams drain, so the round count is the longer stream's batch count.
    num_batches = max(
        -(-len(messages) // batch_size), -(-len(queries) // batch_size), 2
    )
    plan = ChaosPlan.seeded(
        chaos_seed,
        num_batches=num_batches,
        num_workers=num_workers,
        kills=num_workers,
    )
    cluster = ScaleOutCluster.build(
        num_shards,
        backend="disk",
        num_workers=num_workers,
        num_objects=num_objects,
        seed=seed,
        num_servers=num_servers,
        supervision_policy="respawn",
        window=window,
    )
    try:
        load_test = ScaleOutLoadTest(
            cluster, failure_probability=0.0, seed=seed, chaos_plan=plan
        )
        start = time.perf_counter()
        outcome = load_test.run_mixed_batches(
            messages, queries, batch_size=batch_size
        )
        wall = time.perf_counter() - start
        recovery = cluster.recovery_snapshot()
        report = outcome.to_report()
        chaos_applied = list(load_test.chaos_applied)
    finally:
        cluster.close()
    return outcome, wall, recovery, report, chaos_applied


def multiproc_master_chaos_run(
    num_workers: int,
    num_shards: int,
    num_objects: int,
    num_requests: int,
    seed: int = 59,
    chaos_seed: int = 47,
    batch_size: int = 256,
    num_servers: int = 2,
    window: int = 1,
    rebalance_every: int = 2,
):
    """One measured supervised-master run: SIGKILL mid-migration, heal.

    The PR 10 acceptance shape: master-bearing shards under ``respawn``
    supervision, driven by a seeded :class:`~repro.server.chaos.ChaosPlan`
    that folds simulated control-plane faults (one migration aborted
    mid-flight, one server crash + revival) into the same timeline as the
    real SIGKILLs — including a kill at the *same batch boundary* as the
    migration crash, so the worker dies right after checkpointing the
    aborted hand-off.  The fault half of the schedule is drawn before the
    chaos half and never depends on the worker count, so one fault-only
    in-process reference run serves every worker count.

    Both clusters record service times so the report carries a real
    ``p99_service_time_s`` merged across shards in fixed shard order —
    and the chaos run's value must still equal the reference's.

    Returns ``(outcome, wall_seconds, recovery, report, reference_report,
    chaos_applied)``; the caller asserts ``report == reference_report``.
    """
    import time

    from repro.server.chaos import ChaosPlan
    from repro.server.loadtest import ScaleOutLoadTest
    from repro.server.master import MasterOptions
    from repro.server.scaleout import ScaleOutCluster

    messages, queries = multiproc_streams(num_objects, num_requests, seed)
    num_batches = max(
        -(-len(messages) // batch_size), -(-len(queries) // batch_size), 2
    )
    plan = ChaosPlan.seeded(
        chaos_seed,
        num_batches=num_batches,
        num_workers=num_workers,
        kills=num_workers,
        migration_crashes=1,
        server_crashes=1,
        num_servers=num_servers,
    )
    master_options = MasterOptions(replicate_read_share=0.10)
    reference_cluster = ScaleOutCluster.build(
        num_shards,
        backend="inprocess",
        num_workers=1,
        num_objects=num_objects,
        seed=seed,
        num_servers=num_servers,
        with_master=True,
        master_options=master_options,
        record_service_times=True,
    )
    try:
        reference_report = (
            ScaleOutLoadTest(
                reference_cluster,
                failure_probability=0.0,
                seed=seed,
                rebalance_every=rebalance_every,
                fault_plan=plan.fault_plan,
            )
            .run_mixed_batches(messages, queries, batch_size=batch_size)
            .to_report()
        )
    finally:
        reference_cluster.close()
    cluster = ScaleOutCluster.build(
        num_shards,
        backend="disk",
        num_workers=num_workers,
        num_objects=num_objects,
        seed=seed,
        num_servers=num_servers,
        supervision_policy="respawn",
        window=window,
        with_master=True,
        master_options=master_options,
        record_service_times=True,
    )
    try:
        load_test = ScaleOutLoadTest(
            cluster,
            failure_probability=0.0,
            seed=seed,
            rebalance_every=rebalance_every,
            chaos_plan=plan,
        )
        start = time.perf_counter()
        outcome = load_test.run_mixed_batches(
            messages, queries, batch_size=batch_size
        )
        wall = time.perf_counter() - start
        recovery = cluster.recovery_snapshot()
        report = outcome.to_report()
        chaos_applied = list(load_test.chaos_applied)
    finally:
        cluster.close()
    return outcome, wall, recovery, report, reference_report, chaos_applied


def scaleout_tablet_report(
    num_objects: int = 20000,
    num_servers: int = 5,
    num_updates: int = 10000,
    num_clients: int = 10,
    batch_size: int = 256,
    seed: int = 59,
) -> str:
    """Per-tablet accounting table for one scale-out run (console report)."""
    indexer, load_test, messages = _batched_harness(
        num_objects, num_servers, num_updates, num_clients, 0.0, seed
    )
    load_test.run_update_batches(messages, batch_size=batch_size)
    return tablet_load_report(indexer.tablet_stats())

"""Rebalance experiment: master-balanced vs static-affinity clusters under
hot-school skew.

MOIST's deployment claim is that a BigTable-style cluster absorbs skewed
load because hot tablets can be split *and moved*.  PR 1-4 shard and split;
this experiment exercises the missing half — the tablet master
(:mod:`repro.server.master`) migrating hot tablets between front-ends and
replicating read-hot tablets for query fan-out.

The workload models a *hot school*: a fraction ``hot_fraction`` of all
updates and NN queries concentrates on one small region (one school's worth
of co-moving objects and the users querying around it), the rest is uniform
over the map.  Location-table writes for the school cohort and
spatial-index reads around the school both pile onto a handful of tablets;
with static hash affinity those tablets pin one front-end forever, while
the master-balanced cluster migrates them apart and fans the hot reads
out.  Per skew level the harness reports, for both cluster modes:

* combined request throughput through the batched read+write paths;
* the simulated p99 per-request service time;
* the master's control actions (migrations, replications).

The acceptance claim: master-balanced throughput stays at parity with
static affinity on balanced workloads (the control plane never hurts) and
wins clearly once the workload is school-dominated — the benchmark guard
(``benchmarks/test_bench_rebalance``) locks the high-skew ratio in.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.common import uniform_leader_indexer
from repro.experiments.report import FigureResult
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.server.cluster import ServerCluster
from repro.server.loadtest import FaultPlan, LoadTest, LoadTestResult
from repro.server.master import MasterOptions, TabletMaster
from repro.workload.queries import NNQuery

#: Centre and half-width of the hot school's region (the 1000x1000 stress
#: map of the BigTable experiments).
_SCHOOL_CENTER = Point(120.0, 140.0)
_SCHOOL_RADIUS = 40.0

#: The master policy the rebalance experiments run with: the default
#: migration policy plus an aggressive replication threshold, so read
#: fan-out engages on the hot spatial/affiliation tablets this workload
#: produces (their read shares sit around 10-15%).
REBALANCE_MASTER_OPTIONS = MasterOptions(replicate_read_share=0.10)


def hot_school_streams(
    num_objects: int,
    num_requests: int,
    hot_fraction: float,
    region_size: float = 1000.0,
    k: int = 10,
    seed: int = 59,
) -> Tuple[List[UpdateMessage], List[NNQuery]]:
    """An update stream and a query stream skewed toward one hot school.

    ``hot_fraction`` of the updates move the school cohort (the first 5% of
    object ids — a contiguous Location-table key range) inside the school's
    region, and the same fraction of queries centre there; everything else
    is uniform.  Both streams are half of ``num_requests``.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigurationError("hot_fraction must be in [0, 1]")
    rng = random.Random(seed)
    cohort = max(num_objects // 20, 1)

    def hot_point() -> Point:
        return Point(
            _SCHOOL_CENTER.x + rng.uniform(-_SCHOOL_RADIUS, _SCHOOL_RADIUS),
            _SCHOOL_CENTER.y + rng.uniform(-_SCHOOL_RADIUS, _SCHOOL_RADIUS),
        )

    def uniform_point() -> Point:
        return Point(rng.uniform(0.0, region_size), rng.uniform(0.0, region_size))

    half = num_requests // 2
    messages: List[UpdateMessage] = []
    for index in range(half):
        if rng.random() < hot_fraction:
            object_id = format_object_id(rng.randrange(cohort))
            location = hot_point()
        else:
            object_id = format_object_id(rng.randrange(num_objects))
            location = uniform_point()
        messages.append(
            UpdateMessage(
                object_id=object_id,
                location=location,
                velocity=Vector(1.0, 0.5),
                timestamp=float(index) / 10.0,
            )
        )
    queries = [
        NNQuery(
            location=hot_point() if rng.random() < hot_fraction else uniform_point(),
            k=k,
        )
        for _ in range(half)
    ]
    return messages, queries


def rebalance_harness(
    num_objects: int,
    num_servers: int,
    balanced: bool,
    seed: int = 59,
    rebalance_every: int = 4,
    fault_plan: Optional[FaultPlan] = None,
    record_service_times: bool = True,
):
    """A preloaded cluster in one of the two compared modes.

    ``balanced=False`` is the PR 2-4 cluster: tablet routing by static hash
    affinity, no control plane.  ``balanced=True`` attaches a
    :class:`TabletMaster` that rebalances every ``rebalance_every`` batches
    (and applies ``fault_plan`` when given).  Returns
    ``(indexer, cluster, master, load_test)``.
    """
    indexer = uniform_leader_indexer(num_objects, seed=seed)
    cluster = ServerCluster(
        indexer,
        num_servers=num_servers,
        record_service_times=record_service_times,
    )
    master = (
        TabletMaster(cluster, REBALANCE_MASTER_OPTIONS) if balanced else None
    )
    load_test = LoadTest(
        cluster,
        failure_probability=0.0,
        seed=seed,
        master=master,
        rebalance_every=rebalance_every if balanced else 0,
        fault_plan=fault_plan if balanced else None,
    )
    return indexer, cluster, master, load_test


def measure_rebalance(
    hot_fraction: float,
    balanced: bool,
    num_objects: int = 4000,
    num_servers: int = 5,
    num_requests: int = 4000,
    batch_size: int = 256,
    seed: int = 59,
    fault_plan: Optional[FaultPlan] = None,
) -> LoadTestResult:
    """One hot-school run in one cluster mode (simulated numbers only)."""
    _, _, _, load_test = rebalance_harness(
        num_objects, num_servers, balanced, seed=seed, fault_plan=fault_plan
    )
    messages, queries = hot_school_streams(
        num_objects, num_requests, hot_fraction, seed=seed
    )
    return load_test.run_mixed_batches(messages, queries, batch_size=batch_size)


def run_rebalance(
    hot_fractions: Sequence[float] = (0.0, 0.5, 0.9),
    num_objects: int = 4000,
    num_servers: int = 5,
    num_requests: int = 4000,
    batch_size: int = 256,
    seed: int = 59,
) -> FigureResult:
    """Throughput and p99 service time vs skew, static vs master-balanced."""
    result = FigureResult(
        figure_id="rebalance",
        title=(
            "Master-balanced vs static-affinity cluster under hot-school skew"
        ),
        x_label="hot-school request fraction",
        y_label="requests per second (simulated)",
    )
    static_qps: List[float] = []
    master_qps: List[float] = []
    static_p99: List[float] = []
    master_p99: List[float] = []
    migrations: List[float] = []
    replications: List[float] = []
    for fraction in hot_fractions:
        static = measure_rebalance(
            fraction,
            balanced=False,
            num_objects=num_objects,
            num_servers=num_servers,
            num_requests=num_requests,
            batch_size=batch_size,
            seed=seed,
        )
        master = measure_rebalance(
            fraction,
            balanced=True,
            num_objects=num_objects,
            num_servers=num_servers,
            num_requests=num_requests,
            batch_size=batch_size,
            seed=seed,
        )
        static_qps.append(static.qps)
        master_qps.append(master.qps)
        static_p99.append(static.p99_service_time_s * 1e3)
        master_p99.append(master.p99_service_time_s * 1e3)
        migrations.append(float(master.migrations))
        replications.append(float(master.replications))
    fractions = list(hot_fractions)
    result.add_series("static QPS", fractions, static_qps)
    result.add_series("master QPS", fractions, master_qps)
    result.add_series("static p99 ms", fractions, static_p99)
    result.add_series("master p99 ms", fractions, master_p99)
    result.add_series("migrations", fractions, migrations)
    result.add_series("replicas added", fractions, replications)
    if static_qps and master_qps:
        peak = max(
            master / static if static > 0 else 1.0
            for static, master in zip(static_qps, master_qps)
        )
        result.add_note(
            f"{num_servers} servers, {num_requests} mixed requests; the "
            f"master rebalances every 4 batches (migrate hot tablets, "
            f"replicate read-hot ones); peak master/static throughput "
            f"ratio {peak:.2f}x"
        )
    result.add_note(
        "hot-school workload: the skewed fraction of updates moves one 5% "
        "object cohort inside a 80x80 school region and the same fraction "
        "of NN queries centres there; migration costs are priced on the "
        "durability ledger, so per-request service times stay comparable"
    )
    return result

"""Crash-recovery experiment: recovery time and write amplification vs
memtable size.

The LSM storage engine (PR 4) trades durability work for recovery speed
through one knob — the memtable flush threshold:

* a **small memtable** flushes often, so the commit log stays short and a
  crashed tablet server replays few records, but every flush (and the
  compactions it triggers) rewrites rows into SSTable runs, inflating write
  amplification;
* a **large memtable** keeps write amplification near the log-only floor of
  1.0 but leaves a long log tail to replay after a crash.

This harness drives the headline batched update workload through a server
cluster for each swept memtable size, crashes the cluster
(:meth:`~repro.server.cluster.ServerCluster.crash_and_recover`), and
reports simulated recovery time, log records replayed, SSTable runs
re-opened and the worst per-tablet write amplification.  It also verifies —
per point — that recovery was lossless: tablet boundaries, row keys and a
sample of NN query results must be bit-identical to the pre-crash state
(the same invariant the recovery property tests enforce).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.bigtable.tablet import TabletOptions
from repro.core.moist import MoistIndexer
from repro.errors import ReproError
from repro.experiments.common import uniform_leader_indexer
from repro.experiments.report import FigureResult
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.server.cluster import ServerCluster
from repro.workload.queries import NNQueryWorkload


def _update_stream(
    num_objects: int, num_updates: int, region_size: float, seed: int
) -> List[UpdateMessage]:
    """A deterministic stream of location updates over known objects."""
    rng = random.Random(seed)
    return [
        UpdateMessage(
            object_id=format_object_id(rng.randrange(num_objects)),
            location=Point(
                rng.uniform(0.0, region_size), rng.uniform(0.0, region_size)
            ),
            velocity=Vector(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)),
            timestamp=float(index) / 10.0,
        )
        for index in range(num_updates)
    ]


def _state_signature(indexer: MoistIndexer) -> Tuple:
    """Tablet boundaries and row keys of every table (bit-compare helper)."""
    emulator = indexer.emulator
    signature = []
    for name in emulator.table_names():
        table = emulator.table(name)
        signature.append(
            (
                name,
                tuple(
                    (tablet.tablet_id, tablet.start_key, tablet.row_count)
                    for tablet in table.tablets()
                ),
                tuple(table.all_keys()),
            )
        )
    return tuple(signature)


def _nn_signature(indexer: MoistIndexer, queries) -> Tuple:
    """NN results (ids and distances) for a fixed query sample."""
    out = []
    for query in queries:
        for neighbor in indexer.nearest_neighbors(
            query.location, query.k, range_limit=query.range_limit
        ):
            out.append((neighbor.object_id, round(neighbor.distance, 12)))
    return tuple(out)


def run_recovery(
    memtable_sizes: Sequence[Optional[int]] = (256, 512, 1024, None),
    num_objects: int = 3000,
    num_updates: int = 4000,
    num_servers: int = 5,
    num_queries: int = 40,
    batch_size: int = 256,
    seed: int = 59,
) -> FigureResult:
    """Recovery time / write amplification vs memtable flush threshold.

    ``None`` in ``memtable_sizes`` means "never flush" (the engine default):
    recovery replays the entire commit log — the x axis plots it as
    ``num_updates`` (an effectively unbounded memtable flushes at most once
    per workload anyway).
    """
    result = FigureResult(
        figure_id="recovery",
        title="Crash recovery time and write amplification vs memtable size",
        x_label="memtable flush threshold (rows)",
        y_label="recovery time (simulated ms)",
    )
    xs: List[float] = []
    recovery_ms: List[float] = []
    replayed: List[float] = []
    runs_opened: List[float] = []
    max_amplification: List[float] = []
    messages = _update_stream(num_objects, num_updates, 1000.0, seed + 1)
    for size in memtable_sizes:
        options = TabletOptions(memtable_flush_rows=size)
        indexer = uniform_leader_indexer(
            num_objects, seed=seed, tablet_options=options
        )
        cluster = ServerCluster(indexer, num_servers=num_servers)
        for offset in range(0, len(messages), batch_size):
            cluster.submit_update_batch(messages[offset : offset + batch_size])
        queries = NNQueryWorkload(indexer.config.world, k=10, seed=seed + 2).batch(
            num_queries
        )
        state_before = _state_signature(indexer)
        nn_before = _nn_signature(indexer, queries)
        report = cluster.crash_and_recover()
        if _state_signature(indexer) != state_before:
            raise ReproError("recovery lost table state")  # pragma: no cover
        if _nn_signature(indexer, queries) != nn_before:
            raise ReproError("recovery changed NN results")  # pragma: no cover
        tablet_amplifications = [
            stats.write_amplification for stats in indexer.tablet_stats()
        ]
        xs.append(float(size) if size is not None else float(num_updates))
        recovery_ms.append(report.simulated_seconds * 1e3)
        replayed.append(float(report.log_records_replayed))
        runs_opened.append(float(report.runs_opened))
        max_amplification.append(max(tablet_amplifications))
    result.add_series("recovery ms", xs, recovery_ms)
    result.add_series("log records replayed", xs, replayed)
    result.add_series("runs opened", xs, runs_opened)
    result.add_series("max tablet write amplification", xs, max_amplification)
    result.add_note(
        f"{num_updates} batched updates over {num_objects} objects on "
        f"{num_servers} servers; each point crashes every tablet server and "
        f"replays commit logs over SSTable runs; recovery verified "
        f"bit-identical (boundaries, keys, {num_queries} NN queries)"
    )
    result.add_note(
        "rightmost point = flushing disabled (engine default): longest "
        "replay, write amplification 1.0 (log only)"
    )
    return result

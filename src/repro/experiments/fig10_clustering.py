"""Figure 10: per-clustering latency and its read/compute/write breakdown.

* 10(a) — latency vs the number of *pre*-clustering leaders with a fixed
  number of post-clustering leaders (1k in the paper).
* 10(b) — latency vs the number of *post*-clustering leaders with a fixed
  number of pre-clustering leaders (10k in the paper).

The experiment constructs a synthetic leader population directly: leaders
are placed inside one clustering cell and assigned velocities drawn from
``post`` distinct velocity hexagons, so the clustering pass collapses the
``pre`` leaders into exactly ``post`` schools.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

from repro.core.clustering import ClusteringReport
from repro.core.config import MoistConfig
from repro.core.moist import MoistIndexer
from repro.errors import ReproError
from repro.experiments.report import FigureResult
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.model import UpdateMessage, format_object_id
from repro.spatial.cell import CellId


def _build_leader_population(
    pre_leaders: int,
    post_leaders: int,
    seed: int = 13,
) -> Tuple[MoistIndexer, CellId]:
    """An indexer whose spatial index holds ``pre_leaders`` leaders that will
    merge into ``post_leaders`` schools, all inside one clustering cell."""
    if post_leaders <= 0 or pre_leaders <= 0:
        raise ReproError("leader counts must be positive")
    if post_leaders > pre_leaders:
        raise ReproError("post_leaders cannot exceed pre_leaders")
    config = MoistConfig(
        world=BoundingBox(0.0, 0.0, 1000.0, 1000.0),
        storage_level=12,
        clustering_cell_level=3,
        velocity_threshold=1.0,
    )
    indexer = MoistIndexer(config)
    rng = random.Random(seed)
    clustering_cell = CellId.from_point(
        Point(100.0, 100.0), config.clustering_cell_level, config.world
    )
    cell_box = clustering_cell.to_box(config.world)
    # Velocity groups: one representative velocity per target school, spread
    # far enough apart that distinct groups never share a hexagon.
    group_velocities = [
        Vector(3.0 * group, 0.0) for group in range(post_leaders)
    ]
    for index in range(pre_leaders):
        location = Point(
            rng.uniform(cell_box.min_x, cell_box.max_x),
            rng.uniform(cell_box.min_y, cell_box.max_y),
        )
        velocity = group_velocities[index % post_leaders]
        indexer.update(
            UpdateMessage(
                object_id=format_object_id(index),
                location=location,
                velocity=velocity,
                timestamp=0.0,
            )
        )
    indexer.emulator.reset_counters()
    return indexer, clustering_cell


def measure_clustering_latency(
    pre_leaders: int, post_leaders: int, seed: int = 13
) -> ClusteringReport:
    """Run one clustering pass over the synthetic population and report it."""
    indexer, clustering_cell = _build_leader_population(
        pre_leaders, post_leaders, seed=seed
    )
    return indexer.clusterer.cluster_cell(clustering_cell, now=1.0)


def run_fig10a(
    pre_leader_counts: Sequence[int] = (500, 1000, 2000, 4000),
    post_leaders: int = 100,
    seed: int = 13,
) -> FigureResult:
    """Clustering latency vs #pre-clustering leaders (fixed post count)."""
    result = FigureResult(
        figure_id="fig10a",
        title="Per-clustering latency vs pre-clustering leaders",
        x_label="pre-clustering leaders",
        y_label="seconds (simulated)",
    )
    reads, computes, writes, totals = [], [], [], []
    for pre in pre_leader_counts:
        report = measure_clustering_latency(pre, post_leaders, seed=seed)
        reads.append(report.read_seconds)
        computes.append(report.compute_seconds)
        writes.append(report.write_seconds)
        totals.append(report.total_seconds)
    result.add_series("read time", list(pre_leader_counts), reads)
    result.add_series("compute time", list(pre_leader_counts), computes)
    result.add_series("write time", list(pre_leader_counts), writes)
    result.add_series("total", list(pre_leader_counts), totals)
    result.add_note(
        f"post-clustering leaders fixed at {post_leaders}; the paper fixes 1k "
        "and observes latency growth dominated by read time"
    )
    return result


def run_fig10b(
    post_leader_counts: Sequence[int] = (50, 100, 500, 1000, 2000),
    pre_leaders: int = 4000,
    seed: int = 13,
) -> FigureResult:
    """Clustering latency vs #post-clustering leaders (fixed pre count)."""
    result = FigureResult(
        figure_id="fig10b",
        title="Per-clustering latency vs post-clustering leaders",
        x_label="post-clustering leaders",
        y_label="seconds (simulated)",
    )
    reads, computes, writes, totals = [], [], [], []
    for post in post_leader_counts:
        report = measure_clustering_latency(pre_leaders, post, seed=seed)
        reads.append(report.read_seconds)
        computes.append(report.compute_seconds)
        writes.append(report.write_seconds)
        totals.append(report.total_seconds)
    result.add_series("read time", list(post_leader_counts), reads)
    result.add_series("compute time", list(post_leader_counts), computes)
    result.add_series("write time", list(post_leader_counts), writes)
    result.add_series("total", list(post_leader_counts), totals)
    result.add_note(
        f"pre-clustering leaders fixed at {pre_leaders}; the paper fixes 10k "
        "and observes latency largely independent of the reduction ratio"
    )
    return result

"""Result containers and plain-text reporting for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.bigtable.scan import TabletCacheStats
from repro.bigtable.tablet import TabletStats
from repro.errors import ReproError


@dataclass(frozen=True)
class Series:
    """One plotted line: a label plus aligned x/y value sequences."""

    label: str
    xs: Sequence[float]
    ys: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ReproError(
                f"series {self.label!r} has {len(self.xs)} x values but {len(self.ys)} y values"
            )

    def y_at(self, x: float) -> float:
        """The y value recorded for an exact x (raises when absent)."""
        for candidate_x, candidate_y in zip(self.xs, self.ys):
            if candidate_x == x:
                return candidate_y
        raise ReproError(f"series {self.label!r} has no point at x={x}")


@dataclass
class FigureResult:
    """All series of one reproduced figure plus free-form notes."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, label: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        """Append one series."""
        self.series.append(Series(label=label, xs=list(xs), ys=list(ys)))

    def add_note(self, note: str) -> None:
        """Append a free-form note (assumptions, scale-downs, caveats)."""
        self.notes.append(note)

    def get_series(self, label: str) -> Series:
        """Series with the given label (raises when absent)."""
        for series in self.series:
            if series.label == label:
                return series
        raise ReproError(f"figure {self.figure_id} has no series labelled {label!r}")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_table(self, float_format: str = "{:.3f}") -> str:
        """Render the figure as an aligned plain-text table.

        The x values of the first series define the rows; every series
        contributes one column (series are expected to share x values, which
        all the bundled experiments do).
        """
        if not self.series:
            return f"[{self.figure_id}] {self.title}\n(no data)\n"
        header = [self.x_label] + [series.label for series in self.series]
        rows: List[List[str]] = []
        base_xs = list(self.series[0].xs)
        for index, x in enumerate(base_xs):
            row = [_format_value(x, float_format)]
            for series in self.series:
                if index < len(series.ys):
                    row.append(_format_value(series.ys[index], float_format))
                else:
                    row.append("-")
            rows.append(row)
        lines = [f"[{self.figure_id}] {self.title}"]
        lines.extend(_render_aligned(header, rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def print(self) -> None:  # pragma: no cover - console convenience
        """Print the table to stdout."""
        print(self.to_table())


def _render_aligned(header: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    """Render a header, separator and rows as width-aligned text lines."""
    widths = [
        max([len(header[col])] + [len(row[col]) for row in rows])
        for col in range(len(header))
    ]
    lines = ["  ".join(name.ljust(widths[i]) for i, name in enumerate(header))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return lines


def tablet_load_report(stats: Sequence[TabletStats]) -> str:
    """Render per-tablet cost accounting as an aligned plain-text table.

    One row per tablet (table, key range, rows, storage calls, simulated
    milliseconds, share of total time) followed by a skew summary: the
    hottest tablet's share and the max/mean imbalance ratio.  This is the
    cluster-level view the scale-out experiment reports alongside QPS.
    """
    if not stats:
        return "(no tablets)\n"
    total_seconds = sum(entry.simulated_seconds for entry in stats)
    header = [
        "table",
        "tablet",
        "start",
        "end",
        "rows",
        "calls",
        "ms",
        "share",
        "runs",
        "log",
        "wamp",
    ]
    rows: List[List[str]] = []
    for entry in stats:
        share = entry.simulated_seconds / total_seconds if total_seconds > 0 else 0.0
        rows.append(
            [
                entry.table,
                entry.tablet_id.rsplit("/", 1)[-1],
                entry.start_key or "-inf",
                entry.end_key if entry.end_key is not None else "+inf",
                str(entry.row_count),
                str(entry.op_calls),
                f"{entry.simulated_seconds * 1e3:.3f}",
                f"{share:.1%}",
                str(entry.run_count),
                str(entry.log_records),
                f"{entry.write_amplification:.2f}x",
            ]
        )
    lines = ["per-tablet storage accounting"]
    lines.extend(_render_aligned(header, rows))
    seconds = [entry.simulated_seconds for entry in stats]
    hottest = max(seconds)
    mean_seconds = total_seconds / len(stats)
    hot_share = hottest / total_seconds if total_seconds > 0 else 1.0
    imbalance = hottest / mean_seconds if mean_seconds > 0 else 1.0
    lines.append(
        f"skew: hottest tablet serves {hot_share:.1%} of storage time "
        f"({len(stats)} tablets, max/mean imbalance {imbalance:.2f}x)"
    )
    durability_ms = sum(entry.durability_seconds for entry in stats) * 1e3
    worst_amplification = max(entry.write_amplification for entry in stats)
    lines.append(
        f"durability: {durability_ms:.3f} ms of log/flush/compaction work "
        f"(additive); worst tablet write amplification "
        f"{worst_amplification:.2f}x"
    )
    return "\n".join(lines) + "\n"


def cache_hit_report(stats: Sequence[TabletCacheStats]) -> str:
    """Render per-tablet block-cache accounting as an aligned text table.

    One row per tablet ever probed (table, tablet, block lookups, hits,
    misses, hit rate) plus an overall summary line — the read-path
    companion of :func:`tablet_load_report`, reported by the mixed
    read/write experiment.
    """
    if not stats:
        return "(no block-cache activity)\n"
    header = ["table", "tablet", "lookups", "hits", "misses", "hit rate"]
    rows: List[List[str]] = []
    for entry in stats:
        rows.append(
            [
                entry.table,
                entry.tablet_id.rsplit("/", 1)[-1],
                str(entry.lookups),
                str(entry.hits),
                str(entry.misses),
                f"{entry.hit_rate:.1%}",
            ]
        )
    lines = ["per-tablet block-cache accounting"]
    lines.extend(_render_aligned(header, rows))
    hits = sum(entry.hits for entry in stats)
    lookups = sum(entry.lookups for entry in stats)
    overall = hits / lookups if lookups > 0 else 0.0
    lines.append(
        f"overall: {hits}/{lookups} block lookups hit ({overall:.1%}) "
        f"across {len(stats)} tablets"
    )
    return "\n".join(lines) + "\n"


def _format_value(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return float_format.format(value)
    return str(value)

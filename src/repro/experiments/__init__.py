"""Experiment harnesses: one module per figure of the paper's evaluation.

Each ``run_*`` function returns a :class:`~repro.experiments.report.FigureResult`
holding the series the corresponding paper figure plots, so the benchmark
suite, the examples and EXPERIMENTS.md all consume the same code path.

| Module                    | Paper figure | What it reproduces                          |
|---------------------------|--------------|---------------------------------------------|
| ``fig09_schools``         | Fig. 9(a-c)  | #object schools vs ε, population and time    |
| ``fig10_clustering``      | Fig. 10(a,b) | per-clustering latency breakdown             |
| ``fig11_cluster_frequency``| Fig. 11     | NN QPS vs clustering frequency (A, B)        |
| ``fig12_flag``            | Fig. 12(a-d) | FLAG vs fixed NN levels (range & density)    |
| ``fig13_qps``             | Fig. 13(a-c) | update QPS: single server & 5/10-server      |
| ``headline``              | Sec. 1 & 4   | MOIST vs Bx-tree update throughput, shed %   |
| ``ablations``             | DESIGN.md §5 | Hilbert vs Z-curve, hex vs square bins, FLAG cache, PPP placement |
"""

from repro.experiments.report import FigureResult, Series

__all__ = ["FigureResult", "Series"]

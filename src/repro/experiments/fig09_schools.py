"""Figure 9: impact of parameters on the average number of object schools.

* 9(a) — average #OSes vs the deviation threshold ε, for three speed
  distributions (the paper plots three curves for different speed settings).
* 9(b) — average #OSes vs the total number of objects.
* 9(c) — #OSes over time, showing the variance stays bounded with a
  clustering interval of Tc = 10 s.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.moist import MoistIndexer
from repro.experiments.common import (
    dense_road_config,
    drive_indexer,
    mean,
    school_config,
)
from repro.experiments.report import FigureResult
from repro.workload.generator import RoadNetworkWorkload

#: The three speed distributions plotted in Figure 9(a): pedestrians only,
#: an even mix, and cars only.
SPEED_DISTRIBUTIONS = (
    ("pedestrians (0-1 u/s)", 1.0),
    ("mixed (50% cars)", 0.5),
    ("cars (1-2 u/s)", 0.0),
)


def average_school_count(
    num_objects: int,
    deviation_threshold: float,
    pedestrian_fraction: float = 0.5,
    duration_s: float = 60.0,
    warmup_s: float = 20.0,
    seed: int = 3,
    clustering_interval_s: float = 10.0,
) -> float:
    """Average number of schools after warm-up for one configuration."""
    config = school_config(
        deviation_threshold=deviation_threshold,
        clustering_interval_s=clustering_interval_s,
    )
    workload_config = replace(
        dense_road_config(num_objects, seed=seed),
        pedestrian_fraction=pedestrian_fraction,
    )
    indexer = MoistIndexer(config)
    workload = RoadNetworkWorkload(workload_config)
    samples = drive_indexer(indexer, workload, duration_s)
    settled = [count for time_s, count in samples if time_s >= warmup_s]
    return mean(settled)


def run_fig09a(
    epsilons: Sequence[float] = (1.0, 5.0, 10.0, 20.0, 40.0),
    num_objects: int = 100,
    duration_s: float = 60.0,
    seed: int = 3,
) -> FigureResult:
    """Average #OSes vs deviation threshold ε for three speed distributions."""
    result = FigureResult(
        figure_id="fig9a",
        title="Average number of object schools vs deviation threshold",
        x_label="epsilon",
        y_label="avg #OS",
    )
    for label, pedestrian_fraction in SPEED_DISTRIBUTIONS:
        ys = [
            average_school_count(
                num_objects,
                epsilon,
                pedestrian_fraction=pedestrian_fraction,
                duration_s=duration_s,
                seed=seed,
            )
            for epsilon in epsilons
        ]
        result.add_series(label, list(epsilons), ys)
    result.add_note(
        f"{num_objects} objects, 1 update/s, dense road map (see EXPERIMENTS.md E-9a)"
    )
    return result


def run_fig09b(
    object_counts: Sequence[int] = (100, 200, 400, 700, 1000),
    deviation_threshold: float = 20.0,
    duration_s: float = 60.0,
    seed: int = 3,
) -> FigureResult:
    """Average #OSes (and shed ratio) vs the total number of objects."""
    result = FigureResult(
        figure_id="fig9b",
        title="Average number of object schools vs number of objects",
        x_label="objects",
        y_label="avg #OS",
    )
    school_counts = []
    shed_ratios = []
    for count in object_counts:
        config = school_config(deviation_threshold=deviation_threshold)
        indexer = MoistIndexer(config)
        workload = RoadNetworkWorkload(dense_road_config(count, seed=seed))
        samples = drive_indexer(indexer, workload, duration_s)
        settled = [value for time_s, value in samples if time_s >= duration_s / 3]
        school_counts.append(mean(settled))
        shed_ratios.append(indexer.shed_ratio())
    result.add_series("avg #OS", list(object_counts), school_counts)
    result.add_series("shed ratio", list(object_counts), shed_ratios)
    result.add_note(
        "the paper reports ~90% shed at 1,000 objects; the shed-ratio series "
        "tracks how close this configuration gets"
    )
    return result


def run_fig09c(
    duration_s: float = 120.0,
    num_objects: int = 100,
    clustering_interval_s: float = 10.0,
    seed: int = 3,
) -> FigureResult:
    """Number of object schools over time (variance check, Tc = 10 s)."""
    config = school_config(clustering_interval_s=clustering_interval_s)
    indexer = MoistIndexer(config)
    workload = RoadNetworkWorkload(dense_road_config(num_objects, seed=seed))
    samples = drive_indexer(indexer, workload, duration_s)
    result = FigureResult(
        figure_id="fig9c",
        title="Number of object schools over time",
        x_label="time_s",
        y_label="#OS",
    )
    result.add_series(
        "#OS", [time_s for time_s, _ in samples], [count for _, count in samples]
    )
    settled = [count for time_s, count in samples if time_s >= duration_s / 3]
    if settled:
        spread = max(settled) - min(settled)
        result.add_note(
            f"post-warmup spread of #OS = {spread} (paper: variance stays within "
            f"~10 for Tc = {clustering_interval_s:.0f}s)"
        )
    return result

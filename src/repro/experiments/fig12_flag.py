"""Figure 12: FLAG versus fixed NN levels.

* 12(a)/(b) — NN QPS and per-query cost against the search range limit, for
  FLAG and two fixed search levels (the paper uses S2 levels 19 and 20, i.e.
  8 m and 4 m cells on a 1 km map; our equivalents are the levels whose cells
  are 8 and 4 units wide on the 1,000-unit world).
* 12(c)/(d) — NN QPS and per-query cost against object density (1k-100k
  objects uniformly placed in the region) at a 10 m search range.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from repro.core.moist import MoistIndexer
from repro.experiments.common import uniform_leader_indexer
from repro.experiments.report import FigureResult
from repro.geometry.point import Point

#: World edge length in metres for these experiments (1 km² map).
REGION_SIZE = 1000.0


def fixed_level_for_cell_size(cell_size_m: float, storage_level: int) -> int:
    """Level whose cells are ``cell_size_m`` wide on the 1 km world."""
    level = int(round(math.log2(REGION_SIZE / cell_size_m)))
    return max(1, min(level, storage_level))


def _cold_start(indexer: MoistIndexer) -> None:
    """Reset warm query-path state so configurations measure independently.

    Every fig12 configuration replays the *same* query locations against
    the same indexer.  The block cache (PR 2) and FLAG's level cache
    persist across configurations, so whichever configuration ran first
    paid the cold misses and warmed the blocks for its competitors — a
    measurement-order bias that had ``test_fig12_density`` failing since
    PR 2 (FLAG always ran first).  Dropping the warm state before each
    measurement restores a fair, cold comparison.
    """
    clear_caches = getattr(indexer.emulator, "clear_block_caches", None)
    if callable(clear_caches):
        clear_caches()
    if indexer.flag is not None:
        indexer.flag.invalidate()


def measure_nn_query_cost(
    indexer: MoistIndexer,
    k: int,
    range_limit: float,
    nn_level: Optional[int],
    use_flag: bool,
    num_queries: int = 25,
    seed: int = 41,
) -> float:
    """Mean simulated seconds per NN query for one configuration."""
    rng = random.Random(seed)
    before = indexer.emulator.counter.simulated_seconds
    for _ in range(num_queries):
        location = Point(
            rng.uniform(0.0, REGION_SIZE), rng.uniform(0.0, REGION_SIZE)
        )
        indexer.nearest_neighbors(
            location,
            k,
            range_limit=range_limit,
            nn_level=nn_level,
            use_flag=use_flag,
        )
    elapsed = indexer.emulator.counter.simulated_seconds - before
    return elapsed / num_queries


def run_fig12_range(
    range_limits: Sequence[float] = (20.0, 40.0, 60.0, 80.0, 100.0),
    num_objects: int = 20000,
    k: int = 10,
    storage_level: int = 12,
    seed: int = 41,
) -> FigureResult:
    """NN QPS / cost vs search-range limit for FLAG and fixed levels."""
    indexer = uniform_leader_indexer(
        num_objects, region_size=REGION_SIZE, storage_level=storage_level, seed=seed
    )
    level_8m = fixed_level_for_cell_size(8.0, storage_level)
    level_4m = fixed_level_for_cell_size(4.0, storage_level)
    configurations = (
        ("FLAG", None, True),
        (f"fixed level {level_8m} (8m cells)", level_8m, False),
        (f"fixed level {level_4m} (4m cells)", level_4m, False),
    )
    result = FigureResult(
        figure_id="fig12ab",
        title="NN QPS and cost vs search range limit",
        x_label="search range limit (m)",
        y_label="NN QPS (simulated)",
    )
    for label, nn_level, use_flag in configurations:
        qps_values = []
        cost_values = []
        for range_limit in range_limits:
            _cold_start(indexer)
            cost = measure_nn_query_cost(
                indexer, k, range_limit, nn_level, use_flag, seed=seed
            )
            cost_values.append(cost)
            qps_values.append(1.0 / cost if cost > 0 else 0.0)
        result.add_series(f"{label} QPS", list(range_limits), qps_values)
        result.add_series(f"{label} cost_s", list(range_limits), cost_values)
    result.add_note(
        f"{num_objects} static objects uniform in 1 km^2; k={k}; single server"
    )
    return result


def run_fig12_density(
    object_counts: Sequence[int] = (1000, 10000, 50000, 100000),
    range_limit: float = 10.0,
    k: int = 10,
    storage_level: int = 12,
    seed: int = 41,
) -> FigureResult:
    """NN QPS / cost vs object density at a fixed 10 m search range."""
    level_8m = fixed_level_for_cell_size(8.0, storage_level)
    level_4m = fixed_level_for_cell_size(4.0, storage_level)
    configurations = (
        ("FLAG", None, True),
        (f"fixed level {level_8m} (8m cells)", level_8m, False),
        (f"fixed level {level_4m} (4m cells)", level_4m, False),
    )
    result = FigureResult(
        figure_id="fig12cd",
        title="NN QPS and cost vs object density",
        x_label="objects in 1 km^2",
        y_label="NN QPS (simulated)",
    )
    costs = {label: [] for label, _, _ in configurations}
    for count in object_counts:
        indexer = uniform_leader_indexer(
            count, region_size=REGION_SIZE, storage_level=storage_level, seed=seed
        )
        for label, nn_level, use_flag in configurations:
            _cold_start(indexer)
            costs[label].append(
                measure_nn_query_cost(
                    indexer, k, range_limit, nn_level, use_flag, seed=seed
                )
            )
    for label, _, _ in configurations:
        cost_values = costs[label]
        qps_values = [1.0 / cost if cost > 0 else 0.0 for cost in cost_values]
        result.add_series(f"{label} QPS", list(object_counts), qps_values)
        result.add_series(f"{label} cost_s", list(object_counts), cost_values)
    result.add_note(
        f"10 m search range, k={k}; FLAG adapts its level as density grows"
    )
    return result

"""Immutable 2-D point."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.geometry.vector import Vector


@dataclass(frozen=True, order=True)
class Point:
    """A location on the plane.

    Points are immutable so they can be stored directly inside table records
    and used as dictionary keys when deduplicating query results.
    """

    __slots__ = ("x", "y")

    x: float
    y: float

    def __reduce__(self):
        # Frozen + __slots__ defeats default pickling (state restoration
        # would need setattr); reconstruct through the constructor instead.
        # Needed to ship points across the multiprocess RPC boundary.
        return (Point, (self.x, self.y))

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt for comparisons)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def displaced(self, vector: "Vector") -> "Point":
        """Return the point reached by applying ``vector`` to this point."""
        return Point(self.x + vector.dx, self.y + vector.dy)

    def displacement_to(self, other: "Point") -> "Vector":
        """Return the vector that moves this point onto ``other``."""
        from repro.geometry.vector import Vector

        return Vector(other.x - self.x, other.y - self.y)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by raw deltas."""
        return Point(self.x + dx, self.y + dy)

    def clamped(self, min_x: float, min_y: float, max_x: float, max_y: float) -> "Point":
        """Return a copy clamped to the given inclusive rectangle."""
        return Point(
            min(max(self.x, min_x), max_x),
            min(max(self.y, min_y), max_y),
        )

    def is_finite(self) -> bool:
        """True when both coordinates are finite numbers."""
        return math.isfinite(self.x) and math.isfinite(self.y)

    @staticmethod
    def origin() -> "Point":
        """The point ``(0, 0)``."""
        return Point(0.0, 0.0)

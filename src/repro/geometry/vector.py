"""Immutable 2-D vector used for velocities and leader->follower displacements."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Vector:
    """A displacement or velocity on the plane.

    The Affiliation Table stores, for each follower, the displacement vector
    from its leader (Section 3.1.1); velocities in update messages are also
    vectors.  Instances are immutable and hashable.
    """

    __slots__ = ("dx", "dy")

    dx: float
    dy: float

    def __reduce__(self):
        # Frozen + __slots__ defeats default pickling; reconstruct through
        # the constructor (multiprocess RPC ships vectors inside messages).
        return (Vector, (self.dx, self.dy))

    def __iter__(self) -> Iterator[float]:
        yield self.dx
        yield self.dy

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(dx, dy)``."""
        return (self.dx, self.dy)

    def __add__(self, other: "Vector") -> "Vector":
        return Vector(self.dx + other.dx, self.dy + other.dy)

    def __sub__(self, other: "Vector") -> "Vector":
        return Vector(self.dx - other.dx, self.dy - other.dy)

    def __neg__(self) -> "Vector":
        return Vector(-self.dx, -self.dy)

    def __mul__(self, scalar: float) -> "Vector":
        return Vector(self.dx * scalar, self.dy * scalar)

    __rmul__ = __mul__

    def magnitude(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.dx, self.dy)

    def squared_magnitude(self) -> float:
        """Squared length (cheap comparison helper)."""
        return self.dx * self.dx + self.dy * self.dy

    def distance_to(self, other: "Vector") -> float:
        """Length of the difference vector.

        This is the similarity measure used by school clustering: two
        velocities belong to the same school candidate when the magnitude of
        their difference is below the clustering threshold (Section 3.3.2).
        """
        return math.hypot(self.dx - other.dx, self.dy - other.dy)

    def dot(self, other: "Vector") -> float:
        """Dot product."""
        return self.dx * other.dx + self.dy * other.dy

    def scaled(self, factor: float) -> "Vector":
        """Return a copy scaled by ``factor``."""
        return Vector(self.dx * factor, self.dy * factor)

    def normalised(self) -> "Vector":
        """Return a unit vector in the same direction (zero stays zero)."""
        mag = self.magnitude()
        if mag == 0.0:
            return Vector(0.0, 0.0)
        return Vector(self.dx / mag, self.dy / mag)

    def rotated(self, radians: float) -> "Vector":
        """Return a copy rotated counter-clockwise by ``radians``."""
        cos_a = math.cos(radians)
        sin_a = math.sin(radians)
        return Vector(
            self.dx * cos_a - self.dy * sin_a,
            self.dx * sin_a + self.dy * cos_a,
        )

    def heading(self) -> float:
        """Angle of the vector in radians, in ``[-pi, pi]``."""
        return math.atan2(self.dy, self.dx)

    def is_finite(self) -> bool:
        """True when both components are finite."""
        return math.isfinite(self.dx) and math.isfinite(self.dy)

    @staticmethod
    def zero() -> "Vector":
        """The zero vector."""
        return Vector(0.0, 0.0)

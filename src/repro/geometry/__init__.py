"""Planar geometry primitives used by the spatial indexer and MOIST core.

The paper works on a normalised ``[0, 1]^2`` space (Section 3.2.1) and on a
synthetic ``1,000 x 1,000`` unit map (Section 4.1).  The primitives here are
deliberately lightweight: immutable points/vectors with the handful of
operations the indexer needs (displacement, distance, interpolation) plus an
axis-aligned bounding box used for cells and map regions.
"""

from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.geometry.bbox import BoundingBox
from repro.geometry.distance import (
    euclidean_distance,
    squared_distance,
    point_to_box_distance,
)

__all__ = [
    "Point",
    "Vector",
    "BoundingBox",
    "euclidean_distance",
    "squared_distance",
    "point_to_box_distance",
]

"""Axis-aligned bounding box."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SpatialError
from repro.geometry.point import Point


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Used to describe spatial cells, road-network buildings, and query
    regions.  Construction validates that the box is non-degenerate in the
    sense ``min <= max`` (zero-area boxes are permitted: a cell at the
    maximum level may collapse to a point in a discretised space).
    """

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __reduce__(self):
        # Frozen + __slots__ defeats default pickling; reconstruct through
        # the constructor (query regions cross the multiprocess RPC wire).
        return (BoundingBox, (self.min_x, self.min_y, self.max_x, self.max_y))

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise SpatialError(
                f"invalid bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @staticmethod
    def from_points(points: Iterable[Point]) -> "BoundingBox":
        """Smallest box containing every point in ``points``.

        Raises :class:`SpatialError` when ``points`` is empty.
        """
        xs = []
        ys = []
        for point in points:
            xs.append(point.x)
            ys.append(point.y)
        if not xs:
            raise SpatialError("cannot build a bounding box from zero points")
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def from_center(center: Point, half_width: float, half_height: float) -> "BoundingBox":
        """Box centred on ``center`` with the given half extents."""
        return BoundingBox(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    def center(self) -> Point:
        """Centre point of the box."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def corners(self) -> Iterator[Point]:
        """Yield the four corner points counter-clockwise from the minimum."""
        yield Point(self.min_x, self.min_y)
        yield Point(self.max_x, self.min_y)
        yield Point(self.max_x, self.max_y)
        yield Point(self.min_x, self.max_y)

    def contains_point(self, point: Point) -> bool:
        """True when ``point`` is inside or on the border of the box."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """True when ``other`` lies entirely within this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two boxes share at least a border point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox":
        """The overlapping region of the two boxes.

        Raises :class:`SpatialError` when the boxes do not intersect.
        """
        if not self.intersects(other):
            raise SpatialError("bounding boxes do not intersect")
        return BoundingBox(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def clamp_point(self, point: Point) -> Point:
        """Closest point inside the box to ``point``."""
        return point.clamped(self.min_x, self.min_y, self.max_x, self.max_y)

    def distance_to_point(self, point: Point) -> float:
        """Shortest distance from the box to ``point`` (0 when inside).

        This is the cell-to-query-location distance used by the nearest
        neighbour search (Algorithm 2): the distance from a cell to ``loc``
        lower-bounds the distance of every object stored in that cell.
        """
        return self.clamp_point(point).distance_to(point)

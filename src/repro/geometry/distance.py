"""Free-standing distance helpers.

Most code uses the methods on :class:`~repro.geometry.point.Point` and
:class:`~repro.geometry.bbox.BoundingBox`; these module-level functions exist
for call sites that work on raw coordinate pairs (e.g. the Hilbert-curve code
and the workload generators, which keep coordinates as plain floats for
speed).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point


def euclidean_distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Euclidean distance between two ``(x, y)`` tuples."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def squared_distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Squared Euclidean distance between two ``(x, y)`` tuples."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def point_to_box_distance(point: Point, box: BoundingBox) -> float:
    """Shortest distance from ``point`` to ``box`` (0 when the point is inside)."""
    return box.distance_to_point(point)

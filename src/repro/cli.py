"""Command-line interface: ``python -m repro <command>``.

Four commands cover the common entry points without writing any code:

* ``demo``     — run the quickstart scenario and print its summary;
* ``figures``  — regenerate (scaled-down) evaluation figures;
* ``bench``    — run the wall-clock hot-path benchmarks (``BENCH_*.json``);
* ``info``     — print the library version and the active default config.
"""

from __future__ import annotations

import argparse
from dataclasses import fields
from typing import List, Optional

from repro import MoistConfig, __version__


def _cmd_info(_args: argparse.Namespace) -> int:
    config = MoistConfig()
    print(f"repro (MOIST reproduction) version {__version__}")
    print("default MoistConfig:")
    for field in fields(config):
        print(f"  {field.name} = {getattr(config, field.name)}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.moist import MoistIndexer
    from repro.geometry.bbox import BoundingBox
    from repro.geometry.point import Point
    from repro.workload.generator import RoadNetworkWorkload, WorkloadConfig

    map_size = 300.0
    config = MoistConfig(
        world=BoundingBox(0.0, 0.0, map_size, map_size),
        storage_level=12,
        clustering_cell_level=1,
        deviation_threshold=20.0,
    )
    indexer = MoistIndexer(config)
    workload = RoadNetworkWorkload(
        WorkloadConfig(
            num_objects=args.objects,
            map_size=map_size,
            block_size=30.0,
            min_update_interval_s=1.0,
            max_update_interval_s=1.0,
            seed=args.seed,
        )
    )
    for batch in workload.run(duration_s=args.duration, step_s=1.0):
        for message in batch:
            indexer.update(message)
        indexer.run_due_clustering(now=workload.now)
    print(f"objects        : {indexer.object_count}")
    print(f"object schools : {indexer.school_count}")
    print(f"updates        : {indexer.update_stats.total}")
    print(f"shed ratio     : {indexer.shed_ratio():.1%}")
    print(f"simulated time : {indexer.simulated_seconds * 1e3:.1f} ms of storage work")
    print(f"tablets        : {indexer.tablet_count()} across the three tables")
    print(f"hot tablet     : {indexer.hot_tablet_share():.1%} of storage time")
    nearest = indexer.nearest_neighbors(Point(map_size / 2, map_size / 2), k=3)
    print("3 nearest objects to the map centre:")
    for neighbor in nearest:
        print(f"  {neighbor.object_id}  distance {neighbor.distance:.1f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        compare_with_baseline,
        format_bench,
        run_bench,
        write_bench,
    )

    worker_counts = tuple(
        int(entry) for entry in args.workers.split(",") if entry.strip()
    )
    payload = run_bench(
        quick=args.quick,
        label=args.label,
        repeats=args.repeats,
        seed=args.seed,
        worker_counts=worker_counts,
    )
    if args.baseline:
        compare_with_baseline(payload, args.baseline)
    # Quick runs get their own default filename so a casual `bench --quick`
    # can never clobber the committed full-profile BENCH_*.json record.
    output = args.output
    if output is None:
        output = (
            f"BENCH_{args.label}.quick.json"
            if args.quick
            else f"BENCH_{args.label}.json"
        )
    print(format_bench(payload))
    if output:
        write_bench(payload, output)
        print(f"wrote {output}")
    return 0


def _mixed_outputs(sweep) -> list:
    """Figure plus the per-tablet cache report captured from the sweep."""
    return [sweep.figure, sweep.cache_report]


def _run_figures_inline(names: List[str]) -> int:
    """Dispatch to the experiment harnesses without importing examples/."""
    from repro.experiments.fig09_schools import run_fig09a, run_fig09b, run_fig09c
    from repro.experiments.fig10_clustering import run_fig10a, run_fig10b
    from repro.experiments.fig11_cluster_frequency import run_fig11
    from repro.experiments.fig12_flag import run_fig12_density, run_fig12_range
    from repro.experiments.fig13_qps import (
        measure_speedup,
        run_fig13a,
        run_fig13d_mixed,
    )
    from repro.experiments.headline import run_headline
    from repro.experiments.mixed import run_mixed_sweep
    from repro.experiments.rebalance import run_rebalance
    from repro.experiments.recovery import run_recovery
    from repro.experiments.scaleout import run_scaleout

    catalogue = {
        "fig09": lambda: [
            run_fig09a(epsilons=(1.0, 10.0, 40.0), num_objects=60, duration_s=30.0),
            run_fig09b(object_counts=(50, 150, 300), duration_s=30.0),
            run_fig09c(duration_s=60.0, num_objects=60),
        ],
        "fig10": lambda: [
            run_fig10a(pre_leader_counts=(200, 500, 1000), post_leaders=50),
            run_fig10b(post_leader_counts=(20, 100, 500), pre_leaders=1000),
        ],
        "fig11": lambda: [
            run_fig11(frequencies_hz=(0.0, 0.05, 0.1, 0.5, 1.0), initial_leaders=200, total_objects=2000)
        ],
        "fig12": lambda: [
            run_fig12_range(range_limits=(20.0, 60.0, 100.0), num_objects=5000),
            run_fig12_density(object_counts=(1000, 10000, 50000)),
        ],
        "fig13": lambda: [
            run_fig13a(object_counts=(5000, 20000), num_updates=3000),
            measure_speedup(num_objects=5000, num_updates=3000),
            run_fig13d_mixed(
                query_fractions=(0.0, 0.5, 1.0), num_objects=5000, num_requests=2000
            ),
        ],
        "headline": lambda: [
            run_headline(num_objects=5000, num_updates=3000, shed_objects=400)
        ],
        "scaleout": lambda: [
            run_scaleout(server_counts=(1, 2, 5), num_objects=5000, num_updates=3000)
        ],
        "mixed": lambda: _mixed_outputs(
            run_mixed_sweep(
                query_fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
                num_objects=5000,
                num_requests=3000,
            )
        ),
        "recovery": lambda: [
            run_recovery(
                memtable_sizes=(256, 512, 1024, None),
                num_objects=3000,
                num_updates=4000,
            )
        ],
        "rebalance": lambda: [
            run_rebalance(
                hot_fractions=(0.0, 0.5, 0.9),
                num_objects=4000,
                num_requests=4000,
            )
        ],
    }
    requested = names or list(catalogue)
    unknown = [name for name in requested if name not in catalogue]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}")
        print(f"available: {', '.join(catalogue)}")
        return 1
    for name in requested:
        print(f"=== {name} ===")
        for figure in catalogue[name]():
            # Harnesses return FigureResults; console reports (per-tablet
            # cache hit rates) come back as preformatted text.
            print(figure.to_table() if hasattr(figure, "to_table") else figure)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MOIST reproduction: demo, figure regeneration and configuration info.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="print version and default configuration")
    info.set_defaults(handler=_cmd_info)

    demo = subparsers.add_parser("demo", help="run a small end-to-end demo")
    demo.add_argument("--objects", type=int, default=200, help="number of moving objects")
    demo.add_argument("--duration", type=float, default=60.0, help="simulated seconds")
    demo.add_argument("--seed", type=int, default=7, help="workload random seed")
    demo.set_defaults(handler=_cmd_demo)

    figures = subparsers.add_parser(
        "figures", help="regenerate scaled-down evaluation figures"
    )
    figures.add_argument(
        "names",
        nargs="*",
        help=(
            "figures to run (fig09 fig10 fig11 fig12 fig13 headline scaleout "
            "mixed recovery rebalance); default: all"
        ),
    )
    figures.set_defaults(handler=lambda args: _run_figures_inline(args.names))

    bench = subparsers.add_parser(
        "bench",
        help="run the wall-clock hot-path benchmarks and emit BENCH_*.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workloads (fewer objects/requests/repeats)",
    )
    bench.add_argument(
        "--output",
        default=None,
        help=(
            "JSON output path (default: BENCH_<label>.json, or "
            "BENCH_<label>.quick.json with --quick; empty string skips writing)"
        ),
    )
    bench.add_argument(
        "--label",
        default="dev",
        help=(
            "label recorded in the payload and used in the default output "
            "filename; the default keeps casual runs (BENCH_dev*.json) from "
            "overwriting committed BENCH_PR*.json trajectory records"
        ),
    )
    bench.add_argument(
        "--baseline",
        default=None,
        help=(
            "path to an earlier bench payload to compare against (adds "
            "baseline_main / speedup_vs_main sections)"
        ),
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="wall-clock repeats per workload (default: profile-dependent)",
    )
    bench.add_argument("--seed", type=int, default=59, help="workload random seed")
    bench.add_argument(
        "--workers",
        default="1,2,4",
        help=(
            "comma-separated worker counts for the scaleout_multiproc "
            "workload (each runs the same seeded stream; results must be "
            "bit-identical, only wall-clock may move)"
        ),
    )
    bench.set_defaults(handler=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

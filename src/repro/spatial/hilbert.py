"""Hilbert space-filling curve encoding.

The paper keys the Spatial Index Table with Hilbert-curve indexes because
Hilbert curves preserve locality slightly better than Z-curves (Section
3.2.1, citing Jensen et al.).  The functions below implement the classical
iterative conversion between a ``2^order x 2^order`` grid coordinate and the
distance ``d`` along the curve.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import SpatialError


def hilbert_index(order: int, x: int, y: int) -> int:
    """Map grid coordinate ``(x, y)`` to its distance along the Hilbert curve.

    ``order`` is the curve order: the grid has ``2^order`` cells per side and
    the returned index lies in ``[0, 4^order)``.
    """
    _validate(order, x, y)
    rx = 0
    ry = 0
    d = 0
    s = 1 << (order - 1) if order > 0 else 0
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return d


def hilbert_point(order: int, d: int) -> Tuple[int, int]:
    """Inverse of :func:`hilbert_index`: curve distance ``d`` to ``(x, y)``."""
    if order < 0:
        raise SpatialError(f"curve order must be non-negative, got {order}")
    side = 1 << order
    if not 0 <= d < side * side:
        raise SpatialError(f"curve index {d} out of range for order {order}")
    x = 0
    y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> Tuple[int, int]:
    """Rotate/flip a quadrant appropriately (standard Hilbert transform)."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def _validate(order: int, x: int, y: int) -> None:
    if order < 0:
        raise SpatialError(f"curve order must be non-negative, got {order}")
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise SpatialError(
            f"grid coordinate ({x}, {y}) out of range for order {order}"
        )

"""Hilbert space-filling curve encoding.

The paper keys the Spatial Index Table with Hilbert-curve indexes because
Hilbert curves preserve locality slightly better than Z-curves (Section
3.2.1, citing Jensen et al.).  The functions below implement the classical
iterative conversion between a ``2^order x 2^order`` grid coordinate and the
distance ``d`` along the curve.

Both directions are **memoized**: the update and query hot paths re-encode
the same handful of cells over and over (every NN probe converts its cell
and its neighbours, every FLAG lookup re-keys the query's storage cell), so
an LRU keyed by the integer arguments turns the per-call bit-twiddling loop
into a dict hit.  The functions are pure, so memoization is invisible to
callers; invalid arguments still raise on every call because errors are
never cached.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.errors import SpatialError

#: Upper bound on memoized encodings per direction.  At 16 levels the
#: experiments touch a few thousand distinct cells; 2^16 entries give the
#: caches room without letting them grow unboundedly on adversarial input.
_CACHE_SIZE = 1 << 16


@lru_cache(maxsize=_CACHE_SIZE)
def hilbert_index(order: int, x: int, y: int) -> int:
    """Map grid coordinate ``(x, y)`` to its distance along the Hilbert curve.

    ``order`` is the curve order: the grid has ``2^order`` cells per side and
    the returned index lies in ``[0, 4^order)``.
    """
    _validate(order, x, y)
    rx = 0
    ry = 0
    d = 0
    s = 1 << (order - 1) if order > 0 else 0
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return d


@lru_cache(maxsize=_CACHE_SIZE)
def hilbert_point(order: int, d: int) -> Tuple[int, int]:
    """Inverse of :func:`hilbert_index`: curve distance ``d`` to ``(x, y)``."""
    if order < 0:
        raise SpatialError(f"curve order must be non-negative, got {order}")
    side = 1 << order
    if not 0 <= d < side * side:
        raise SpatialError(f"curve index {d} out of range for order {order}")
    x = 0
    y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_cache_info() -> Tuple[object, object]:
    """``(index_info, point_info)`` lru_cache statistics (test/debug hook)."""
    return hilbert_index.cache_info(), hilbert_point.cache_info()


def hilbert_cache_clear() -> None:
    """Drop every memoized encoding (test/debug hook)."""
    hilbert_index.cache_clear()
    hilbert_point.cache_clear()


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> Tuple[int, int]:
    """Rotate/flip a quadrant appropriately (standard Hilbert transform)."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def _validate(order: int, x: int, y: int) -> None:
    if order < 0:
        raise SpatialError(f"curve order must be non-negative, got {order}")
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise SpatialError(
            f"grid coordinate ({x}, {y}) out of range for order {order}"
        )

"""Hierarchical spatial indexer (the paper's S2Cell substitute).

The indexer recursively decomposes a square world into ``2^l x 2^l`` grids
and keys each grid cell by its position along a Hilbert space-filling curve
(Section 3.2.1).  The resulting integer keys have the property the paper
relies on throughout:

* cells that are geographically close tend to have close keys (locality), and
* all descendants of a cell occupy one *contiguous* key range, so a
  coarse-level cell can be fetched from the Spatial Index Table with a single
  range scan (Section 3.4.1).

``CellId`` is the public handle; ``hilbert`` and ``zcurve`` expose the raw
curve encodings (the Z-curve exists for the locality ablation benchmark);
``covering`` approximates arbitrary rectangles by cell unions; ``cube``
provides the 6-face wrapper used when indexing the surface of the Earth.
"""

from repro.spatial.hilbert import hilbert_index, hilbert_point
from repro.spatial.zcurve import z_index, z_point
from repro.spatial.cell import CellId, MAX_LEVEL, WORLD_UNIT_BOX
from repro.spatial.covering import cover_box, cover_circle
from repro.spatial.cube import FaceCellId, face_for_lat_lng

__all__ = [
    "hilbert_index",
    "hilbert_point",
    "z_index",
    "z_point",
    "CellId",
    "MAX_LEVEL",
    "WORLD_UNIT_BOX",
    "cover_box",
    "cover_circle",
    "FaceCellId",
    "face_for_lat_lng",
]

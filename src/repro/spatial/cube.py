"""Six-face cube wrapper for indexing the surface of the Earth.

Section 3.2.1 explains that for a spherical surface "the 2-D surface is
first partitioned into six square parts, and Hilbert Curves are employed to
each part".  None of the paper's experiments use the spherical path (they run
on flat synthetic maps), but the wrapper is provided so the public API covers
the full system: a latitude/longitude is projected onto one face of a cube
circumscribing the unit sphere, and the face-local ``(u, v)`` coordinate is
indexed with the planar :class:`~repro.spatial.cell.CellId` machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import SpatialError
from repro.geometry.point import Point
from repro.spatial.cell import CellId, MAX_LEVEL

#: Number of cube faces.
NUM_FACES = 6


def _lat_lng_to_xyz(lat_deg: float, lng_deg: float) -> Tuple[float, float, float]:
    lat = math.radians(lat_deg)
    lng = math.radians(lng_deg)
    cos_lat = math.cos(lat)
    return (cos_lat * math.cos(lng), cos_lat * math.sin(lng), math.sin(lat))


def face_for_lat_lng(lat_deg: float, lng_deg: float) -> int:
    """Cube face (0..5) whose axis is closest to the given surface point.

    Faces follow the S2 convention loosely: 0=+x, 1=+y, 2=+z, 3=-x, 4=-y,
    5=-z.
    """
    if not -90.0 <= lat_deg <= 90.0:
        raise SpatialError(f"latitude {lat_deg} outside [-90, 90]")
    x, y, z = _lat_lng_to_xyz(lat_deg, lng_deg)
    abs_x, abs_y, abs_z = abs(x), abs(y), abs(z)
    if abs_x >= abs_y and abs_x >= abs_z:
        return 0 if x >= 0 else 3
    if abs_y >= abs_x and abs_y >= abs_z:
        return 1 if y >= 0 else 4
    return 2 if z >= 0 else 5


def _face_uv(face: int, x: float, y: float, z: float) -> Tuple[float, float]:
    """Gnomonic projection of a unit vector onto face-local (u, v) in [-1, 1]."""
    if face == 0:
        return y / x, z / x
    if face == 1:
        return -x / y, z / y
    if face == 2:
        return -x / z, -y / z
    if face == 3:
        return z / x, y / x
    if face == 4:
        return z / y, -x / y
    if face == 5:
        return -y / z, -x / z
    raise SpatialError(f"invalid cube face {face}")


@dataclass(frozen=True, order=True)
class FaceCellId:
    """A cell on one face of the cube decomposition of the sphere."""

    face: int
    cell: CellId

    def __post_init__(self) -> None:
        if not 0 <= self.face < NUM_FACES:
            raise SpatialError(f"cube face {self.face} outside [0, {NUM_FACES})")

    @classmethod
    def from_lat_lng(cls, lat_deg: float, lng_deg: float, level: int) -> "FaceCellId":
        """Cell at ``level`` containing the given geographic coordinate."""
        if not 0 <= level <= MAX_LEVEL:
            raise SpatialError(f"cell level {level} outside [0, {MAX_LEVEL}]")
        face = face_for_lat_lng(lat_deg, lng_deg)
        x, y, z = _lat_lng_to_xyz(lat_deg, lng_deg)
        u, v = _face_uv(face, x, y, z)
        # Map face-local [-1, 1]^2 onto the unit world square of CellId.
        point = Point((u + 1.0) / 2.0, (v + 1.0) / 2.0)
        return cls(face, CellId.from_point(point, level))

    def key(self) -> str:
        """Row-key token: face digit prefix + planar cell token.

        The prefix keeps each face's keys in a disjoint, contiguous band so
        range scans never straddle a face boundary.
        """
        return f"{self.face}{self.cell.key()}"

    def parent(self, level: int = None) -> "FaceCellId":
        """Ancestor cell on the same face."""
        return FaceCellId(self.face, self.cell.parent(level))

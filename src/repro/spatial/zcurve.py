"""Z-order (Morton) curve encoding.

The Z-curve is the alternative space-filling curve the paper mentions in
Section 3.2.1 ("other encodings such as Z-curves are also applicable ...
Hilbert Curves perform slightly better").  It is included so the locality
ablation benchmark can compare range-scan behaviour of the two curves on the
same Spatial Index Table layout.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import SpatialError


def z_index(order: int, x: int, y: int) -> int:
    """Interleave the bits of ``(x, y)`` into a Morton code."""
    if order < 0:
        raise SpatialError(f"curve order must be non-negative, got {order}")
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise SpatialError(
            f"grid coordinate ({x}, {y}) out of range for order {order}"
        )
    code = 0
    for bit in range(order):
        code |= ((x >> bit) & 1) << (2 * bit)
        code |= ((y >> bit) & 1) << (2 * bit + 1)
    return code


def z_point(order: int, code: int) -> Tuple[int, int]:
    """Inverse of :func:`z_index`."""
    if order < 0:
        raise SpatialError(f"curve order must be non-negative, got {order}")
    side = 1 << order
    if not 0 <= code < side * side:
        raise SpatialError(f"curve index {code} out of range for order {order}")
    x = 0
    y = 0
    for bit in range(order):
        x |= ((code >> (2 * bit)) & 1) << bit
        y |= ((code >> (2 * bit + 1)) & 1) << bit
    return x, y

"""Hierarchical Hilbert-curve cells.

A :class:`CellId` identifies one square cell of the recursive decomposition
described in Section 3.2.1: at level ``l`` the world square is divided into a
``2^l x 2^l`` grid and each cell is numbered by its position along the
Hilbert curve of order ``l``.

Two properties of this numbering drive the whole design:

* **Locality** — nearby cells get nearby curve positions, so the Spatial
  Index Table (keyed by curve position) keeps nearby objects in nearby rows.
* **Prefix ranges** — all level-``MAX_LEVEL`` descendants of a level-``l``
  cell form one contiguous interval of curve positions.  A cell's *key
  range* is that interval, which is exactly the contiguous row range the
  nearest-neighbour search scans per NN cell (Section 3.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import SpatialError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.spatial.hilbert import hilbert_index, hilbert_point

#: Finest decomposition level supported.  2^24 cells per side is ~6 cm
#: resolution on a 1,000 km world edge, far finer than any experiment needs.
MAX_LEVEL = 24

#: The canonical normalised world of the paper's formalisation (Section
#: 3.2.1 maps locations into [0, 1]^2).
WORLD_UNIT_BOX = BoundingBox(0.0, 0.0, 1.0, 1.0)

#: Width of the zero-padded hexadecimal row-key token.  4^24 fits in 48 bits,
#: i.e. 12 hex digits.
_KEY_WIDTH = (2 * MAX_LEVEL + 3) // 4


@dataclass(frozen=True, order=True)
class CellId:
    """One cell of the hierarchical decomposition.

    The sort order is ``(level, pos)`` which keeps same-level cells in curve
    order; cross-level comparisons are only used for deterministic tie
    breaking inside priority queues.
    """

    level: int
    pos: int

    def __post_init__(self) -> None:
        if not 0 <= self.level <= MAX_LEVEL:
            raise SpatialError(
                f"cell level {self.level} outside [0, {MAX_LEVEL}]"
            )
        if not 0 <= self.pos < (1 << (2 * self.level)):
            raise SpatialError(
                f"cell position {self.pos} out of range for level {self.level}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_point(
        cls, point: Point, level: int, world: BoundingBox = WORLD_UNIT_BOX
    ) -> "CellId":
        """Cell at ``level`` containing ``point`` (points outside the world
        are clamped onto its border, mirroring how a GPS fix just outside the
        indexed region would be snapped to the nearest indexed cell)."""
        if not 0 <= level <= MAX_LEVEL:
            raise SpatialError(f"cell level {level} outside [0, {MAX_LEVEL}]")
        if level == 0:
            return cls(0, 0)
        clamped = world.clamp_point(point)
        side = 1 << level
        gx = _grid_coordinate(clamped.x, world.min_x, world.width, side)
        gy = _grid_coordinate(clamped.y, world.min_y, world.height, side)
        return cls(level, hilbert_index(level, gx, gy))

    @classmethod
    def from_token(cls, token: str, level: int) -> "CellId":
        """Reconstruct a cell from a row-key token produced by :meth:`key`."""
        min_pos = int(token, 16)
        shift = 2 * (MAX_LEVEL - level)
        if min_pos % (1 << shift):
            raise SpatialError(
                f"token {token!r} is not aligned to a level-{level} cell"
            )
        return cls(level, min_pos >> shift)

    # ------------------------------------------------------------------
    # Hierarchy
    # ------------------------------------------------------------------
    def parent(self, level: Optional[int] = None) -> "CellId":
        """Ancestor at ``level`` (default: the immediate parent)."""
        target = self.level - 1 if level is None else level
        if target < 0 or target > self.level:
            raise SpatialError(
                f"invalid parent level {target} for a level-{self.level} cell"
            )
        return CellId(target, self.pos >> (2 * (self.level - target)))

    def children(self) -> List["CellId"]:
        """The four level ``level+1`` cells contained in this cell."""
        if self.level >= MAX_LEVEL:
            raise SpatialError("cannot subdivide a cell at MAX_LEVEL")
        base = self.pos << 2
        return [CellId(self.level + 1, base + i) for i in range(4)]

    def contains(self, other: "CellId") -> bool:
        """True when ``other`` is this cell or one of its descendants."""
        if other.level < self.level:
            return False
        return (other.pos >> (2 * (other.level - self.level))) == self.pos

    # ------------------------------------------------------------------
    # Row keys
    # ------------------------------------------------------------------
    def range_min(self) -> int:
        """Smallest MAX_LEVEL curve position contained in this cell."""
        return self.pos << (2 * (MAX_LEVEL - self.level))

    def range_max(self) -> int:
        """Largest MAX_LEVEL curve position contained in this cell."""
        shift = 2 * (MAX_LEVEL - self.level)
        return ((self.pos + 1) << shift) - 1

    def key(self) -> str:
        """Fixed-width hexadecimal row-key token.

        Lexicographic order of tokens equals numeric order of curve
        positions, so a BigTable range scan over ``[key(), key_range()[1])``
        returns exactly the rows of this cell's descendants.
        """
        return format(self.range_min(), f"0{_KEY_WIDTH}x")

    def key_range(self) -> Tuple[str, str]:
        """Half-open row-key interval ``[start, end)`` covering this cell."""
        start = format(self.range_min(), f"0{_KEY_WIDTH}x")
        end_pos = self.range_max() + 1
        if end_pos >= (1 << (2 * MAX_LEVEL)):
            # The last cell of the curve: use a sentinel that sorts after
            # every valid fixed-width hexadecimal key.
            end = "g" * _KEY_WIDTH
        else:
            end = format(end_pos, f"0{_KEY_WIDTH}x")
        return start, end

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def grid_coordinates(self) -> Tuple[int, int]:
        """Grid coordinate ``(x, y)`` of this cell at its own level."""
        if self.level == 0:
            return (0, 0)
        return hilbert_point(self.level, self.pos)

    def to_box(self, world: BoundingBox = WORLD_UNIT_BOX) -> BoundingBox:
        """The rectangle this cell occupies in world coordinates."""
        side = 1 << self.level
        gx, gy = self.grid_coordinates()
        cell_w = world.width / side
        cell_h = world.height / side
        return BoundingBox(
            world.min_x + gx * cell_w,
            world.min_y + gy * cell_h,
            world.min_x + (gx + 1) * cell_w,
            world.min_y + (gy + 1) * cell_h,
        )

    def center(self, world: BoundingBox = WORLD_UNIT_BOX) -> Point:
        """Centre point of the cell in world coordinates."""
        return self.to_box(world).center()

    def distance_to_point(
        self, point: Point, world: BoundingBox = WORLD_UNIT_BOX
    ) -> float:
        """Shortest distance from any point of the cell to ``point``.

        Lower-bounds the distance of every object indexed under this cell,
        which is the pruning rule of the NN search (Algorithm 2, line 7).
        """
        return self.to_box(world).distance_to_point(point)

    def edge_neighbors(self) -> List["CellId"]:
        """Same-level cells sharing an edge with this cell.

        Cells on the world border have fewer than four neighbours; the NN
        search pushes whatever neighbours exist (Algorithm 2, line 19).
        """
        if self.level == 0:
            return []
        side = 1 << self.level
        gx, gy = self.grid_coordinates()
        neighbors = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx = gx + dx
            ny = gy + dy
            if 0 <= nx < side and 0 <= ny < side:
                neighbors.append(CellId(self.level, hilbert_index(self.level, nx, ny)))
        return neighbors

    def all_neighbors(self) -> List["CellId"]:
        """Same-level cells sharing an edge or a corner (8-neighbourhood)."""
        if self.level == 0:
            return []
        side = 1 << self.level
        gx, gy = self.grid_coordinates()
        neighbors = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                nx = gx + dx
                ny = gy + dy
                if 0 <= nx < side and 0 <= ny < side:
                    neighbors.append(
                        CellId(self.level, hilbert_index(self.level, nx, ny))
                    )
        return neighbors

    def descendants_at(self, level: int) -> Iterator["CellId"]:
        """Yield every descendant of this cell at the given finer ``level``."""
        if level < self.level or level > MAX_LEVEL:
            raise SpatialError(
                f"invalid descendant level {level} for a level-{self.level} cell"
            )
        shift = 2 * (level - self.level)
        base = self.pos << shift
        for offset in range(1 << shift):
            yield CellId(level, base + offset)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellId(level={self.level}, pos={self.pos})"


def _grid_coordinate(value: float, origin: float, extent: float, side: int) -> int:
    """Map a world coordinate onto a grid index in ``[0, side)``."""
    if extent <= 0:
        raise SpatialError("world box has zero extent")
    fraction = (value - origin) / extent
    index = int(fraction * side)
    if index >= side:
        index = side - 1
    if index < 0:
        index = 0
    return index

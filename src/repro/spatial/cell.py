"""Hierarchical Hilbert-curve cells.

A :class:`CellId` identifies one square cell of the recursive decomposition
described in Section 3.2.1: at level ``l`` the world square is divided into a
``2^l x 2^l`` grid and each cell is numbered by its position along the
Hilbert curve of order ``l``.

Two properties of this numbering drive the whole design:

* **Locality** — nearby cells get nearby curve positions, so the Spatial
  Index Table (keyed by curve position) keeps nearby objects in nearby rows.
* **Prefix ranges** — all level-``MAX_LEVEL`` descendants of a level-``l``
  cell form one contiguous interval of curve positions.  A cell's *key
  range* is that interval, which is exactly the contiguous row range the
  nearest-neighbour search scans per NN cell (Section 3.4.1).

The conversions between cells, row-key tokens, world boxes and neighbour
sets are pure functions of ``(level, pos)`` and are **memoized** at module
level: one NN query touches the same cells through its priority queue many
times (key range for the scan, box for the distance bound, neighbours for
expansion), and the caches turn each re-derivation into a dict hit.  Key
tokens are additionally ``sys.intern``-ed so the row-key dictionaries of the
storage layer compare them by pointer.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

from repro.errors import SpatialError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.spatial.hilbert import hilbert_index, hilbert_point

#: Finest decomposition level supported.  2^24 cells per side is ~6 cm
#: resolution on a 1,000 km world edge, far finer than any experiment needs.
MAX_LEVEL = 24

#: The canonical normalised world of the paper's formalisation (Section
#: 3.2.1 maps locations into [0, 1]^2).
WORLD_UNIT_BOX = BoundingBox(0.0, 0.0, 1.0, 1.0)

#: Width of the zero-padded hexadecimal row-key token.  4^24 fits in 48 bits,
#: i.e. 12 hex digits.
_KEY_WIDTH = (2 * MAX_LEVEL + 3) // 4

#: Bound on the memoized codec caches (distinct cells seen by a run).
_CACHE_SIZE = 1 << 16


@dataclass(frozen=True, order=True)
class CellId:
    """One cell of the hierarchical decomposition.

    The sort order is ``(level, pos)`` which keeps same-level cells in curve
    order; cross-level comparisons are only used for deterministic tie
    breaking inside priority queues.
    """

    __slots__ = ("level", "pos")

    level: int
    pos: int

    def __reduce__(self):
        # Frozen + __slots__ defeats default pickling; reconstruct through
        # the constructor so cell ids survive the multiprocess RPC wire.
        return (CellId, (self.level, self.pos))

    def __post_init__(self) -> None:
        if not 0 <= self.level <= MAX_LEVEL:
            raise SpatialError(
                f"cell level {self.level} outside [0, {MAX_LEVEL}]"
            )
        if not 0 <= self.pos < (1 << (2 * self.level)):
            raise SpatialError(
                f"cell position {self.pos} out of range for level {self.level}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_point(
        cls, point: Point, level: int, world: BoundingBox = WORLD_UNIT_BOX
    ) -> "CellId":
        """Cell at ``level`` containing ``point`` (points outside the world
        are clamped onto its border, mirroring how a GPS fix just outside the
        indexed region would be snapped to the nearest indexed cell)."""
        if not 0 <= level <= MAX_LEVEL:
            raise SpatialError(f"cell level {level} outside [0, {MAX_LEVEL}]")
        if level == 0:
            return cls(0, 0)
        # Clamp inline: the hot update/query paths call this per message and
        # an intermediate clamped Point per call is pure allocator traffic.
        x = point.x
        y = point.y
        min_x = world.min_x
        min_y = world.min_y
        max_x = world.max_x
        max_y = world.max_y
        if x < min_x:
            x = min_x
        elif x > max_x:
            x = max_x
        if y < min_y:
            y = min_y
        elif y > max_y:
            y = max_y
        side = 1 << level
        gx = _grid_coordinate(x, min_x, max_x - min_x, side)
        gy = _grid_coordinate(y, min_y, max_y - min_y, side)
        return cls(level, hilbert_index(level, gx, gy))

    @classmethod
    def from_token(cls, token: str, level: int) -> "CellId":
        """Reconstruct a cell from a row-key token produced by :meth:`key`."""
        min_pos = int(token, 16)
        shift = 2 * (MAX_LEVEL - level)
        if min_pos % (1 << shift):
            raise SpatialError(
                f"token {token!r} is not aligned to a level-{level} cell"
            )
        return cls(level, min_pos >> shift)

    # ------------------------------------------------------------------
    # Hierarchy
    # ------------------------------------------------------------------
    def parent(self, level: Optional[int] = None) -> "CellId":
        """Ancestor at ``level`` (default: the immediate parent)."""
        target = self.level - 1 if level is None else level
        if target < 0 or target > self.level:
            raise SpatialError(
                f"invalid parent level {target} for a level-{self.level} cell"
            )
        return CellId(target, self.pos >> (2 * (self.level - target)))

    def children(self) -> List["CellId"]:
        """The four level ``level+1`` cells contained in this cell."""
        if self.level >= MAX_LEVEL:
            raise SpatialError("cannot subdivide a cell at MAX_LEVEL")
        base = self.pos << 2
        return [CellId(self.level + 1, base + i) for i in range(4)]

    def contains(self, other: "CellId") -> bool:
        """True when ``other`` is this cell or one of its descendants."""
        if other.level < self.level:
            return False
        return (other.pos >> (2 * (other.level - self.level))) == self.pos

    # ------------------------------------------------------------------
    # Row keys
    # ------------------------------------------------------------------
    def range_min(self) -> int:
        """Smallest MAX_LEVEL curve position contained in this cell."""
        return self.pos << (2 * (MAX_LEVEL - self.level))

    def range_max(self) -> int:
        """Largest MAX_LEVEL curve position contained in this cell."""
        shift = 2 * (MAX_LEVEL - self.level)
        return ((self.pos + 1) << shift) - 1

    def key(self) -> str:
        """Fixed-width hexadecimal row-key token (memoized and interned).

        Lexicographic order of tokens equals numeric order of curve
        positions, so a BigTable range scan over ``[key(), key_range()[1])``
        returns exactly the rows of this cell's descendants.
        """
        return _key_codec(self.level, self.pos)[0]

    def key_range(self) -> Tuple[str, str]:
        """Half-open row-key interval ``[start, end)`` covering this cell."""
        return _key_codec(self.level, self.pos)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def grid_coordinates(self) -> Tuple[int, int]:
        """Grid coordinate ``(x, y)`` of this cell at its own level."""
        if self.level == 0:
            return (0, 0)
        return hilbert_point(self.level, self.pos)

    def to_box(self, world: BoundingBox = WORLD_UNIT_BOX) -> BoundingBox:
        """The rectangle this cell occupies in world coordinates."""
        return _box_codec(self.level, self.pos, world)

    def center(self, world: BoundingBox = WORLD_UNIT_BOX) -> Point:
        """Centre point of the cell in world coordinates."""
        return self.to_box(world).center()

    def distance_to_point(
        self, point: Point, world: BoundingBox = WORLD_UNIT_BOX
    ) -> float:
        """Shortest distance from any point of the cell to ``point``.

        Lower-bounds the distance of every object indexed under this cell,
        which is the pruning rule of the NN search (Algorithm 2, line 7).
        """
        box = _box_codec(self.level, self.pos, world)
        x = point.x
        y = point.y
        # Clamp-and-measure without the intermediate Point: |clamped - p|
        # componentwise equals the distance to the nearest box edge.
        if x < box.min_x:
            dx = box.min_x - x
        elif x > box.max_x:
            dx = box.max_x - x
        else:
            dx = 0.0
        if y < box.min_y:
            dy = box.min_y - y
        elif y > box.max_y:
            dy = box.max_y - y
        else:
            dy = 0.0
        return math.hypot(dx, dy)

    def edge_neighbors(self) -> List["CellId"]:
        """Same-level cells sharing an edge with this cell.

        Cells on the world border have fewer than four neighbours; the NN
        search pushes whatever neighbours exist (Algorithm 2, line 19).
        """
        return list(_edge_neighbors_codec(self.level, self.pos))

    def all_neighbors(self) -> List["CellId"]:
        """Same-level cells sharing an edge or a corner (8-neighbourhood)."""
        return list(_all_neighbors_codec(self.level, self.pos))

    def descendants_at(self, level: int) -> Iterator["CellId"]:
        """Yield every descendant of this cell at the given finer ``level``."""
        if level < self.level or level > MAX_LEVEL:
            raise SpatialError(
                f"invalid descendant level {level} for a level-{self.level} cell"
            )
        shift = 2 * (level - self.level)
        base = self.pos << shift
        for offset in range(1 << shift):
            yield CellId(level, base + offset)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellId(level={self.level}, pos={self.pos})"


# ----------------------------------------------------------------------
# Memoized codecs (pure functions of the cell identity)
# ----------------------------------------------------------------------
@lru_cache(maxsize=_CACHE_SIZE)
def _key_codec(level: int, pos: int) -> Tuple[str, str]:
    """Interned ``(start_key, end_key)`` of the cell's row-key interval."""
    shift = 2 * (MAX_LEVEL - level)
    range_min = pos << shift
    start = sys.intern(format(range_min, f"0{_KEY_WIDTH}x"))
    end_pos = (pos + 1) << shift
    if end_pos >= (1 << (2 * MAX_LEVEL)):
        # The last cell of the curve: use a sentinel that sorts after
        # every valid fixed-width hexadecimal key.
        end = sys.intern("g" * _KEY_WIDTH)
    else:
        end = sys.intern(format(end_pos, f"0{_KEY_WIDTH}x"))
    return start, end


@lru_cache(maxsize=_CACHE_SIZE)
def _box_codec(level: int, pos: int, world: BoundingBox) -> BoundingBox:
    """World-coordinate rectangle of one cell."""
    side = 1 << level
    gx, gy = (0, 0) if level == 0 else hilbert_point(level, pos)
    cell_w = world.width / side
    cell_h = world.height / side
    return BoundingBox(
        world.min_x + gx * cell_w,
        world.min_y + gy * cell_h,
        world.min_x + (gx + 1) * cell_w,
        world.min_y + (gy + 1) * cell_h,
    )


@lru_cache(maxsize=_CACHE_SIZE)
def _edge_neighbors_codec(level: int, pos: int) -> Tuple[CellId, ...]:
    """4-neighbourhood of one cell (same construction order as the seed)."""
    if level == 0:
        return ()
    side = 1 << level
    gx, gy = hilbert_point(level, pos)
    neighbors = []
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        nx = gx + dx
        ny = gy + dy
        if 0 <= nx < side and 0 <= ny < side:
            neighbors.append(CellId(level, hilbert_index(level, nx, ny)))
    return tuple(neighbors)


@lru_cache(maxsize=_CACHE_SIZE)
def _all_neighbors_codec(level: int, pos: int) -> Tuple[CellId, ...]:
    """8-neighbourhood of one cell (same construction order as the seed)."""
    if level == 0:
        return ()
    side = 1 << level
    gx, gy = hilbert_point(level, pos)
    neighbors = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            nx = gx + dx
            ny = gy + dy
            if 0 <= nx < side and 0 <= ny < side:
                neighbors.append(CellId(level, hilbert_index(level, nx, ny)))
    return tuple(neighbors)


def cell_codec_cache_clear() -> None:
    """Drop every memoized cell codec (test/debug hook)."""
    _key_codec.cache_clear()
    _box_codec.cache_clear()
    _edge_neighbors_codec.cache_clear()
    _all_neighbors_codec.cache_clear()


def _grid_coordinate(value: float, origin: float, extent: float, side: int) -> int:
    """Map a world coordinate onto a grid index in ``[0, side)``."""
    if extent <= 0:
        raise SpatialError("world box has zero extent")
    fraction = (value - origin) / extent
    index = int(fraction * side)
    if index >= side:
        index = side - 1
    if index < 0:
        index = 0
    return index

"""Approximate regions by unions of same-level cells.

Section 3.2.1 notes that "an arbitrary region can be approximated by a
collection of cells".  The covering helpers below are used by range queries
(realtime-coupon example), by the clustering pass (enumerating the spatial
cells inside a clustering cell) and by history queries over a region.

Coverings are pure functions of ``(region, level, world)`` and query
workloads repeat shapes constantly (the same coupon region polled each
round, the same probe disc around a hot venue), so the expensive grid
enumeration is memoized in a module-level LRU.  The cached value is an
immutable tuple; the public helpers hand each caller a fresh list so
mutating a result can never corrupt the cache.  :func:`covering_cache_clear`
drops the memo (test hook / long-lived processes with churning worlds).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Tuple

from repro.errors import SpatialError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.spatial.cell import CellId, MAX_LEVEL, WORLD_UNIT_BOX
from repro.spatial.hilbert import hilbert_index

#: Bound on distinct (shape, level, world) coverings kept warm.
_CACHE_SIZE = 4096


@lru_cache(maxsize=_CACHE_SIZE)
def _cover_box_codec(
    region: BoundingBox, level: int, world: BoundingBox
) -> Tuple[CellId, ...]:
    """Curve-sorted tuple of level-``level`` cells intersecting ``region``."""
    clipped_min = world.clamp_point(Point(region.min_x, region.min_y))
    clipped_max = world.clamp_point(Point(region.max_x, region.max_y))
    side = 1 << level
    cell_w = world.width / side
    cell_h = world.height / side
    gx_min = _clamp_index((clipped_min.x - world.min_x) / cell_w, side)
    gx_max = _clamp_index((clipped_max.x - world.min_x) / cell_w, side)
    gy_min = _clamp_index((clipped_min.y - world.min_y) / cell_h, side)
    gy_max = _clamp_index((clipped_max.y - world.min_y) / cell_h, side)
    cells = []
    for gx in range(gx_min, gx_max + 1):
        for gy in range(gy_min, gy_max + 1):
            cells.append(CellId(level, hilbert_index(level, gx, gy)))
    cells.sort(key=lambda cell: cell.pos)
    return tuple(cells)


@lru_cache(maxsize=_CACHE_SIZE)
def _cover_circle_codec(
    center: Point, radius: float, level: int, world: BoundingBox
) -> Tuple[CellId, ...]:
    """Curve-sorted tuple of level-``level`` cells intersecting a disc."""
    box = BoundingBox.from_center(center, radius, radius)
    return tuple(
        cell
        for cell in _cover_box_codec(box, level, world)
        if cell.distance_to_point(center, world) <= radius
    )


def cover_box(
    region: BoundingBox,
    level: int,
    world: BoundingBox = WORLD_UNIT_BOX,
) -> List[CellId]:
    """All level-``level`` cells that intersect ``region``.

    The result is sorted by curve position so consecutive cells can be
    coalesced into range scans by the caller.
    """
    if not 0 <= level <= MAX_LEVEL:
        raise SpatialError(f"cover level {level} outside [0, {MAX_LEVEL}]")
    return list(_cover_box_codec(region, level, world))


def cover_circle(
    center: Point,
    radius: float,
    level: int,
    world: BoundingBox = WORLD_UNIT_BOX,
) -> List[CellId]:
    """Level-``level`` cells intersecting the disc around ``center``.

    The covering first takes the bounding-box cells then discards cells whose
    minimum distance to the centre exceeds the radius.
    """
    if radius < 0:
        raise SpatialError(f"radius must be non-negative, got {radius}")
    if not 0 <= level <= MAX_LEVEL:
        raise SpatialError(f"cover level {level} outside [0, {MAX_LEVEL}]")
    return list(_cover_circle_codec(center, radius, level, world))


def covering_cache_clear() -> None:
    """Drop every memoized covering (test/debug hook)."""
    _cover_box_codec.cache_clear()
    _cover_circle_codec.cache_clear()


def covering_cache_info() -> Tuple[object, object]:
    """``(box_info, circle_info)`` lru_cache statistics (test/debug hook)."""
    return _cover_box_codec.cache_info(), _cover_circle_codec.cache_info()


def coalesce_ranges(cells: List[CellId]) -> List[tuple]:
    """Merge curve-adjacent same-level cells into ``(start_key, end_key)`` scans.

    BigTable range scans are far cheaper than repeated point reads (Section
    3.1), so callers that fetch many cells first coalesce adjacent ones.
    """
    if not cells:
        return []
    levels = {cell.level for cell in cells}
    if len(levels) != 1:
        raise SpatialError("coalesce_ranges requires cells of a single level")
    ordered = sorted(cells, key=lambda cell: cell.pos)
    ranges = []
    run_start = ordered[0]
    previous = ordered[0]
    for cell in ordered[1:]:
        if cell.pos == previous.pos + 1:
            previous = cell
            continue
        ranges.append((run_start.key_range()[0], previous.key_range()[1]))
        run_start = cell
        previous = cell
    ranges.append((run_start.key_range()[0], previous.key_range()[1]))
    return ranges


def level_for_resolution(
    resolution: float, world: BoundingBox = WORLD_UNIT_BOX
) -> int:
    """Coarsest level whose cells are no wider than ``resolution`` world units."""
    if resolution <= 0:
        raise SpatialError("resolution must be positive")
    extent = max(world.width, world.height)
    if resolution >= extent:
        return 0
    level = int(math.ceil(math.log2(extent / resolution)))
    return min(max(level, 0), MAX_LEVEL)


def _clamp_index(value: float, side: int) -> int:
    index = int(value)
    if index < 0:
        return 0
    if index >= side:
        return side - 1
    return index

"""Approximate regions by unions of same-level cells.

Section 3.2.1 notes that "an arbitrary region can be approximated by a
collection of cells".  The covering helpers below are used by range queries
(realtime-coupon example), by the clustering pass (enumerating the spatial
cells inside a clustering cell) and by history queries over a region.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import SpatialError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.spatial.cell import CellId, MAX_LEVEL, WORLD_UNIT_BOX
from repro.spatial.hilbert import hilbert_index


def cover_box(
    region: BoundingBox,
    level: int,
    world: BoundingBox = WORLD_UNIT_BOX,
) -> List[CellId]:
    """All level-``level`` cells that intersect ``region``.

    The result is sorted by curve position so consecutive cells can be
    coalesced into range scans by the caller.
    """
    if not 0 <= level <= MAX_LEVEL:
        raise SpatialError(f"cover level {level} outside [0, {MAX_LEVEL}]")
    clipped_min = world.clamp_point(Point(region.min_x, region.min_y))
    clipped_max = world.clamp_point(Point(region.max_x, region.max_y))
    side = 1 << level
    cell_w = world.width / side
    cell_h = world.height / side
    gx_min = _clamp_index((clipped_min.x - world.min_x) / cell_w, side)
    gx_max = _clamp_index((clipped_max.x - world.min_x) / cell_w, side)
    gy_min = _clamp_index((clipped_min.y - world.min_y) / cell_h, side)
    gy_max = _clamp_index((clipped_max.y - world.min_y) / cell_h, side)
    cells = []
    for gx in range(gx_min, gx_max + 1):
        for gy in range(gy_min, gy_max + 1):
            cells.append(CellId(level, hilbert_index(level, gx, gy)))
    cells.sort(key=lambda cell: cell.pos)
    return cells


def cover_circle(
    center: Point,
    radius: float,
    level: int,
    world: BoundingBox = WORLD_UNIT_BOX,
) -> List[CellId]:
    """Level-``level`` cells intersecting the disc around ``center``.

    The covering first takes the bounding-box cells then discards cells whose
    minimum distance to the centre exceeds the radius.
    """
    if radius < 0:
        raise SpatialError(f"radius must be non-negative, got {radius}")
    box = BoundingBox.from_center(center, radius, radius)
    candidates = cover_box(box, level, world)
    return [
        cell
        for cell in candidates
        if cell.distance_to_point(center, world) <= radius
    ]


def coalesce_ranges(cells: List[CellId]) -> List[tuple]:
    """Merge curve-adjacent same-level cells into ``(start_key, end_key)`` scans.

    BigTable range scans are far cheaper than repeated point reads (Section
    3.1), so callers that fetch many cells first coalesce adjacent ones.
    """
    if not cells:
        return []
    levels = {cell.level for cell in cells}
    if len(levels) != 1:
        raise SpatialError("coalesce_ranges requires cells of a single level")
    ordered = sorted(cells, key=lambda cell: cell.pos)
    ranges = []
    run_start = ordered[0]
    previous = ordered[0]
    for cell in ordered[1:]:
        if cell.pos == previous.pos + 1:
            previous = cell
            continue
        ranges.append((run_start.key_range()[0], previous.key_range()[1]))
        run_start = cell
        previous = cell
    ranges.append((run_start.key_range()[0], previous.key_range()[1]))
    return ranges


def level_for_resolution(
    resolution: float, world: BoundingBox = WORLD_UNIT_BOX
) -> int:
    """Coarsest level whose cells are no wider than ``resolution`` world units."""
    if resolution <= 0:
        raise SpatialError("resolution must be positive")
    extent = max(world.width, world.height)
    if resolution >= extent:
        return 0
    level = int(math.ceil(math.log2(extent / resolution)))
    return min(max(level, 0), MAX_LEVEL)


def _clamp_index(value: float, side: int) -> int:
    index = int(value)
    if index < 0:
        return 0
    if index >= side:
        return side - 1
    return index

"""Operation accounting and the simulated BigTable cost model.

The experiments in Section 4 are dominated by the number and kind of
BigTable operations (reads, writes, range scans, batches) rather than by CPU
work.  Every emulator operation therefore reports itself to an
:class:`OpCounter`, and a :class:`CostModel` converts operation counts into
simulated service time.  The default constants are calibrated so that the
leader-update path costs ~0.125 ms, which reproduces the paper's anchor of
"as many as 7,875 update requests per second" on a single front-end server
with one million indexed objects (Figure 13a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


class OpKind(enum.Enum):
    """Kinds of storage operations the cost model distinguishes."""

    READ = "read"
    WRITE = "write"
    DELETE = "delete"
    SCAN = "scan"
    SCAN_ROW = "scan_row"
    BATCH_READ = "batch_read"
    BATCH_READ_ROW = "batch_read_row"
    BATCH_WRITE = "batch_write"
    BATCH_WRITE_ROW = "batch_write_row"
    #: Rows of a scan served from the tablet server's block cache.  Not a
    #: storage RPC: the round trip is already charged by the SCAN record the
    #: cache read rode along with.
    CACHE_READ = "cache_read"
    #: Commit-log group commit: one call is one fsync, its rows are the
    #: mutation records the sync batched.  Durability work, not a storage
    #: RPC — it accrues to the separate durability ledger.
    LOG_APPEND = "log_append"
    #: Rows read back from SSTable runs by a merging compaction (one call
    #: per compaction).  Durability ledger.  Recovery run-opens are priced
    #: separately through the RecoveryReport, not this ledger.
    COMPACTION_READ = "compaction_read"
    #: Rows written into a new SSTable run by a memtable flush (minor
    #: compaction) or a merging/major compaction.  Durability ledger.
    COMPACTION_WRITE = "compaction_write"
    #: A tablet hand-off between front-end servers (live migration or
    #: replica seeding): one call is one hand-off, its rows are the SSTable
    #: rows and commit-log records shipped to the target.  Control-plane
    #: work, not a storage RPC — it accrues to the durability ledger so
    #: simulated query/update service times stay comparable across
    #: static-affinity and master-balanced clusters.
    MIGRATION = "migration"

    # Members are singletons, so identity hashing is correct — and C-level,
    # unlike Enum's default name-based ``__hash__``.  Every counter update
    # hashes an OpKind twice; this is one of the hottest lines of the
    # emulator.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class CostModel:
    """Per-operation simulated costs, in seconds.

    ``*_rpc`` entries are charged once per call (the RPC round trip);
    ``*_row`` entries are charged per row touched by a scan or batch.  Batch
    rows are cheaper than individual point operations, which is what makes
    the paper's batch-read clustering pass profitable (Section 3.3.2).
    """

    read_rpc: float = 22e-6
    write_rpc: float = 26e-6
    delete_rpc: float = 22e-6
    scan_rpc: float = 40e-6
    scan_row: float = 2e-6
    batch_rpc: float = 40e-6
    batch_read_row: float = 5e-6
    batch_write_row: float = 2.5e-6
    #: Per-row cost of a scan row served from the tablet server's block
    #: cache (no disk block to fault in; the RPC itself is charged by the
    #: accompanying SCAN record).
    cache_read_row: float = 0.5e-6
    #: Multiplier applied to write costs to model BigTable's lower write
    #: concurrency ("BigTable had a much better concurrency in read
    #: operations than write ones", Section 4.2).
    write_contention_factor: float = 1.0
    #: Durability costs (the LSM engine's commit log, flushes, compactions
    #: and recovery).  They accrue to the separate durability ledger so the
    #: paper-facing simulated service times stay exactly as calibrated;
    #: experiments report them additively.
    log_fsync: float = 8e-6
    log_append_row: float = 0.5e-6
    log_replay_row: float = 0.5e-6
    compaction_read_row: float = 0.4e-6
    compaction_write_row: float = 0.8e-6
    run_open_rpc: float = 20e-6
    #: Tablet migration / replica seeding: one METADATA commit per hand-off
    #: plus a per-row copy cost for the shipped SSTable rows and log tail.
    migration_rpc: float = 30e-6
    migration_row: float = 0.6e-6

    def __post_init__(self) -> None:
        for name in (
            "read_rpc",
            "write_rpc",
            "delete_rpc",
            "scan_rpc",
            "scan_row",
            "batch_rpc",
            "batch_read_row",
            "batch_write_row",
            "cache_read_row",
            "log_fsync",
            "log_append_row",
            "log_replay_row",
            "compaction_read_row",
            "compaction_write_row",
            "run_open_rpc",
            "migration_rpc",
            "migration_row",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"cost model field {name} must be >= 0")
        if self.write_contention_factor <= 0:
            raise ConfigurationError("write_contention_factor must be positive")
        # Precompute ``kind -> (fixed, per_row, post_factor)`` so the hot
        # counter path prices an operation with one dict hit and one FMA
        # instead of walking an if-chain of attribute reads.  The terms keep
        # the exact arithmetic shape of the original formulas (fixed first,
        # the contention factor applied where it was), so simulated seconds
        # stay bit-identical.
        factor = self.write_contention_factor
        object.__setattr__(
            self,
            "_cost_table",
            {
                OpKind.READ: (self.read_rpc, 0.0, 1.0),
                OpKind.WRITE: (self.write_rpc * factor, 0.0, 1.0),
                OpKind.DELETE: (self.delete_rpc * factor, 0.0, 1.0),
                OpKind.SCAN: (self.scan_rpc, self.scan_row, 1.0),
                OpKind.BATCH_READ: (self.batch_rpc, self.batch_read_row, 1.0),
                OpKind.CACHE_READ: (0.0, self.cache_read_row, 1.0),
                OpKind.BATCH_WRITE: (self.batch_rpc, self.batch_write_row, factor),
            },
        )
        # Durability kinds live in their own table: recording one through the
        # standard ledger is a bug (it would perturb the calibrated service
        # times), so ``record``/``cost_of`` refuse them.
        object.__setattr__(
            self,
            "_durability_cost_table",
            {
                OpKind.LOG_APPEND: (self.log_fsync, self.log_append_row, 1.0),
                OpKind.COMPACTION_READ: (0.0, self.compaction_read_row, 1.0),
                OpKind.COMPACTION_WRITE: (0.0, self.compaction_write_row, 1.0),
                OpKind.MIGRATION: (self.migration_rpc, self.migration_row, 1.0),
            },
        )

    def cost_of(self, kind: OpKind, rows: int = 1) -> float:
        """Simulated time for one call of ``kind`` touching ``rows`` rows."""
        entry = self._cost_table.get(kind)
        if entry is None:
            raise ConfigurationError(f"no standalone cost defined for {kind}")
        fixed, per_row, post_factor = entry
        return (fixed + per_row * rows) * post_factor


#: Kinds whose simulated time accrues to the read ledger; everything else is
#: write time.  A frozenset lookup (identity-hashed) beats re-testing a
#: 4-tuple membership on every recorded operation.
_READ_KINDS = frozenset(
    (OpKind.READ, OpKind.SCAN, OpKind.BATCH_READ, OpKind.CACHE_READ)
)


@dataclass
class OpCounter:
    """Accumulates operation counts and simulated time.

    One counter is typically shared by every table of an emulator instance;
    experiments snapshot/reset it around the measured section so read,
    compute and write time can be reported separately (Figure 10).
    """

    model: CostModel = field(default_factory=CostModel)
    counts: Dict[OpKind, int] = field(default_factory=dict)
    rows: Dict[OpKind, int] = field(default_factory=dict)
    simulated_seconds: float = 0.0
    read_seconds: float = 0.0
    write_seconds: float = 0.0
    #: Durability ledger: commit-log fsyncs, flush/compaction I/O and
    #: recovery work.  Kept apart from the paper-facing counters above so
    #: the LSM engine's bookkeeping never moves calibrated service times or
    #: RPC counts — experiments report durability cost additively.
    durability_counts: Dict[OpKind, int] = field(default_factory=dict)
    durability_rows: Dict[OpKind, int] = field(default_factory=dict)
    durability_seconds: float = 0.0
    #: Logical mutations applied, counted whether or not the commit log is
    #: enabled — the denominator of :meth:`write_amplification` (a
    #: log-disabled engine that flushes and compacts still amplifies).
    logical_write_rows: int = 0

    def record(self, kind: OpKind, rows: int = 1) -> float:
        """Record one operation and return its simulated cost.

        Duplicates :meth:`record_many` for ``calls=1`` — this is the single
        hottest function of the emulator (every point operation lands here
        twice: shared ledger and tablet ledger), so it pays to skip the
        extra call frames (including :meth:`CostModel.cost_of`).
        """
        entry = self.model._cost_table.get(kind)
        if entry is None:
            raise ConfigurationError(f"no standalone cost defined for {kind}")
        fixed, per_row, post_factor = entry
        cost = (fixed + per_row * rows) * post_factor
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        totals = self.rows
        totals[kind] = totals.get(kind, 0) + rows
        self.simulated_seconds += cost
        if kind in _READ_KINDS:
            self.read_seconds += cost
        else:
            self.write_seconds += cost
        return cost

    def record_many(self, kind: OpKind, calls: int, rows_per_call: int = 1) -> float:
        """Record ``calls`` identical operations in one bookkeeping step.

        This is the group-commit fast path: a flushed commit buffer charges
        all of its point writes at once instead of paying the per-call
        dictionary and attribute work ``calls`` times.  The simulated cost is
        identical to ``calls`` individual :meth:`record` invocations (up to
        floating-point association).
        """
        if calls <= 0:
            return 0.0
        entry = self.model._cost_table.get(kind)
        if entry is None:
            raise ConfigurationError(f"no standalone cost defined for {kind}")
        fixed, per_row, post_factor = entry
        cost = (fixed + per_row * rows_per_call) * post_factor * calls
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + calls
        totals = self.rows
        totals[kind] = totals.get(kind, 0) + rows_per_call * calls
        self.simulated_seconds += cost
        if kind in _READ_KINDS:
            self.read_seconds += cost
        else:
            self.write_seconds += cost
        return cost

    def record_durability(self, kind: OpKind, rows: int = 1, calls: int = 1) -> float:
        """Record durability work (log fsyncs, flush/compaction I/O).

        Accrues only to the durability ledger: ``simulated_seconds``,
        ``storage_rpc_count`` and the read/write split are untouched, which
        is what keeps existing experiments bit-identical while the LSM
        engine runs underneath them.
        """
        entry = self.model._durability_cost_table.get(kind)
        if entry is None:
            raise ConfigurationError(f"{kind} is not a durability operation")
        fixed, per_row, post_factor = entry
        cost = (fixed * calls + per_row * rows) * post_factor
        counts = self.durability_counts
        counts[kind] = counts.get(kind, 0) + calls
        totals = self.durability_rows
        totals[kind] = totals.get(kind, 0) + rows
        self.durability_seconds += cost
        return cost

    def durability_count(self, kind: OpKind) -> int:
        """Durability calls (fsyncs, compactions) of the given kind."""
        return self.durability_counts.get(kind, 0)

    def durability_rows_touched(self, kind: OpKind) -> int:
        """Rows written/read by durability work of the given kind."""
        return self.durability_rows.get(kind, 0)

    def write_amplification(self) -> float:
        """Physical rows written per logical row written.

        Physical writes are the commit-log records (when the log is
        enabled) plus every row a flush or compaction wrote into an SSTable
        run; the denominator is the logical mutation count, tracked
        independently of the log so a log-disabled engine that flushes and
        compacts still reports its amplification honestly.  1.0 before any
        mutation (and in the default log-only configuration).
        """
        logical = self.logical_write_rows
        if logical <= 0:
            return 1.0
        logged = self.durability_rows.get(OpKind.LOG_APPEND, 0)
        rewritten = self.durability_rows.get(OpKind.COMPACTION_WRITE, 0)
        physical = logged + rewritten
        if physical <= 0:
            return 1.0
        return physical / logical

    def absorb_snapshot(self, snapshot: "OpCounterSnapshot") -> None:
        """Fold a frozen snapshot's totals into this counter.

        The per-worker ledger merge of the multiprocess backend: each worker
        ships an :class:`OpCounterSnapshot` of its shard's counter and the
        parent folds them, in fixed shard order, into one cluster-wide
        ledger.  Summation order is deterministic, so merged simulated
        seconds are bit-identical run to run.
        """
        for kind, count in snapshot.counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + count
        for kind, rows in snapshot.rows.items():
            self.rows[kind] = self.rows.get(kind, 0) + rows
        for kind, count in snapshot.durability_counts.items():
            self.durability_counts[kind] = self.durability_counts.get(kind, 0) + count
        for kind, rows in snapshot.durability_rows.items():
            self.durability_rows[kind] = self.durability_rows.get(kind, 0) + rows
        self.simulated_seconds += snapshot.simulated_seconds
        self.read_seconds += snapshot.read_seconds
        self.write_seconds += snapshot.write_seconds
        self.durability_seconds += snapshot.durability_seconds
        self.logical_write_rows += snapshot.logical_write_rows

    def absorb(self, other: "OpCounter") -> None:
        """Fold another counter's totals into this one.

        Used when two tablets merge: the surviving tablet keeps the combined
        load history so cluster-level skew reports stay consistent.
        """
        for kind, count in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + count
        for kind, rows in other.rows.items():
            self.rows[kind] = self.rows.get(kind, 0) + rows
        for kind, count in other.durability_counts.items():
            self.durability_counts[kind] = self.durability_counts.get(kind, 0) + count
        for kind, rows in other.durability_rows.items():
            self.durability_rows[kind] = self.durability_rows.get(kind, 0) + rows
        self.simulated_seconds += other.simulated_seconds
        self.read_seconds += other.read_seconds
        self.write_seconds += other.write_seconds
        self.durability_seconds += other.durability_seconds
        self.logical_write_rows += other.logical_write_rows

    def count(self, kind: OpKind) -> int:
        """Number of calls of the given kind recorded so far."""
        return self.counts.get(kind, 0)

    def rows_touched(self, kind: OpKind) -> int:
        """Total rows touched by calls of the given kind."""
        return self.rows.get(kind, 0)

    def total_calls(self) -> int:
        """Total number of storage calls of any kind."""
        return sum(self.counts.values())

    def storage_rpc_count(self) -> int:
        """Storage RPC round trips issued so far.

        ``CACHE_READ`` records are excluded: cache-served rows ride along
        with an already-counted scan RPC instead of making their own.  This
        is the figure the batched query path must strictly beat against
        sequential execution of the same queries.
        """
        return sum(
            count
            for kind, count in self.counts.items()
            if kind is not OpKind.CACHE_READ
        )

    def snapshot(self) -> "OpCounterSnapshot":
        """Immutable copy of the current totals."""
        return OpCounterSnapshot(
            counts=dict(self.counts),
            rows=dict(self.rows),
            simulated_seconds=self.simulated_seconds,
            read_seconds=self.read_seconds,
            write_seconds=self.write_seconds,
            durability_counts=dict(self.durability_counts),
            durability_rows=dict(self.durability_rows),
            durability_seconds=self.durability_seconds,
            logical_write_rows=self.logical_write_rows,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.counts.clear()
        self.rows.clear()
        self.simulated_seconds = 0.0
        self.read_seconds = 0.0
        self.write_seconds = 0.0
        self.durability_counts.clear()
        self.durability_rows.clear()
        self.durability_seconds = 0.0
        self.logical_write_rows = 0


@dataclass(frozen=True)
class OpCounterSnapshot:
    """Frozen view of an :class:`OpCounter` at one instant."""

    counts: Dict[OpKind, int]
    rows: Dict[OpKind, int]
    simulated_seconds: float
    read_seconds: float
    write_seconds: float
    durability_counts: Dict[OpKind, int] = field(default_factory=dict)
    durability_rows: Dict[OpKind, int] = field(default_factory=dict)
    durability_seconds: float = 0.0
    logical_write_rows: int = 0

    def storage_rpc_count(self) -> int:
        """Storage RPC round trips in this snapshot (``CACHE_READ``
        excluded, exactly like :meth:`OpCounter.storage_rpc_count`)."""
        return sum(
            count
            for kind, count in self.counts.items()
            if kind is not OpKind.CACHE_READ
        )

    def delta(self, earlier: "OpCounterSnapshot") -> "OpCounterSnapshot":
        """Difference between this snapshot and an ``earlier`` one."""
        counts = {
            kind: self.counts.get(kind, 0) - earlier.counts.get(kind, 0)
            for kind in set(self.counts) | set(earlier.counts)
        }
        rows = {
            kind: self.rows.get(kind, 0) - earlier.rows.get(kind, 0)
            for kind in set(self.rows) | set(earlier.rows)
        }
        durability_counts = {
            kind: self.durability_counts.get(kind, 0)
            - earlier.durability_counts.get(kind, 0)
            for kind in set(self.durability_counts) | set(earlier.durability_counts)
        }
        durability_rows = {
            kind: self.durability_rows.get(kind, 0)
            - earlier.durability_rows.get(kind, 0)
            for kind in set(self.durability_rows) | set(earlier.durability_rows)
        }
        return OpCounterSnapshot(
            counts=counts,
            rows=rows,
            simulated_seconds=self.simulated_seconds - earlier.simulated_seconds,
            read_seconds=self.read_seconds - earlier.read_seconds,
            write_seconds=self.write_seconds - earlier.write_seconds,
            durability_counts=durability_counts,
            durability_rows=durability_rows,
            durability_seconds=self.durability_seconds - earlier.durability_seconds,
            logical_write_rows=self.logical_write_rows - earlier.logical_write_rows,
        )

"""A mapping that keeps its keys sorted and supports range scans.

BigTable tablets store rows ordered by key; range scans over contiguous key
intervals are the cheap access path the paper exploits.  ``SortedMap`` is the
in-process equivalent: a dict for point access plus a lazily maintained
sorted key list for ordered iteration, with ``bisect`` for range boundaries.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")


class SortedMap:
    """String-keyed mapping with ordered iteration and range scans."""

    def __init__(self) -> None:
        self._data: Dict[str, object] = {}
        self._keys: List[str] = []

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._keys)

    def get(self, key: str, default: Optional[object] = None) -> Optional[object]:
        """Point lookup."""
        return self._data.get(key, default)

    def set(self, key: str, value: object) -> None:
        """Insert or overwrite ``key``."""
        if key not in self._data:
            insort(self._keys, key)
        self._data[key] = value

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns ``True`` when it was present."""
        if key not in self._data:
            return False
        del self._data[key]
        index = bisect_left(self._keys, key)
        # The key is guaranteed present, so the bisect position holds it.
        del self._keys[index]
        return True

    def keys(self) -> List[str]:
        """All keys in ascending order (copy)."""
        return list(self._keys)

    def items(self) -> Iterator[Tuple[str, object]]:
        """All ``(key, value)`` pairs in key order."""
        for key in self._keys:
            yield key, self._data[key]

    def scan(
        self,
        start: Optional[str] = None,
        end: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Tuple[str, object]]:
        """Yield ``(key, value)`` for keys in ``[start, end)`` in order.

        ``None`` bounds are open-ended; ``limit`` caps the number of rows.
        """
        lo = 0 if start is None else bisect_left(self._keys, start)
        hi = len(self._keys) if end is None else bisect_left(self._keys, end)
        count = 0
        for index in range(lo, hi):
            if limit is not None and count >= limit:
                return
            key = self._keys[index]
            yield key, self._data[key]
            count += 1

    def count_range(self, start: Optional[str] = None, end: Optional[str] = None) -> int:
        """Number of keys in ``[start, end)`` without materialising them."""
        lo = 0 if start is None else bisect_left(self._keys, start)
        hi = len(self._keys) if end is None else bisect_left(self._keys, end)
        return max(hi - lo, 0)

    def first_key(self) -> Optional[str]:
        """Smallest key, or ``None`` when empty."""
        return self._keys[0] if self._keys else None

    def last_key(self) -> Optional[str]:
        """Largest key, or ``None`` when empty."""
        return self._keys[-1] if self._keys else None

    def floor_key(self, key: str) -> Optional[str]:
        """Largest stored key ``<= key``, or ``None``."""
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return key
        if index == 0:
            return None
        return self._keys[index - 1]

    def ceiling_key(self, key: str) -> Optional[str]:
        """Smallest stored key ``>= key``, or ``None``."""
        index = bisect_left(self._keys, key)
        if index >= len(self._keys):
            return None
        return self._keys[index]

    def split_off(self, key: str) -> "SortedMap":
        """Remove every entry with a key ``>= key`` and return them as a new map.

        This is the primitive behind tablet splits: the upper half of a
        tablet's rows moves wholesale into the new tablet in O(n).
        """
        index = bisect_left(self._keys, key)
        upper = SortedMap()
        upper._keys = self._keys[index:]
        upper._data = {moved: self._data.pop(moved) for moved in upper._keys}
        del self._keys[index:]
        return upper

    def absorb_after(self, other: "SortedMap") -> None:
        """Append every entry of ``other``, whose keys must all be greater
        than ours (the tablet-merge primitive; ``other`` is emptied)."""
        if self._keys and other._keys and other._keys[0] <= self._keys[-1]:
            raise ValueError("absorb_after requires strictly greater keys")
        self._keys.extend(other._keys)
        self._data.update(other._data)
        other.clear()

    def clear(self) -> None:
        """Remove every entry."""
        self._data.clear()
        self._keys.clear()

"""A mapping that keeps its keys sorted and supports range scans.

BigTable tablets store rows ordered by key; range scans over contiguous key
intervals are the cheap access path the paper exploits.  ``SortedMap`` is the
in-process equivalent, organised like a miniature LSM memtable:

* point access (``get``/``set``/``delete``/``in``/``len``) goes straight to a
  dict and is O(1);
* newly inserted keys land in an *unsorted write buffer* instead of being
  ``insort``-ed into the sorted run on every write (the seed behaviour, O(n)
  per insert because of the list memmove);
* the first *ordered* access (scan, iteration, floor/ceiling, split) merges
  the buffer into the sorted run in one pass — ``list.sort`` on the
  concatenation of two sorted runs is a galloping merge in C, so a burst of
  ``m`` inserts followed by a scan costs O(m log m + n) once instead of
  O(m·n) spread over the writes.

This matches how BigTable itself absorbs writes (memtable first, merged view
on read) and is what lets the group-commit write path stay O(1) per mutation
while scans still observe every earlier write of the batch.  Deletions of
already-merged keys are applied to the sorted run eagerly (a C-level
memmove); deletions of still-buffered keys just drop the buffer entry.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")


class SortedMap:
    """String-keyed mapping with ordered iteration and range scans."""

    __slots__ = ("_data", "_keys", "_pending")

    def __init__(self) -> None:
        #: Authoritative key -> value store (point access path).
        self._data: Dict[str, object] = {}
        #: Sorted run: every key *except* those still in the write buffer.
        self._keys: List[str] = []
        #: Unsorted write buffer of keys inserted since the last merge.  A
        #: dict doubles as an ordered set with O(1) add/discard.
        self._pending: Dict[str, None] = {}

    # ------------------------------------------------------------------
    # Memtable merge
    # ------------------------------------------------------------------
    def _merge(self) -> None:
        """Fold the write buffer into the sorted run (no-op when empty)."""
        pending = self._pending
        if not pending:
            return
        keys = self._keys
        if keys:
            keys.extend(pending)
            # Timsort detects the presorted prefix and the appended run and
            # gallops through the merge in C.
            keys.sort()
        else:
            self._keys = sorted(pending)
        pending.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        self._merge()
        return iter(self._keys)

    def get(self, key: str, default: Optional[object] = None) -> Optional[object]:
        """Point lookup."""
        return self._data.get(key, default)

    def set(self, key: str, value: object) -> None:
        """Insert or overwrite ``key`` (amortised O(1): new keys go to the
        write buffer and are merged into the sorted run lazily)."""
        if key not in self._data:
            self._pending[key] = None
        self._data[key] = value

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns ``True`` when it was present."""
        if key not in self._data:
            return False
        del self._data[key]
        if key in self._pending:
            del self._pending[key]
            return True
        index = bisect_left(self._keys, key)
        # The key is guaranteed present, so the bisect position holds it.
        del self._keys[index]
        return True

    def keys(self) -> List[str]:
        """All keys in ascending order (copy)."""
        self._merge()
        return list(self._keys)

    def iter_keys(
        self, start: Optional[str] = None, end: Optional[str] = None
    ) -> Iterator[str]:
        """Yield keys in ``[start, end)`` in order, without copying the run.

        The iterator-based counterpart of :meth:`keys` for hot callers that
        only walk the range once.  Mutating the map while iterating is
        undefined (exactly like iterating a dict).
        """
        self._merge()
        keys = self._keys
        lo = 0 if start is None else bisect_left(keys, start)
        hi = len(keys) if end is None else bisect_left(keys, end)
        for index in range(lo, hi):
            yield keys[index]

    def key_at(self, index: int) -> str:
        """The ``index``-th smallest key (supports negative indexes).

        O(1) after the merge — the tablet-split path uses this to find the
        median key without copying the whole run.
        """
        self._merge()
        return self._keys[index]

    def items(self) -> Iterator[Tuple[str, object]]:
        """All ``(key, value)`` pairs in key order."""
        self._merge()
        data = self._data
        for key in self._keys:
            yield key, data[key]

    def scan(
        self,
        start: Optional[str] = None,
        end: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Tuple[str, object]]:
        """Yield ``(key, value)`` for keys in ``[start, end)`` in order.

        ``None`` bounds are open-ended; ``limit`` caps the number of rows.
        """
        self._merge()
        keys = self._keys
        data = self._data
        lo = 0 if start is None else bisect_left(keys, start)
        hi = len(keys) if end is None else bisect_left(keys, end)
        if limit is not None and hi - lo > limit:
            hi = lo + limit
        for index in range(lo, hi):
            key = keys[index]
            yield key, data[key]

    def count_range(self, start: Optional[str] = None, end: Optional[str] = None) -> int:
        """Number of keys in ``[start, end)`` without materialising them."""
        self._merge()
        lo = 0 if start is None else bisect_left(self._keys, start)
        hi = len(self._keys) if end is None else bisect_left(self._keys, end)
        return max(hi - lo, 0)

    def first_key(self) -> Optional[str]:
        """Smallest key, or ``None`` when empty."""
        self._merge()
        return self._keys[0] if self._keys else None

    def last_key(self) -> Optional[str]:
        """Largest key, or ``None`` when empty."""
        self._merge()
        return self._keys[-1] if self._keys else None

    def floor_key(self, key: str) -> Optional[str]:
        """Largest stored key ``<= key``, or ``None``."""
        self._merge()
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return key
        if index == 0:
            return None
        return self._keys[index - 1]

    def ceiling_key(self, key: str) -> Optional[str]:
        """Smallest stored key ``>= key``, or ``None``."""
        self._merge()
        index = bisect_left(self._keys, key)
        if index >= len(self._keys):
            return None
        return self._keys[index]

    def split_off(self, key: str) -> "SortedMap":
        """Remove every entry with a key ``>= key`` and return them as a new map.

        This is the primitive behind tablet splits: the upper half of a
        tablet's rows moves wholesale into the new tablet in O(n).
        """
        self._merge()
        index = bisect_left(self._keys, key)
        upper = SortedMap()
        upper._keys = self._keys[index:]
        upper._data = {moved: self._data.pop(moved) for moved in upper._keys}
        del self._keys[index:]
        return upper

    def absorb_after(self, other: "SortedMap") -> None:
        """Append every entry of ``other``, whose keys must all be greater
        than ours (the tablet-merge primitive; ``other`` is emptied)."""
        self._merge()
        other._merge()
        if self._keys and other._keys and other._keys[0] <= self._keys[-1]:
            raise ValueError("absorb_after requires strictly greater keys")
        self._keys.extend(other._keys)
        self._data.update(other._data)
        other.clear()

    def clear(self) -> None:
        """Remove every entry."""
        self._data.clear()
        self._keys.clear()
        self._pending.clear()

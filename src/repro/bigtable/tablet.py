"""Row-range tablets: the sharding unit of the emulated BigTable.

A real BigTable table is partitioned into *tablets* — contiguous row-key
ranges served by independent tablet servers.  MOIST's central storage claim
(Section 3.2) is that school-tracked, space-filling-curve-keyed updates stay
sequential *per tablet*, so the cluster scales out by splitting hot tables
into more tablets.  The seed emulator collapsed every table into one flat
sorted map; this module restores the tablet layer:

* :class:`Tablet` — one contiguous key range with its own row store and its
  own :class:`~repro.bigtable.cost.OpCounter`, so per-tablet load (and
  therefore hot-tablet skew) is observable;
* :class:`TabletLocator` — routes row keys and range scans to tablets and
  performs threshold-driven splits and merges;
* :class:`TabletOptions` — the split/merge/group-commit knobs;
* :class:`TabletStats` — the frozen per-tablet accounting row surfaced by
  cluster reports and the scale-out experiment.

Tablet boundaries are metadata: splitting or merging never changes what a
scan returns, only how load is attributed and where contention concentrates.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.bigtable.cost import CostModel, OpCounter
from repro.bigtable.sorted_map import SortedMap
from repro.errors import ConfigurationError

#: Sentinel start key of the first tablet: compares <= every real row key.
OPEN_START = ""


@dataclass(frozen=True)
class TabletOptions:
    """Sharding and group-commit configuration of one table.

    ``split_threshold`` is deliberately small enough that the fig13-scale
    stress workloads (thousands of location rows) shard into several tablets
    with the defaults, making per-tablet skew visible without tuning.
    """

    #: A tablet holding more rows than this is split at its median key.
    split_threshold: int = 512
    #: Two adjacent tablets whose combined row count drops to this or below
    #: are merged back together.
    merge_threshold: int = 64
    #: Upper bound on tablets per table (BigTable's METADATA fan-out limit,
    #: scaled down).
    max_tablets: int = 128
    #: A group-commit buffer holding this many pending mutations flushes
    #: early instead of waiting for the batch to end.
    group_commit_size: int = 256

    def __post_init__(self) -> None:
        if self.split_threshold <= 1:
            raise ConfigurationError("split_threshold must be > 1")
        if self.merge_threshold < 0:
            raise ConfigurationError("merge_threshold must be >= 0")
        if self.merge_threshold >= self.split_threshold:
            raise ConfigurationError(
                "merge_threshold must be below split_threshold (split/merge "
                "thrashing otherwise)"
            )
        if self.max_tablets < 1:
            raise ConfigurationError("max_tablets must be >= 1")
        if self.group_commit_size < 1:
            raise ConfigurationError("group_commit_size must be >= 1")


@dataclass(frozen=True)
class TabletStats:
    """Frozen per-tablet accounting row for cluster-level reports."""

    table: str
    tablet_id: str
    start_key: str
    end_key: Optional[str]
    row_count: int
    op_calls: int
    simulated_seconds: float
    read_seconds: float
    write_seconds: float


class Tablet:
    """One contiguous row-key range ``[start_key, end_key)`` of a table.

    The end key is owned by the locator (it is simply the next tablet's
    start); a tablet only knows where it begins, its rows, and the operation
    counter that accumulates the load it served.
    """

    __slots__ = ("tablet_id", "start_key", "rows", "counter")

    def __init__(self, tablet_id: str, start_key: str, model: CostModel) -> None:
        self.tablet_id = tablet_id
        self.start_key = start_key
        self.rows = SortedMap()
        self.counter = OpCounter(model=model)

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tablet({self.tablet_id!r}, start={self.start_key!r}, "
            f"rows={self.row_count})"
        )


class TabletLocator:
    """Routes row keys to tablets and maintains the split/merge lifecycle.

    The locator plays the role of BigTable's METADATA table: an ordered list
    of tablet start keys, binary-searched per access.  Every table starts
    with a single tablet covering the whole keyspace.
    """

    def __init__(
        self,
        table_name: str,
        options: Optional[TabletOptions] = None,
        model: Optional[CostModel] = None,
    ) -> None:
        self.table_name = table_name
        self.options = options or TabletOptions()
        self._model = model or CostModel()
        self._next_id = 0
        self._tablets: List[Tablet] = [self._new_tablet(OPEN_START)]
        self._starts: List[str] = [OPEN_START]
        self.splits = 0
        self.merges = 0
        #: Called with a tablet id whenever that tablet's row set changed
        #: structurally (split or merge).  The table wires this to its block
        #: cache: rows that moved tablets are no longer resident where the
        #: cache thinks they are.
        self.on_tablet_changed: Optional[Callable[[str], None]] = None

    def _new_tablet(self, start_key: str) -> Tablet:
        tablet = Tablet(
            f"{self.table_name}/tablet-{self._next_id:04d}", start_key, self._model
        )
        self._next_id += 1
        return tablet

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tablets)

    def tablets(self) -> List[Tablet]:
        """Every tablet in key order (copy)."""
        return list(self._tablets)

    def _index_for(self, key: str) -> int:
        # bisect_right on the start keys: the owning tablet is the last one
        # whose start key is <= key.  The first start is "" so index >= 0.
        return bisect_right(self._starts, key) - 1

    def locate(self, key: str) -> Tablet:
        """The tablet whose key range contains ``key``."""
        return self._tablets[self._index_for(key)]

    def end_key_of(self, tablet: Tablet) -> Optional[str]:
        """Exclusive upper bound of a tablet's range (``None`` = open)."""
        index = self._index_for(tablet.start_key)
        if index + 1 < len(self._tablets):
            return self._tablets[index + 1].start_key
        return None

    def tablets_in_range(
        self, start: Optional[str] = None, end: Optional[str] = None
    ) -> List[Tablet]:
        """Tablets whose ranges intersect ``[start, end)``, in key order."""
        first = 0 if start is None else self._index_for(start)
        selected: List[Tablet] = []
        for index in range(first, len(self._tablets)):
            tablet = self._tablets[index]
            if index > first and end is not None and tablet.start_key >= end:
                break
            selected.append(tablet)
        return selected

    def scan(
        self,
        start: Optional[str] = None,
        end: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Tuple[Tablet, str, object]]:
        """Yield ``(tablet, row_key, row)`` over ``[start, end)`` in global
        key order, crossing tablet boundaries transparently."""
        remaining = limit
        for tablet in self.tablets_in_range(start, end):
            if remaining is not None and remaining <= 0:
                return
            for key, row in tablet.rows.scan(start, end, remaining):
                yield tablet, key, row
                if remaining is not None:
                    remaining -= 1

    def count_range(
        self, start: Optional[str] = None, end: Optional[str] = None
    ) -> int:
        """Number of rows in ``[start, end)`` across every tablet."""
        return sum(
            tablet.rows.count_range(start, end)
            for tablet in self.tablets_in_range(start, end)
        )

    def total_rows(self) -> int:
        """Rows stored across every tablet."""
        return sum(tablet.row_count for tablet in self._tablets)

    # ------------------------------------------------------------------
    # Split / merge lifecycle
    # ------------------------------------------------------------------
    def maybe_split(self, tablet: Tablet) -> bool:
        """Split ``tablet`` at its median key when it outgrew the threshold.

        Returns ``True`` when at least one split happened; oversized halves
        are split again immediately (a group commit can overshoot the
        threshold by a whole buffer before the check runs).
        """
        split_any = False
        queue = [tablet]
        while queue:
            candidate = queue.pop()
            if candidate.row_count <= self.options.split_threshold:
                continue
            if len(self._tablets) >= self.options.max_tablets:
                break
            # key_at merges the memtable buffer and indexes the sorted run
            # in place — no full key-list copy per split check.
            mid_key = candidate.rows.key_at(candidate.row_count // 2)
            if mid_key <= candidate.start_key:
                continue
            sibling = self._new_tablet(mid_key)
            sibling.rows = candidate.rows.split_off(mid_key)
            index = self._index_for(candidate.start_key)
            self._tablets.insert(index + 1, sibling)
            self._starts.insert(index + 1, mid_key)
            self.splits += 1
            split_any = True
            if self.on_tablet_changed is not None:
                self.on_tablet_changed(candidate.tablet_id)
                self.on_tablet_changed(sibling.tablet_id)
            queue.extend((candidate, sibling))
        return split_any

    def maybe_merge(self, tablet: Tablet) -> bool:
        """Merge ``tablet`` with a neighbour when both shrank enough.

        The right neighbour is preferred (its rows append in O(1) amortised);
        the survivor absorbs the neighbour's counter so load history is not
        lost.  Returns ``True`` when a merge happened.
        """
        if len(self._tablets) <= 1:
            return False
        index = self._index_for(tablet.start_key)
        for left_index in (index, index - 1):
            right_index = left_index + 1
            if left_index < 0 or right_index >= len(self._tablets):
                continue
            left = self._tablets[left_index]
            right = self._tablets[right_index]
            if left.row_count + right.row_count > self.options.merge_threshold:
                continue
            left.rows.absorb_after(right.rows)
            left.counter.absorb(right.counter)
            del self._tablets[right_index]
            del self._starts[right_index]
            self.merges += 1
            if self.on_tablet_changed is not None:
                self.on_tablet_changed(left.tablet_id)
                self.on_tablet_changed(right.tablet_id)
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> List[TabletStats]:
        """Frozen per-tablet accounting, in key order."""
        return [
            TabletStats(
                table=self.table_name,
                tablet_id=tablet.tablet_id,
                start_key=tablet.start_key,
                end_key=self.end_key_of(tablet),
                row_count=tablet.row_count,
                op_calls=tablet.counter.total_calls(),
                simulated_seconds=tablet.counter.simulated_seconds,
                read_seconds=tablet.counter.read_seconds,
                write_seconds=tablet.counter.write_seconds,
            )
            for tablet in self._tablets
        ]

    def reset_counters(self) -> None:
        """Zero every tablet's counter (split/merge tallies survive)."""
        for tablet in self._tablets:
            tablet.counter.reset()

    def clear(self) -> None:
        """Drop every row and collapse back to a single empty tablet."""
        self._tablets = [self._new_tablet(OPEN_START)]
        self._starts = [OPEN_START]

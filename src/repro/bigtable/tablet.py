"""Row-range tablets: the sharding unit of the emulated BigTable.

A real BigTable table is partitioned into *tablets* — contiguous row-key
ranges served by independent tablet servers.  MOIST's central storage claim
(Section 3.2) is that school-tracked, space-filling-curve-keyed updates stay
sequential *per tablet*, so the cluster scales out by splitting hot tables
into more tablets.  The seed emulator collapsed every table into one flat
sorted map; this module restores the tablet layer:

* :class:`Tablet` — one contiguous key range with its own row store and its
  own :class:`~repro.bigtable.cost.OpCounter`, so per-tablet load (and
  therefore hot-tablet skew) is observable;
* :class:`TabletLocator` — routes row keys and range scans to tablets and
  performs threshold-driven splits and merges;
* :class:`TabletOptions` — the split/merge/group-commit knobs;
* :class:`TabletStats` — the frozen per-tablet accounting row surfaced by
  cluster reports and the scale-out experiment.

Tablet boundaries are metadata: splitting or merging never changes what a
scan returns, only how load is attributed and where contention concentrates.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from heapq import merge as heap_merge
from typing import Callable, Iterator, List, Optional, Tuple

from repro.bigtable.cost import CostModel, OpCounter
from repro.bigtable.lsm import (
    MEMTABLE_SOURCE,
    TOMBSTONE,
    CommitLog,
    SSTable,
    merge_runs,
)
from repro.bigtable.sorted_map import SortedMap
from repro.errors import ConfigurationError

#: Sentinel start key of the first tablet: compares <= every real row key.
OPEN_START = ""


@dataclass(frozen=True)
class TabletOptions:
    """Sharding and group-commit configuration of one table.

    ``split_threshold`` is deliberately small enough that the fig13-scale
    stress workloads (thousands of location rows) shard into several tablets
    with the defaults, making per-tablet skew visible without tuning.
    """

    #: A tablet holding more rows than this is split at its median key.
    split_threshold: int = 512
    #: Two adjacent tablets whose combined row count drops to this or below
    #: are merged back together.
    merge_threshold: int = 64
    #: Upper bound on tablets per table (BigTable's METADATA fan-out limit,
    #: scaled down).
    max_tablets: int = 128
    #: A group-commit buffer holding this many pending mutations flushes
    #: early instead of waiting for the batch to end.
    group_commit_size: int = 256
    #: A memtable holding at least this many entries is flushed into an
    #: immutable SSTable run (a *minor compaction*).  ``None`` — the
    #: default — flushes only on demand (``Table.flush_memtables``), which
    #: keeps the read path single-structure and every pre-LSM experiment
    #: bit-identical; durability experiments dial it down to exercise the
    #: flush/compaction/recovery machinery.
    memtable_flush_rows: Optional[int] = None
    #: After a flush, a tablet holding more runs than this merges its
    #: cheapest contiguous window back down (size-tiered compaction).  Wide
    #: enough that runs tier geometrically — a tighter cap forces the big
    #: runs into merges constantly and write amplification climbs past the
    #: ~3x budget the engine aims for.
    compaction_max_runs: int = 8
    #: Whether mutations append to the per-tablet commit log.  On by
    #: default: log appends charge only the separate durability ledger, so
    #: they are invisible to the calibrated service times while making
    #: every tablet crash-recoverable.
    commit_log_enabled: bool = True

    def __post_init__(self) -> None:
        if self.split_threshold <= 1:
            raise ConfigurationError("split_threshold must be > 1")
        if self.merge_threshold < 0:
            raise ConfigurationError("merge_threshold must be >= 0")
        if self.merge_threshold >= self.split_threshold:
            raise ConfigurationError(
                "merge_threshold must be below split_threshold (split/merge "
                "thrashing otherwise)"
            )
        if self.max_tablets < 1:
            raise ConfigurationError("max_tablets must be >= 1")
        if self.group_commit_size < 1:
            raise ConfigurationError("group_commit_size must be >= 1")
        if self.memtable_flush_rows is not None and self.memtable_flush_rows < 1:
            raise ConfigurationError("memtable_flush_rows must be >= 1 or None")
        if self.compaction_max_runs < 1:
            raise ConfigurationError("compaction_max_runs must be >= 1")


@dataclass(frozen=True)
class TabletStats:
    """Frozen per-tablet accounting row for cluster-level reports."""

    table: str
    tablet_id: str
    start_key: str
    end_key: Optional[str]
    row_count: int
    op_calls: int
    simulated_seconds: float
    read_seconds: float
    write_seconds: float
    #: LSM engine state and durability accounting (additive to the
    #: paper-facing fields above).
    run_count: int = 0
    log_records: int = 0
    durability_seconds: float = 0.0
    write_amplification: float = 1.0


class Tablet:
    """One contiguous row-key range ``[start_key, end_key)`` of a table,
    served LSM-style.

    The tablet's state is the classic BigTable triple: ``rows`` is the
    *memtable* (recently committed rows, or :data:`TOMBSTONE` markers
    shadowing deleted run rows), ``runs`` the immutable SSTables produced
    by flushes and compactions (newest first), and ``log`` the commit log
    holding every mutation since the last flush.  Reads merge the triple
    with newest-version-wins semantics; a mutation of a run-resident row
    first *pulls it back* into the memtable (copy-on-write), so runs are
    never modified in place and a flushed row's newest version always lives
    in exactly one place.

    The end key is owned by the locator (it is simply the next tablet's
    start); the tablet only knows where it begins, its rows, and the
    operation counter that accumulates the load it served.
    """

    __slots__ = (
        "tablet_id",
        "start_key",
        "rows",
        "runs",
        "log",
        "counter",
        "_tombstones",
        "_run_extra",
        "_next_run",
    )

    def __init__(self, tablet_id: str, start_key: str, model: CostModel) -> None:
        self.tablet_id = tablet_id
        self.start_key = start_key
        self.rows = SortedMap()
        self.runs: List[SSTable] = []
        self.log = CommitLog()
        self.counter = OpCounter(model=model)
        #: TOMBSTONE entries currently in the memtable.
        self._tombstones = 0
        #: Live rows whose newest version lives in a run (not shadowed by
        #: any memtable entry).  ``row_count`` = memtable live + this.
        self._run_extra = 0
        self._next_run = 0

    @property
    def row_count(self) -> int:
        return len(self.rows) - self._tombstones + self._run_extra

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tablet({self.tablet_id!r}, start={self.start_key!r}, "
            f"rows={self.row_count}, runs={len(self.runs)}, log={len(self.log)})"
        )

    # ------------------------------------------------------------------
    # Merged (LSM) reads
    # ------------------------------------------------------------------
    def run_lookup(self, key: str) -> Optional[object]:
        """Newest run version of ``key`` (row or TOMBSTONE), or ``None``.

        Runs are consulted newest-first; each run's Bloom filter rejects
        most absent keys before the binary search.
        """
        for run in self.runs:
            value = run.get(key)
            if value is not None:
                return value
        return None

    def live_row(self, key: str) -> Optional[object]:
        """The current row of ``key`` across memtable and runs, or ``None``
        (absent or deleted).  Never mutates: run rows are returned as-is and
        must not be modified by the caller."""
        row = self.rows.get(key)
        if row is not None:
            return None if row is TOMBSTONE else row
        if self.runs:
            value = self.run_lookup(key)
            if value is not None and value is not TOMBSTONE:
                return value
        return None

    def pull_back(self, key: str, value: object) -> object:
        """Install a mutable copy of a run-resident row into the memtable.

        ``value`` is the newest (live) run version the caller already
        located via :meth:`run_lookup`; the copy shadows it from now on.
        """
        copy = value.copy()
        self.rows.set(key, copy)
        self._run_extra -= 1
        return copy

    def ensure_writable(self, key: str) -> Optional[object]:
        """The memtable row of ``key`` ready for in-place mutation.

        Pulls a run-resident row back into the memtable as a copy first
        (runs are immutable).  Returns ``None`` when the row does not exist
        (absent everywhere, or deleted) — the caller creates it and
        registers it through :meth:`memtable_put`.
        """
        row = self.rows.get(key)
        if row is not None:
            return None if row is TOMBSTONE else row
        if self.runs:
            value = self.run_lookup(key)
            if value is not None and value is not TOMBSTONE:
                return self.pull_back(key, value)
        return None

    def memtable_put(self, key: str, row: object) -> None:
        """Insert a freshly created row for a key :meth:`ensure_writable`
        reported absent (replacing a tombstone if one shadowed the key)."""
        if self.rows.get(key) is TOMBSTONE:
            self._tombstones -= 1
        self.rows.set(key, row)

    def drop_row(self, key: str) -> bool:
        """Delete ``key``'s row from the merged view; returns whether a live
        row existed.  Writes a tombstone when any run still holds a live
        version (removing only the memtable entry would resurrect it)."""
        existing = self.rows.get(key)
        if existing is TOMBSTONE:
            return False
        if existing is not None:
            if self.runs and self._run_holds_live(key):
                self.rows.set(key, TOMBSTONE)
                self._tombstones += 1
            else:
                self.rows.delete(key)
            return True
        if not self.runs or not self._run_holds_live(key):
            return False
        self.rows.set(key, TOMBSTONE)
        self._tombstones += 1
        self._run_extra -= 1
        return True

    def _run_holds_live(self, key: str) -> bool:
        value = self.run_lookup(key)
        return value is not None and value is not TOMBSTONE

    def merged_scan(
        self,
        start: Optional[str] = None,
        end: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Tuple[str, object, str]]:
        """Yield ``(key, row, source)`` over ``[start, end)`` in key order.

        ``source`` is the run id serving the row's newest version, or
        :data:`MEMTABLE_SOURCE` — the block cache prices rows by it.  The
        caller must not mutate the tablet while iterating (pull-backs move
        rows between structures).
        """
        if not self.runs:
            # Fast path: no runs means no tombstones either — the memtable
            # IS the merged view, exactly the pre-LSM behaviour.
            for key, row in self.rows.scan(start, end, limit):
                yield key, row, MEMTABLE_SOURCE
            return
        yield from self._merged_scan_runs(start, end, limit)

    def _merged_scan_runs(
        self, start: Optional[str], end: Optional[str], limit: Optional[int]
    ) -> Iterator[Tuple[str, object, str]]:
        # Decorate each stream with its shadowing rank (memtable = 0, then
        # runs newest-first) so the heap merge yields the newest version of
        # every key first; older duplicates are skipped.  The helper binds
        # ``rank`` per stream (a bare genexp would close over the loop
        # variable and give every stream the final rank).
        def decorate(rank: int, stream: Iterator[Tuple[str, object]]):
            return ((key, rank, value) for key, value in stream)

        streams = [
            decorate(rank, source.scan(start, end))
            for rank, source in enumerate([self.rows] + self.runs)
        ]
        sources = [MEMTABLE_SOURCE] + [run.run_id for run in self.runs]
        yielded = 0
        last_key: Optional[str] = None
        for key, rank, value in heap_merge(*streams):
            if key == last_key:
                continue
            last_key = key
            if value is TOMBSTONE:
                continue
            yield key, value, sources[rank]
            yielded += 1
            if limit is not None and yielded >= limit:
                return

    def iter_live_keys(
        self, start: Optional[str] = None, end: Optional[str] = None
    ) -> Iterator[str]:
        """Every live row key in ``[start, end)`` across memtable and runs."""
        if not self.runs:
            return self.rows.iter_keys(start, end)
        return (key for key, _, _ in self._merged_scan_runs(start, end, None))

    def merged_count_range(
        self, start: Optional[str] = None, end: Optional[str] = None
    ) -> int:
        """Number of live rows in ``[start, end)``."""
        if not self.runs:
            return self.rows.count_range(start, end)
        return sum(1 for _ in self._merged_scan_runs(start, end, None))

    def median_key(self) -> str:
        """The middle live key (the tablet-split point)."""
        if not self.runs:
            # key_at merges the memtable buffer and indexes the sorted run
            # in place — no full key-list copy per split check.
            return self.rows.key_at(len(self.rows) // 2)
        keys = list(self.iter_live_keys())
        return keys[len(keys) // 2]

    # ------------------------------------------------------------------
    # Flush (minor compaction) and merging compaction
    # ------------------------------------------------------------------
    def _make_run_id(self) -> str:
        run_id = f"{self.tablet_id}/run-{self._next_run:04d}"
        self._next_run += 1
        return run_id

    def flush(self, max_seqno: int) -> int:
        """Freeze the memtable into a new SSTable run (minor compaction).

        The run inherits every memtable entry — tombstones included when an
        older run still holds the key they shadow — and the commit log is
        truncated whole (each of its records' effects now lives in the run).
        Returns the number of rows written (0 when the memtable is empty).
        """
        if len(self.rows) == 0:
            # An empty memtable still truncates the log: every record since
            # the last flush net-cancelled (a mutation shadowing a run row
            # would have left a memtable entry), so replaying the tail
            # reproduces exactly this empty memtable.  Without this, a
            # write/delete cycle grows the log past the flush threshold
            # that exists to bound it.
            self.log.clear()
            return 0
        keys: List[str] = []
        values: List[object] = []
        live_moved = len(self.rows) - self._tombstones
        for key, value in self.rows.items():
            if value is TOMBSTONE and not self._run_holds_live(key):
                # Nothing older left to shadow: GC the tombstone at flush.
                continue
            keys.append(key)
            values.append(value)
        if keys:
            self.runs.insert(0, SSTable(self._make_run_id(), keys, values, max_seqno))
        self.rows.clear()
        self._tombstones = 0
        self._run_extra += live_moved
        self.log.clear()
        return len(keys)

    def compaction_window(self, max_runs: int) -> List[SSTable]:
        """The contiguous run window a size-tiered compaction would merge.

        Chooses the cheapest (fewest total rows) contiguous window just
        large enough to bring the run count back to ``max_runs`` — merging
        similarly sized neighbours first, which is what keeps write
        amplification bounded.  Empty when no compaction is due.  Windows
        are always contiguous in recency order: merging non-adjacent runs
        would break newest-version-wins shadowing.
        """
        excess = len(self.runs) - max_runs
        if excess <= 0:
            return []
        width = excess + 1
        sizes = [len(run) for run in self.runs]
        best_start = 0
        best_cost = sum(sizes[:width])
        window_cost = best_cost
        for start in range(1, len(self.runs) - width + 1):
            window_cost += sizes[start + width - 1] - sizes[start - 1]
            if window_cost < best_cost:
                best_cost = window_cost
                best_start = start
        return self.runs[best_start : best_start + width]

    def compact(
        self, selected: List[SSTable], drop_all_tombstones: bool
    ) -> Tuple[int, int]:
        """Merge a contiguous window of runs into one (newest wins).

        Returns ``(rows_read, rows_written)``.  Tombstones are dropped when
        the window reaches the tablet's oldest run (nothing below remains to
        shadow) or the caller forces it (major compaction).
        """
        if not selected:
            return 0, 0
        first = self.runs.index(selected[0])
        includes_oldest = first + len(selected) == len(self.runs)
        rows_read = sum(len(run) for run in selected)
        keys, values = merge_runs(
            selected, drop_tombstones=drop_all_tombstones or includes_oldest
        )
        replacement: List[SSTable] = []
        if keys:
            run = SSTable(
                self._make_run_id(), keys, values, selected[0].max_seqno
            )
            replacement.append(run)
        self.runs[first : first + len(selected)] = replacement
        if not self.runs and self._tombstones:
            # Every run is gone: memtable tombstones shadow nothing anymore.
            for key in [k for k, v in list(self.rows.items()) if v is TOMBSTONE]:
                self.rows.delete(key)
                self._tombstones -= 1
        return rows_read, len(keys)

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose the memtable (a tablet-server crash).  Runs, commit log and
        boundary metadata are durable and survive."""
        self.rows.clear()
        self._tombstones = 0
        self._run_extra = self._count_run_live()

    def _count_run_live(self) -> int:
        """Live keys across runs alone (newest version is not a tombstone)."""
        if not self.runs:
            return 0
        seen: dict = {}
        for run in self.runs:  # newest first: first sighting wins
            for key, value in run.items():
                if key not in seen:
                    seen[key] = value is not TOMBSTONE
        return sum(1 for live in seen.values() if live)

    def recompute_counts(self) -> None:
        """Rebuild the tombstone / run-extra tallies from scratch (used
        after a split repartitioned all three structures)."""
        self._tombstones = sum(
            1 for _, value in self.rows.items() if value is TOMBSTONE
        )
        if not self.runs:
            self._run_extra = 0
            return
        # run_extra counts keys whose newest run version is live and that no
        # memtable entry (row or tombstone) shadows.
        shadowed_live = sum(
            1 for key, _ in self.rows.items() if self._run_holds_live(key)
        )
        self._run_extra = self._count_run_live() - shadowed_live

    def write_amplification(self) -> float:
        """Physical rows written (log + flush + compaction) per logical row."""
        return self.counter.write_amplification()


class TabletLocator:
    """Routes row keys to tablets and maintains the split/merge lifecycle.

    The locator plays the role of BigTable's METADATA table: an ordered list
    of tablet start keys, binary-searched per access.  Every table starts
    with a single tablet covering the whole keyspace.
    """

    def __init__(
        self,
        table_name: str,
        options: Optional[TabletOptions] = None,
        model: Optional[CostModel] = None,
    ) -> None:
        self.table_name = table_name
        self.options = options or TabletOptions()
        self._model = model or CostModel()
        self._next_id = 0
        self._tablets: List[Tablet] = [self._new_tablet(OPEN_START)]
        self._starts: List[str] = [OPEN_START]
        self.splits = 0
        self.merges = 0
        #: Called with a tablet id whenever that tablet's row set changed
        #: structurally (split or merge).  The table wires this to its block
        #: cache: rows that moved tablets are no longer resident where the
        #: cache thinks they are.
        self.on_tablet_changed: Optional[Callable[[str], None]] = None

    def _new_tablet(self, start_key: str) -> Tablet:
        tablet = Tablet(
            f"{self.table_name}/tablet-{self._next_id:04d}", start_key, self._model
        )
        self._next_id += 1
        return tablet

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tablets)

    def tablets(self) -> List[Tablet]:
        """Every tablet in key order (copy)."""
        return list(self._tablets)

    def _index_for(self, key: str) -> int:
        # bisect_right on the start keys: the owning tablet is the last one
        # whose start key is <= key.  The first start is "" so index >= 0.
        return bisect_right(self._starts, key) - 1

    def locate(self, key: str) -> Tablet:
        """The tablet whose key range contains ``key``."""
        return self._tablets[self._index_for(key)]

    def end_key_of(self, tablet: Tablet) -> Optional[str]:
        """Exclusive upper bound of a tablet's range (``None`` = open)."""
        index = self._index_for(tablet.start_key)
        if index + 1 < len(self._tablets):
            return self._tablets[index + 1].start_key
        return None

    def tablets_in_range(
        self, start: Optional[str] = None, end: Optional[str] = None
    ) -> List[Tablet]:
        """Tablets whose ranges intersect ``[start, end)``, in key order."""
        first = 0 if start is None else self._index_for(start)
        selected: List[Tablet] = []
        for index in range(first, len(self._tablets)):
            tablet = self._tablets[index]
            if index > first and end is not None and tablet.start_key >= end:
                break
            selected.append(tablet)
        return selected

    def scan(
        self,
        start: Optional[str] = None,
        end: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Tuple[Tablet, str, object]]:
        """Yield ``(tablet, row_key, row)`` over ``[start, end)`` in global
        key order, crossing tablet boundaries transparently (rows come from
        each tablet's merged memtable + run view)."""
        remaining = limit
        for tablet in self.tablets_in_range(start, end):
            if remaining is not None and remaining <= 0:
                return
            for key, row, _ in tablet.merged_scan(start, end, remaining):
                yield tablet, key, row
                if remaining is not None:
                    remaining -= 1

    def count_range(
        self, start: Optional[str] = None, end: Optional[str] = None
    ) -> int:
        """Number of live rows in ``[start, end)`` across every tablet."""
        return sum(
            tablet.merged_count_range(start, end)
            for tablet in self.tablets_in_range(start, end)
        )

    def total_rows(self) -> int:
        """Rows stored across every tablet."""
        return sum(tablet.row_count for tablet in self._tablets)

    # ------------------------------------------------------------------
    # Split / merge lifecycle
    # ------------------------------------------------------------------
    def maybe_split(self, tablet: Tablet) -> bool:
        """Split ``tablet`` at its median key when it outgrew the threshold.

        Returns ``True`` when at least one split happened; oversized halves
        are split again immediately (a group commit can overshoot the
        threshold by a whole buffer before the check runs).
        """
        split_any = False
        queue = [tablet]
        while queue:
            candidate = queue.pop()
            if candidate.row_count <= self.options.split_threshold:
                continue
            if len(self._tablets) >= self.options.max_tablets:
                break
            mid_key = candidate.median_key()
            if mid_key <= candidate.start_key:
                continue
            sibling = self._new_tablet(mid_key)
            sibling.rows = candidate.rows.split_off(mid_key)
            if candidate.runs:
                # Children initially share the parent's SSTables as O(1)
                # sliced views (empty slices are dropped); the commit log is
                # partitioned by key so each child owns exactly the
                # unflushed history of its range.
                sibling.runs = [
                    piece
                    for run in candidate.runs
                    if len(piece := run.slice(mid_key, None))
                ]
                candidate.runs = [
                    piece
                    for run in candidate.runs
                    if len(piece := run.slice(None, mid_key))
                ]
            sibling.log = candidate.log.split_off(mid_key)
            candidate.recompute_counts()
            sibling.recompute_counts()
            index = self._index_for(candidate.start_key)
            self._tablets.insert(index + 1, sibling)
            self._starts.insert(index + 1, mid_key)
            self.splits += 1
            split_any = True
            if self.on_tablet_changed is not None:
                self.on_tablet_changed(candidate.tablet_id)
                self.on_tablet_changed(sibling.tablet_id)
            queue.extend((candidate, sibling))
        return split_any

    def maybe_merge(self, tablet: Tablet) -> bool:
        """Merge ``tablet`` with a neighbour when both shrank enough.

        The right neighbour is preferred (its rows append in O(1) amortised);
        the survivor absorbs the neighbour's counter so load history is not
        lost.  Returns ``True`` when a merge happened.
        """
        if len(self._tablets) <= 1:
            return False
        index = self._index_for(tablet.start_key)
        for left_index in (index, index - 1):
            right_index = left_index + 1
            if left_index < 0 or right_index >= len(self._tablets):
                continue
            left = self._tablets[left_index]
            right = self._tablets[right_index]
            if left.row_count + right.row_count > self.options.merge_threshold:
                continue
            left.rows.absorb_after(right.rows)
            if right.runs or left.runs:
                # Union of the two (disjoint-range) run sets, newest first.
                # Slices of the same underlying run — a split being undone —
                # coalesce back into a single view so the (tablet, run)
                # cache keys stay unique.  run_id is the seqno tiebreaker:
                # sibling tablets flushed in one pass share max_seqno, and
                # a foreign equal-seqno run sorted between two slices of
                # the same run would defeat the adjacent-only coalesce.
                combined = sorted(
                    left.runs + right.runs,
                    key=lambda run: (-run.max_seqno, run.run_id, run.min_key or ""),
                )
                merged_runs: List[SSTable] = []
                for run in combined:
                    if merged_runs:
                        rejoined = merged_runs[-1].try_coalesce(run)
                        if rejoined is not None:
                            merged_runs[-1] = rejoined
                            continue
                    merged_runs.append(run)
                left.runs = merged_runs
                left._run_extra += right._run_extra
                left._tombstones += right._tombstones
            left.log.absorb(right.log)
            left.counter.absorb(right.counter)
            del self._tablets[right_index]
            del self._starts[right_index]
            self.merges += 1
            if self.on_tablet_changed is not None:
                self.on_tablet_changed(left.tablet_id)
                self.on_tablet_changed(right.tablet_id)
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> List[TabletStats]:
        """Frozen per-tablet accounting, in key order."""
        return [
            TabletStats(
                table=self.table_name,
                tablet_id=tablet.tablet_id,
                start_key=tablet.start_key,
                end_key=self.end_key_of(tablet),
                row_count=tablet.row_count,
                op_calls=tablet.counter.total_calls(),
                simulated_seconds=tablet.counter.simulated_seconds,
                read_seconds=tablet.counter.read_seconds,
                write_seconds=tablet.counter.write_seconds,
                run_count=len(tablet.runs),
                log_records=len(tablet.log),
                durability_seconds=tablet.counter.durability_seconds,
                write_amplification=tablet.write_amplification(),
            )
            for tablet in self._tablets
        ]

    def reset_counters(self) -> None:
        """Zero every tablet's counter (split/merge tallies survive)."""
        for tablet in self._tablets:
            tablet.counter.reset()

    def clear(self) -> None:
        """Drop every row and collapse back to a single empty tablet."""
        self._tablets = [self._new_tablet(OPEN_START)]
        self._starts = [OPEN_START]

"""In-process BigTable emulator.

MOIST's storage layer is Google BigTable (Section 3.1).  The emulator here
reproduces the parts of BigTable's contract that the paper's algorithms rely
on:

* rows are kept **sorted by key**, so contiguous key ranges can be read with
  a single range scan (the basis of both NN search and clustering reads);
* values live in **column families** that are individually configured to be
  in-memory or on-disk, which is how the Location/Affiliation tables separate
  fresh records from aged ones;
* every cell is **timestamped** and a family keeps multiple versions;
* **batch** mutations and reads amortise the per-RPC overhead.

All operations are accounted against a :class:`~repro.bigtable.cost.CostModel`
so experiments can report simulated service time (and therefore QPS) that
reflects the *operation mix* of each algorithm rather than Python's
interpreter speed.  See DESIGN.md Section 6.

Since PR 4 every tablet is a full LSM engine: a sequence-numbered
**commit log** with group-commit fsync batching, a **memtable**, immutable
**SSTable runs** with key-range/Bloom metadata produced by minor compactions
(memtable flushes) and consolidated by size-tiered/major compactions with
tombstone garbage collection, and **crash recovery** that replays each
tablet's log tail over its runs to bit-identical state.  Durability work is
charged to a separate ledger so paper-facing service times stay calibrated.

Since PR 6 the backend protocols have multiple implementations: besides
the in-process emulator, :mod:`repro.bigtable.process_backend` federates
shard groups running in-process (:class:`LocalShardedBackend`) or in
forked worker processes (:class:`ProcessShardedBackend`) behind batched
RPC framing, with bit-identical merged accounting at every worker count.
"""

from repro.bigtable.sorted_map import SortedMap
from repro.bigtable.cost import CostModel, OpCounter, OpKind
from repro.bigtable.lsm import (
    MEMTABLE_SOURCE,
    TOMBSTONE,
    BloomFilter,
    CommitLog,
    RecoveryReport,
    SSTable,
    TableRecovery,
)
from repro.bigtable.scan import (
    BlockCache,
    BlockCacheOptions,
    ScanPlan,
    ScanSegment,
    Scanner,
    TabletCacheStats,
)
from repro.bigtable.tablet import Tablet, TabletLocator, TabletOptions, TabletStats
from repro.bigtable.table import ColumnFamily, Cell, Table
from repro.bigtable.backend import (
    CacheAwareBackend,
    ShardedBackend,
    StorageBackend,
    TabletSkew,
)
from repro.bigtable.emulator import BigtableEmulator

#: The federated backends live behind a lazy import (PEP 562):
#: ``process_backend`` pulls in the server package (RPC framing, shard
#: services), which itself imports this package — importing it eagerly
#: here would close that cycle during interpreter start-up.
_FEDERATED_EXPORTS = (
    "LocalShardedBackend",
    "ProcessShardedBackend",
    "WorkerPool",
    "build_recipes",
    "make_scaleout_backend",
)


def __getattr__(name: str):
    if name in _FEDERATED_EXPORTS:
        from repro.bigtable import process_backend

        return getattr(process_backend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SortedMap",
    "CostModel",
    "OpCounter",
    "OpKind",
    "MEMTABLE_SOURCE",
    "TOMBSTONE",
    "BloomFilter",
    "CommitLog",
    "SSTable",
    "TableRecovery",
    "RecoveryReport",
    "BlockCache",
    "BlockCacheOptions",
    "ScanPlan",
    "ScanSegment",
    "Scanner",
    "TabletCacheStats",
    "ColumnFamily",
    "Cell",
    "Table",
    "Tablet",
    "TabletLocator",
    "TabletOptions",
    "TabletStats",
    "StorageBackend",
    "ShardedBackend",
    "CacheAwareBackend",
    "TabletSkew",
    "BigtableEmulator",
    "LocalShardedBackend",
    "ProcessShardedBackend",
    "WorkerPool",
    "build_recipes",
    "make_scaleout_backend",
]

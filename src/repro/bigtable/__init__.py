"""In-process BigTable emulator.

MOIST's storage layer is Google BigTable (Section 3.1).  The emulator here
reproduces the parts of BigTable's contract that the paper's algorithms rely
on:

* rows are kept **sorted by key**, so contiguous key ranges can be read with
  a single range scan (the basis of both NN search and clustering reads);
* values live in **column families** that are individually configured to be
  in-memory or on-disk, which is how the Location/Affiliation tables separate
  fresh records from aged ones;
* every cell is **timestamped** and a family keeps multiple versions;
* **batch** mutations and reads amortise the per-RPC overhead.

All operations are accounted against a :class:`~repro.bigtable.cost.CostModel`
so experiments can report simulated service time (and therefore QPS) that
reflects the *operation mix* of each algorithm rather than Python's
interpreter speed.  See DESIGN.md Section 6.
"""

from repro.bigtable.sorted_map import SortedMap
from repro.bigtable.cost import CostModel, OpCounter, OpKind
from repro.bigtable.scan import (
    BlockCache,
    BlockCacheOptions,
    ScanPlan,
    ScanSegment,
    Scanner,
    TabletCacheStats,
)
from repro.bigtable.tablet import Tablet, TabletLocator, TabletOptions, TabletStats
from repro.bigtable.table import ColumnFamily, Cell, Table
from repro.bigtable.backend import (
    CacheAwareBackend,
    ShardedBackend,
    StorageBackend,
    TabletSkew,
)
from repro.bigtable.emulator import BigtableEmulator

__all__ = [
    "SortedMap",
    "CostModel",
    "OpCounter",
    "OpKind",
    "BlockCache",
    "BlockCacheOptions",
    "ScanPlan",
    "ScanSegment",
    "Scanner",
    "TabletCacheStats",
    "ColumnFamily",
    "Cell",
    "Table",
    "Tablet",
    "TabletLocator",
    "TabletOptions",
    "TabletStats",
    "StorageBackend",
    "ShardedBackend",
    "CacheAwareBackend",
    "TabletSkew",
    "BigtableEmulator",
]

"""Scan plans, the scanner and the tablet-server block cache.

The write path (PR 1) is tablet-routed and batched; this module gives the
read path the same machinery.  A range read is no longer an opaque walk over
the locator: it is *compiled* into a :class:`ScanPlan` — the ordered list of
tablets whose key ranges intersect the requested interval — and *executed*
by a :class:`Scanner`, which charges every planned tablet's ledger (empty
probes included, so cold tablets show up in ``tablet_load_report``) and
consults the table's :class:`BlockCache` while streaming rows.

The block cache models BigTable's tablet-server block cache (the SSTable
block LRU of the original paper's Section 6.3): rows live in fixed-size
*key blocks* — all rows sharing a row-key prefix — and a block that was
scanned recently is resident in the tablet server's memory.  Scanning a
warm block still costs the scan RPC (the client always makes the round
trip) but its rows are served at :attr:`~repro.bigtable.cost.CostModel.\
cache_read_row` instead of ``scan_row``, recorded under
:attr:`~repro.bigtable.cost.OpKind.CACHE_READ` so experiments can report
hit rates and cache-adjusted read time separately.  Mutating a row evicts
its block; tablet splits and merges evict every block of the tablets
involved (their rows moved to a different server).

The cache deliberately stores *no row data* — rows are always read from the
live tablet memtables, so a stale cache entry can mis-price a scan but never
return stale results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.bigtable.cost import OpCounter, OpKind
from repro.bigtable.lsm import MEMTABLE_SOURCE
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.bigtable.tablet import Tablet, TabletLocator


@dataclass(frozen=True)
class BlockCacheOptions:
    """Configuration of one table's simulated block cache."""

    #: Maximum number of resident ``(tablet, block)`` entries before LRU
    #: eviction kicks in.
    capacity_blocks: int = 4096
    #: A key block is every row sharing this many leading row-key
    #: characters.  Spatial-index keys are 12 fixed-width hex digits, so the
    #: default groups rows by their top 24 curve bits — a few hundred
    #: storage cells per block at the experiment levels.
    block_prefix_len: int = 6
    #: Disabled caches treat every scan as cold (seed behaviour).
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.capacity_blocks < 1:
            raise ConfigurationError("capacity_blocks must be >= 1")
        if self.block_prefix_len < 1:
            raise ConfigurationError("block_prefix_len must be >= 1")


@dataclass(frozen=True)
class TabletCacheStats:
    """Frozen per-tablet block-cache accounting row."""

    table: str
    tablet_id: str
    hits: int
    misses: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of block lookups served from the cache (0.0 when the
        tablet was never scanned)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class BlockCache:
    """LRU set of warm ``(tablet, key-block)`` pairs with hit/miss tallies.

    The cache is a *residency* model, not a data store: :meth:`probe`
    answers "would this block have been in the tablet server's memory?",
    bumping it to most-recently-used on a hit and admitting it on a miss.
    """

    def __init__(self, options: Optional[BlockCacheOptions] = None) -> None:
        self.options = options or BlockCacheOptions()
        self._lru: "OrderedDict[Tuple[str, str, str], None]" = OrderedDict()
        #: tablet id -> resident (source, block) pairs, for
        #: O(blocks-of-tablet) invalidation.  ``source`` is the SSTable run
        #: id the block belongs to, or :data:`MEMTABLE_SOURCE` for blocks of
        #: the live memtable.
        self._by_tablet: Dict[str, Set[Tuple[str, str]]] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.options.enabled

    def block_of(self, row_key: str) -> str:
        """The key block containing ``row_key``."""
        return row_key[: self.options.block_prefix_len]

    def __len__(self) -> int:
        return len(self._lru)

    # ------------------------------------------------------------------
    # Lookup / admission
    # ------------------------------------------------------------------
    def probe(self, tablet_id: str, block: str, source: str = MEMTABLE_SOURCE) -> bool:
        """True when the block is warm; admits it (evicting LRU) otherwise.

        ``source`` names where the block's rows live — an SSTable run id or
        :data:`MEMTABLE_SOURCE` — so a compaction can evict exactly the
        blocks of the runs it consumed.
        """
        if not self.options.enabled:
            return False
        key = (tablet_id, source, block)
        if key in self._lru:
            self._lru.move_to_end(key)
            self._hits[tablet_id] = self._hits.get(tablet_id, 0) + 1
            return True
        self._misses[tablet_id] = self._misses.get(tablet_id, 0) + 1
        self._lru[key] = None
        self._by_tablet.setdefault(tablet_id, set()).add((source, block))
        if len(self._lru) > self.options.capacity_blocks:
            evicted_tablet, evicted_source, evicted_block = self._lru.popitem(
                last=False
            )[0]
            resident = self._by_tablet.get(evicted_tablet)
            if resident is not None:
                resident.discard((evicted_source, evicted_block))
                if not resident:
                    del self._by_tablet[evicted_tablet]
        return False

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_row(self, tablet_id: str, row_key: str) -> None:
        """Evict the memtable block containing ``row_key`` (a mutation
        dirtied it).  Run blocks are immutable — a mutated row moves into
        the memtable and shadows its run versions, so only the memtable
        block changes."""
        resident = self._by_tablet.get(tablet_id)
        if resident is None:
            return
        pair = (MEMTABLE_SOURCE, self.block_of(row_key))
        if pair in resident:
            resident.discard(pair)
            if not resident:
                del self._by_tablet[tablet_id]
            del self._lru[(tablet_id,) + pair]

    def invalidate_source(self, tablet_id: str, source: str) -> None:
        """Evict every block served from one source of a tablet.

        A memtable flush evicts the :data:`MEMTABLE_SOURCE` blocks (those
        rows now live in the new, cold run); a compaction evicts the blocks
        of every run it consumed.
        """
        resident = self._by_tablet.get(tablet_id)
        if not resident:
            return
        stale = [pair for pair in resident if pair[0] == source]
        for pair in stale:
            resident.discard(pair)
            del self._lru[(tablet_id,) + pair]
        if not resident:
            del self._by_tablet[tablet_id]

    def invalidate_tablet(self, tablet_id: str) -> None:
        """Evict every block of a tablet (it split, merged or cleared)."""
        resident = self._by_tablet.pop(tablet_id, None)
        if not resident:
            return
        for pair in resident:
            del self._lru[(tablet_id,) + pair]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stats(self, table_name: str) -> List[TabletCacheStats]:
        """Per-tablet hit/miss rows for every tablet ever probed."""
        tablet_ids = sorted(set(self._hits) | set(self._misses))
        return [
            TabletCacheStats(
                table=table_name,
                tablet_id=tablet_id,
                hits=self._hits.get(tablet_id, 0),
                misses=self._misses.get(tablet_id, 0),
            )
            for tablet_id in tablet_ids
        ]

    def hit_rate(self) -> float:
        """Overall fraction of block lookups that hit (0.0 before any)."""
        hits = sum(self._hits.values())
        lookups = hits + sum(self._misses.values())
        if lookups == 0:
            return 0.0
        return hits / lookups

    def reset_stats(self) -> None:
        """Zero the hit/miss tallies; resident blocks stay warm."""
        self._hits.clear()
        self._misses.clear()

    def clear(self) -> None:
        """Drop every resident block and every tally."""
        self._lru.clear()
        self._by_tablet.clear()
        self.reset_stats()

    # ------------------------------------------------------------------
    # Accounting checkpoints (supervised respawn)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Plain-data snapshot of residency and tallies.

        The cache is pure accounting — ``(tablet, source, block)`` string
        keys in LRU order plus hit/miss counts, no row data — so the whole
        warmth model serialises exactly."""
        return {
            "lru": list(self._lru.keys()),
            "hits": dict(self._hits),
            "misses": dict(self._misses),
        }

    def install_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state` (``_by_tablet`` is
        an index over the LRU keys and is rebuilt, not shipped)."""
        self._lru.clear()
        self._by_tablet.clear()
        for key in state["lru"]:
            tablet_id, source, block = key
            self._lru[(tablet_id, source, block)] = None
            self._by_tablet.setdefault(tablet_id, set()).add((source, block))
        self._hits = dict(state["hits"])
        self._misses = dict(state["misses"])


@dataclass(frozen=True)
class ScanSegment:
    """One tablet's slice of a scan plan (bounds are the plan's globals —
    the tablet's own range already clips them)."""

    tablet: "Tablet"
    start_key: Optional[str]
    end_key: Optional[str]


@dataclass(frozen=True)
class ScanPlan:
    """A compiled range read: the tablets ``[start_key, end_key)`` touches,
    in key order.  Compiling is routing; executing is the Scanner's job."""

    table: str
    start_key: Optional[str]
    end_key: Optional[str]
    limit: Optional[int]
    segments: Tuple[ScanSegment, ...]

    def tablet_ids(self) -> List[str]:
        """Ids of every tablet the plan will touch."""
        return [segment.tablet.tablet_id for segment in self.segments]


class Scanner:
    """Executes scan plans: streams rows, prices them through the block
    cache and mirrors the work onto every planned tablet's ledger."""

    def __init__(
        self,
        counter: OpCounter,
        locator: "TabletLocator",
        cache: BlockCache,
    ) -> None:
        self.counter = counter
        self.locator = locator
        self.cache = cache

    def execute(self, plan: ScanPlan) -> List[Tuple["Tablet", str, object]]:
        """Run a compiled plan.

        Routing is re-resolved through the locator at execution time: the
        plan's captured segments are a routing *hint* (what callers inspect
        to partition work), but tablets split and merge between compile and
        execute, and trusting a stale segment list would silently drop the
        rows that moved to a new sibling tablet.  The key range is the
        plan's contract; the tablet list is not.
        """
        return self.execute_range(plan.start_key, plan.end_key, plan.limit)

    def execute_range(
        self,
        start_key: Optional[str] = None,
        end_key: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple["Tablet", str, object]]:
        """Scan ``[start_key, end_key)``, returning ``(tablet, row_key,
        row)`` in key order.

        Charging: the shared ledger gets one ``SCAN`` RPC whose row count is
        the *cold* rows (rows in blocks the cache had to fault in) plus one
        ``CACHE_READ`` record over the warm rows; each scanned tablet's
        ledger mirrors its own share.  A tablet that yields no rows is
        still charged one scan row (it served the probe), which is what
        makes cold tablets visible in load reports.

        Rows stream through the tablet's *merged* LSM view (memtable plus
        SSTable runs, newest version wins, tombstones skipped); the cache
        prices each row by the ``(tablet, source, block)`` it was served
        from, where the source is the run holding the winning version.
        """
        results: List[Tuple["Tablet", str, object]] = []
        remaining = limit
        charges: List[Tuple["Tablet", int, int]] = []
        cache = self.cache
        cache_enabled = cache.enabled
        prefix_len = cache.options.block_prefix_len
        probe = cache.probe
        append = results.append
        for tablet in self.locator.tablets_in_range(start_key, end_key):
            if remaining is not None and remaining <= 0:
                break
            cold = 0
            warm = 0
            current_block: Optional[str] = None
            current_source: Optional[str] = None
            block_warm = False
            tablet_id = tablet.tablet_id
            if not tablet.runs:
                # Fast path: no SSTable runs — the memtable is the merged
                # view (and holds no tombstones), so skip merged_scan's
                # generator layer and stream it directly; every row's
                # source is the memtable.  Deliberate duplication of the
                # pricing loop below (measured ~6% on the batched query
                # workload, whose tablets are run-free by default): any
                # change to block keying or warm/cold accounting must be
                # applied to BOTH loops.
                for row_key, row in tablet.rows.scan(
                    start_key, end_key, remaining
                ):
                    if cache_enabled:
                        block = row_key[:prefix_len]
                        if block != current_block:
                            current_block = block
                            block_warm = probe(tablet_id, block)
                        if block_warm:
                            warm += 1
                        else:
                            cold += 1
                    else:
                        cold += 1
                    append((tablet, row_key, row))
                    if remaining is not None:
                        remaining -= 1
                charges.append((tablet, cold, warm))
                continue
            for row_key, row, source in tablet.merged_scan(
                start_key, end_key, remaining
            ):
                if cache_enabled:
                    block = row_key[:prefix_len]
                    if block != current_block or source != current_source:
                        current_block = block
                        current_source = source
                        block_warm = probe(tablet_id, block, source)
                    if block_warm:
                        warm += 1
                    else:
                        cold += 1
                else:
                    cold += 1
                append((tablet, row_key, row))
                if remaining is not None:
                    remaining -= 1
            charges.append((tablet, cold, warm))
        cold_total = sum(cold for _, cold, _ in charges)
        warm_total = sum(warm for _, _, warm in charges)
        self.counter.record(
            OpKind.SCAN, rows=cold_total if cold_total + warm_total > 0 else 1
        )
        if warm_total > 0:
            self.counter.record(OpKind.CACHE_READ, rows=warm_total)
        self._attribute_scan(charges)
        return results

    def _attribute_scan(self, charges: List[Tuple["Tablet", int, int]]) -> None:
        """Mirror one scan onto the scanned tablets' ledgers.

        Every scanned tablet is charged the scan RPC it served — with its
        cold rows, or zero rows when the block cache covered everything —
        so a cache-hot tablet keeps accumulating read time on its ledger
        exactly as the shared ledger does (the skew signal the contention
        model consumes must not fade as the cache warms).  Tablets that
        contributed no rows at all are charged one scan row, so empty
        probes — e.g. an NN search visiting a cell nobody occupies — still
        appear in ``tablet_load_report``.
        """
        for tablet, cold, warm in charges:
            tablet.counter.record(OpKind.SCAN, rows=cold if cold + warm > 0 else 1)
            if warm > 0:
                tablet.counter.record(OpKind.CACHE_READ, rows=warm)
